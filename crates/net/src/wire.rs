//! The `smst-wire-v1` frame codec: length-prefixed frames over any byte
//! stream, hand-rolled little-endian encode/decode (no serde, mirroring
//! the `analyze::json` convention of dependency-free codecs).
//!
//! Every frame on the wire is `u32-LE length ‖ payload`, where the payload
//! is one tag byte followed by the frame body. The handshake is versioned:
//! a worker opens with [`Frame::Hello`] carrying the schema string
//! ([`WIRE_SCHEMA`]) and its protocol version, and the coordinator either
//! acknowledges ([`Frame::HelloAck`]) or rejects with a typed
//! [`Frame::Error`] — a version skew is a typed
//! [`WireError::VersionMismatch`], never a silent misparse.
//!
//! Node registers travel as **opaque program-encoded byte payloads**
//! ([`crate::program::WireProgram`] owns the state codec); the frame layer
//! only length-delimits them, so the codec here is monomorphic and the
//! framing property tests need no program type.

use std::io::{Read, Write};

/// The wire schema tag carried by every [`Frame::Hello`]: the writer side
/// of the `smst-analyze` schema-parity pairing (`analyze::ingest` declares
/// the matching acceptor const).
pub const WIRE_SCHEMA: &str = "smst-wire-v1";

/// The protocol version spoken by this build. Bumped on any frame-layout
/// change; a worker and coordinator disagreeing on it refuse to pair.
pub const WIRE_VERSION: u16 = 1;

/// Hard ceiling on a single frame's payload (1 GiB). A length prefix
/// beyond this is rejected before allocation — a torn or hostile prefix
/// must not look like a request for unbounded memory.
pub const MAX_FRAME: u32 = 1 << 30;

/// [`Frame::Error`] code: handshake version mismatch.
pub const ERR_VERSION: u32 = 1;
/// [`Frame::Error`] code: the worker has no codec for the program named in
/// [`SetupFrame::program`].
pub const ERR_UNKNOWN_PROGRAM: u32 = 2;
/// [`Frame::Error`] code: a frame arrived out of protocol order.
pub const ERR_PROTOCOL: u32 = 3;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_SETUP: u8 = 3;
const TAG_ROUND: u8 = 4;
const TAG_INTERIORS: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_ERROR: u8 = 127;

/// Why a wire operation failed. Every decode and I/O failure is typed —
/// the coordinator maps these onto the engine's `PoolError` surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame (torn frame / short read).
    Truncated,
    /// A frame body decoded cleanly but left unconsumed bytes.
    Trailing {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The handshake carried an unknown schema string.
    BadMagic(String),
    /// An unknown frame tag.
    BadTag(u8),
    /// The peers speak different protocol versions.
    VersionMismatch {
        /// The version this side speaks.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
    },
    /// A field value that cannot be honored (out-of-range index, bad
    /// UTF-8, an unhonorable graph edge, …).
    BadValue(&'static str),
    /// The peer rejected us with a typed [`Frame::Error`].
    Rejected {
        /// The `ERR_*` code.
        code: u32,
        /// The peer's message.
        message: String,
    },
    /// The peer closed the connection cleanly between frames.
    PeerClosed,
    /// A read deadline (socket timeout) expired.
    Timeout,
    /// Any other I/O failure.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "torn frame: the stream ended mid-frame"),
            WireError::Trailing { extra } => {
                write!(f, "frame decoded with {extra} trailing byte(s)")
            }
            WireError::BadMagic(schema) => {
                write!(
                    f,
                    "unknown wire schema {schema:?} (expected {WIRE_SCHEMA:?})"
                )
            }
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "wire version mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte ceiling")
            }
            WireError::BadValue(what) => write!(f, "unhonorable field value: {what}"),
            WireError::Rejected { code, message } => {
                write!(f, "peer rejected us (code {code}): {message}")
            }
            WireError::PeerClosed => write!(f, "peer closed the connection"),
            WireError::Timeout => write!(f, "read deadline expired"),
            WireError::Io(message) => write!(f, "socket error: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maps an I/O error onto the typed surface: a socket read timeout
/// (`SO_RCVTIMEO` surfaces as `WouldBlock` on Unix, `TimedOut` elsewhere)
/// becomes [`WireError::Timeout`], everything else [`WireError::Io`].
pub(crate) fn io_error(err: std::io::Error) -> WireError {
    match err.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout,
        std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
        _ => WireError::Io(err.to_string()),
    }
}

// --- primitive little-endian writers -----------------------------------

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16`, little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

// --- primitive little-endian reader ------------------------------------

/// A bounds-checked cursor over one frame body. Every read is typed; a
/// read past the end is [`WireError::Truncated`], leftover bytes at
/// [`finish`](Dec::finish) are [`WireError::Trailing`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::BadValue("non-UTF-8 string"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the body was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::Trailing { extra }),
        }
    }
}

// --- frame bodies -------------------------------------------------------

/// The graph on the wire: node identities in dense-index order plus the
/// edge list in insertion order. Rebuilding with `add_node_with_id` /
/// `add_edge` in this exact order reproduces the coordinator's port
/// numbering bit-for-bit — port order is edge-insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireGraph {
    /// Node identities, dense `NodeId` order.
    pub ids: Vec<u64>,
    /// Edges `(u, v, weight)` in insertion order.
    pub edges: Vec<(u32, u32, u64)>,
}

impl WireGraph {
    /// Snapshots a graph for the wire.
    pub fn from_graph(graph: &smst_graph::WeightedGraph) -> Self {
        WireGraph {
            ids: (0..graph.node_count())
                .map(|v| graph.id(smst_graph::NodeId(v)))
                .collect(),
            edges: graph
                .edges()
                .iter()
                .map(|e| (e.u.0 as u32, e.v.0 as u32, e.weight))
                .collect(),
        }
    }

    /// Rebuilds the graph, reproducing node numbering and port order.
    pub fn to_graph(&self) -> Result<smst_graph::WeightedGraph, WireError> {
        let mut graph = smst_graph::WeightedGraph::new();
        for &id in &self.ids {
            graph.add_node_with_id(id);
        }
        let n = self.ids.len();
        for &(u, v, weight) in &self.edges {
            if u as usize >= n || v as usize >= n {
                return Err(WireError::BadValue("edge endpoint out of range"));
            }
            graph
                .add_edge(
                    smst_graph::NodeId(u as usize),
                    smst_graph::NodeId(v as usize),
                    weight,
                )
                .map_err(|_| WireError::BadValue("unhonorable edge"))?;
        }
        Ok(graph)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ids.len() as u32);
        for &id in &self.ids {
            put_u64(out, id);
        }
        put_u32(out, self.edges.len() as u32);
        for &(u, v, w) in &self.edges {
            put_u32(out, u);
            put_u32(out, v);
            put_u64(out, w);
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let n = dec.u32()? as usize;
        let mut ids = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            ids.push(dec.u64()?);
        }
        let m = dec.u32()? as usize;
        let mut edges = Vec::with_capacity(m.min(1 << 20));
        for _ in 0..m {
            edges.push((dec.u32()?, dec.u32()?, dec.u64()?));
        }
        Ok(WireGraph { ids, edges })
    }
}

/// The one-time worker bootstrap: everything a peer needs to rebuild its
/// shard deterministically — the graph, the layout policy, the peer-set
/// size (the partition input), its part index, the program spec and the
/// full initial registers in original node order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupFrame {
    /// The envelope seed (bookkeeping; carried for artifact labels).
    pub seed: u64,
    /// Worker processes the graph is partitioned across.
    pub peers: u32,
    /// This worker's part index (`< peers`).
    pub part: u32,
    /// The layout policy: 0 = identity, 1 = RCM.
    pub layout: u8,
    /// The program's wire name ([`crate::program::WireProgram::WIRE_NAME`]).
    pub program: String,
    /// Program-specific spec bytes (decoded by `WireProgram::decode_spec`).
    pub spec: Vec<u8>,
    /// The graph.
    pub graph: WireGraph,
    /// Initial registers, original node order, program-encoded.
    pub states: Vec<u8>,
}

/// A chaos injection riding on a [`RoundFrame`] — the wire form of the
/// engine's `InjectionKind`, armed by the coordinator exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireInjection {
    /// The worker panics before computing.
    Panic,
    /// The worker sleeps this many milliseconds before computing.
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// One round dispatch, coordinator → worker: register patches (external
/// mutations / recovery resync), the fresh halo snapshot in
/// `HaloPlan::halo_nodes` order, and an optional one-shot injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundFrame {
    /// The round this dispatch computes (the coordinator's step counter).
    pub round: u64,
    /// Monotone dispatch counter, echoed in the reply: a recovery replay
    /// of the same `round` gets a fresh `dispatch`, so stale replies from
    /// the failed attempt are recognized and skipped.
    pub dispatch: u64,
    /// Region-local interior indices whose registers are patched.
    pub patch_nodes: Vec<u32>,
    /// The patch registers, program-encoded, one per
    /// [`patch_nodes`](Self::patch_nodes) entry.
    pub patch_states: Vec<u8>,
    /// The halo registers, program-encoded, `HaloPlan::halo_nodes(part)`
    /// order (empty for a single-shard run — the zero-length payload is a
    /// first-class frame, not a special case).
    pub halo_states: Vec<u8>,
    /// A one-shot chaos injection to execute before computing.
    pub inject: Option<WireInjection>,
}

/// One round reply, worker → coordinator: the recomputed interior
/// registers plus the measured compute time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteriorsFrame {
    /// Echo of [`RoundFrame::round`].
    pub round: u64,
    /// Echo of [`RoundFrame::dispatch`] (staleness filter).
    pub dispatch: u64,
    /// The worker's measured compute time for this round.
    pub compute_ns: u64,
    /// The interior registers, program-encoded, shard order.
    pub states: Vec<u8>,
}

/// Every message of the `smst-wire-v1` protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator greeting: schema string, protocol version,
    /// part index (from the worker's command line).
    Hello {
        /// The worker's protocol version.
        version: u16,
        /// The worker's part index.
        part: u32,
    },
    /// Coordinator → worker handshake acknowledgement.
    HelloAck {
        /// The coordinator's protocol version.
        version: u16,
    },
    /// Coordinator → worker bootstrap.
    Setup(SetupFrame),
    /// Coordinator → worker round dispatch.
    Round(RoundFrame),
    /// Worker → coordinator round reply.
    Interiors(InteriorsFrame),
    /// Coordinator → worker orderly teardown.
    Shutdown,
    /// Either direction: a typed rejection (`ERR_*` code + message).
    Error {
        /// The `ERR_*` code.
        code: u32,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    /// Encodes the frame payload (tag + body, **without** the length
    /// prefix [`write_frame`] adds).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { version, part } => {
                put_u8(&mut out, TAG_HELLO);
                put_str(&mut out, WIRE_SCHEMA);
                put_u16(&mut out, *version);
                put_u32(&mut out, *part);
            }
            Frame::HelloAck { version } => {
                put_u8(&mut out, TAG_HELLO_ACK);
                put_u16(&mut out, *version);
            }
            Frame::Setup(setup) => {
                put_u8(&mut out, TAG_SETUP);
                put_u64(&mut out, setup.seed);
                put_u32(&mut out, setup.peers);
                put_u32(&mut out, setup.part);
                put_u8(&mut out, setup.layout);
                put_str(&mut out, &setup.program);
                put_bytes(&mut out, &setup.spec);
                setup.graph.encode(&mut out);
                put_bytes(&mut out, &setup.states);
            }
            Frame::Round(round) => {
                put_u8(&mut out, TAG_ROUND);
                put_u64(&mut out, round.round);
                put_u64(&mut out, round.dispatch);
                put_u32(&mut out, round.patch_nodes.len() as u32);
                for &node in &round.patch_nodes {
                    put_u32(&mut out, node);
                }
                put_bytes(&mut out, &round.patch_states);
                put_bytes(&mut out, &round.halo_states);
                match round.inject {
                    None => put_u8(&mut out, 0),
                    Some(WireInjection::Panic) => put_u8(&mut out, 1),
                    Some(WireInjection::Stall { millis }) => {
                        put_u8(&mut out, 2);
                        put_u64(&mut out, millis);
                    }
                }
            }
            Frame::Interiors(interiors) => {
                put_u8(&mut out, TAG_INTERIORS);
                put_u64(&mut out, interiors.round);
                put_u64(&mut out, interiors.dispatch);
                put_u64(&mut out, interiors.compute_ns);
                put_bytes(&mut out, &interiors.states);
            }
            Frame::Shutdown => put_u8(&mut out, TAG_SHUTDOWN),
            Frame::Error { code, message } => {
                put_u8(&mut out, TAG_ERROR);
                put_u32(&mut out, *code);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decodes one frame payload (as produced by [`Frame::encode`]).
    /// Total: every byte is consumed or the decode is an error.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let mut dec = Dec::new(payload);
        let frame = match dec.u8()? {
            TAG_HELLO => {
                let schema = dec.str()?;
                if schema != WIRE_SCHEMA {
                    return Err(WireError::BadMagic(schema.to_string()));
                }
                Frame::Hello {
                    version: dec.u16()?,
                    part: dec.u32()?,
                }
            }
            TAG_HELLO_ACK => Frame::HelloAck {
                version: dec.u16()?,
            },
            TAG_SETUP => {
                let seed = dec.u64()?;
                let peers = dec.u32()?;
                let part = dec.u32()?;
                let layout = dec.u8()?;
                let program = dec.str()?.to_string();
                let spec = dec.bytes()?.to_vec();
                let graph = WireGraph::decode(&mut dec)?;
                let states = dec.bytes()?.to_vec();
                Frame::Setup(SetupFrame {
                    seed,
                    peers,
                    part,
                    layout,
                    program,
                    spec,
                    graph,
                    states,
                })
            }
            TAG_ROUND => {
                let round = dec.u64()?;
                let dispatch = dec.u64()?;
                let patches = dec.u32()? as usize;
                let mut patch_nodes = Vec::with_capacity(patches.min(1 << 20));
                for _ in 0..patches {
                    patch_nodes.push(dec.u32()?);
                }
                let patch_states = dec.bytes()?.to_vec();
                let halo_states = dec.bytes()?.to_vec();
                let inject = match dec.u8()? {
                    0 => None,
                    1 => Some(WireInjection::Panic),
                    2 => Some(WireInjection::Stall { millis: dec.u64()? }),
                    _ => return Err(WireError::BadValue("unknown injection kind")),
                };
                Frame::Round(RoundFrame {
                    round,
                    dispatch,
                    patch_nodes,
                    patch_states,
                    halo_states,
                    inject,
                })
            }
            TAG_INTERIORS => Frame::Interiors(InteriorsFrame {
                round: dec.u64()?,
                dispatch: dec.u64()?,
                compute_ns: dec.u64()?,
                states: dec.bytes()?.to_vec(),
            }),
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ERROR => Frame::Error {
                code: dec.u32()?,
                message: dec.str()?.to_string(),
            },
            tag => return Err(WireError::BadTag(tag)),
        };
        dec.finish()?;
        Ok(frame)
    }
}

// --- stream I/O ---------------------------------------------------------

/// Writes one length-prefixed frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let payload = frame.encode();
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    let mut message = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut message, payload.len() as u32);
    message.extend_from_slice(&payload);
    w.write_all(&message).map_err(io_error)?;
    w.flush().map_err(io_error)
}

/// Reads one length-prefixed frame. A clean close **between** frames is
/// [`WireError::PeerClosed`]; a close mid-frame is
/// [`WireError::Truncated`]; an expired socket read deadline is
/// [`WireError::Timeout`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    // the first byte distinguishes a clean close from a torn frame
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(WireError::PeerClosed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(e)),
        }
    }
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest).map_err(io_error)?;
    let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(io_error)?;
    Frame::decode(&payload)
}

/// [`Frame::encode`] plus the length prefix — the exact byte string
/// [`write_frame`] puts on the wire (torn-frame tests truncate this).
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let payload = frame.encode();
    let mut message = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut message, payload.len() as u32);
    message.extend_from_slice(&payload);
    message
}
