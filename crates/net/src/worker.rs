//! The shard worker: the process behind `smst-net worker`. It dials the
//! coordinator, handshakes, rebuilds its shard **deterministically** from
//! the [`SetupFrame`] (same `CsrTopology` → layout → `partition_balanced`
//! → `HaloPlan` pipeline as the coordinator, so both sides agree on the
//! geometry without shipping it), then serves round dispatches until
//! [`Frame::Shutdown`].
//!
//! Per round the worker applies the coordinator's register patches,
//! refreshes its halo slots from the dispatch payload, optionally executes
//! a one-shot chaos injection (panic / stall — the process-level analogs
//! of the in-process pool's `ArmedInjection`), computes one synchronous
//! round over its interior on the shard-local CSR, and replies with the
//! recomputed interiors plus the measured compute time.

use crate::program::{decode_states, encode_states, WireProgram};
use crate::transport::{Conn, Endpoint};
use crate::wire::{
    read_frame, write_frame, Dec, Frame, InteriorsFrame, SetupFrame, WireError, WireInjection,
    ERR_PROTOCOL, ERR_UNKNOWN_PROGRAM, WIRE_VERSION,
};
use smst_engine::programs::{AlarmedFlood, MinIdFlood, MonitorFlood};
use smst_engine::{partition_balanced, CsrTopology, HaloPlan, LayoutPolicy};
use smst_graph::NodeId;
use smst_sim::NodeContext;
use std::time::Duration;

/// How long the worker keeps dialing the coordinator before giving up.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Wire form of [`LayoutPolicy::Identity`] in
/// [`SetupFrame::layout`].
pub const LAYOUT_IDENTITY: u8 = 0;
/// Wire form of [`LayoutPolicy::Rcm`].
pub const LAYOUT_RCM: u8 = 1;

/// Encodes a layout policy for [`SetupFrame::layout`].
pub fn layout_to_wire(layout: LayoutPolicy) -> u8 {
    match layout {
        LayoutPolicy::Identity => LAYOUT_IDENTITY,
        LayoutPolicy::Rcm => LAYOUT_RCM,
    }
}

fn layout_from_wire(byte: u8) -> Result<LayoutPolicy, WireError> {
    match byte {
        LAYOUT_IDENTITY => Ok(LayoutPolicy::Identity),
        LAYOUT_RCM => Ok(LayoutPolicy::Rcm),
        _ => Err(WireError::BadValue("unknown layout policy")),
    }
}

/// The worker entry point: dial, handshake (announcing `wire_version` —
/// tests inject a skewed version to exercise the typed rejection), serve
/// rounds until shutdown.
pub fn run_worker(endpoint: &Endpoint, part: u32, wire_version: u16) -> Result<(), WireError> {
    let mut conn = endpoint.connect(CONNECT_TIMEOUT)?;
    write_frame(
        &mut conn,
        &Frame::Hello {
            version: wire_version,
            part,
        },
    )?;
    match read_frame(&mut conn)? {
        Frame::HelloAck { .. } => {}
        Frame::Error { code, message } => return Err(WireError::Rejected { code, message }),
        _ => return Err(WireError::BadValue("expected HelloAck")),
    }
    let setup = match read_frame(&mut conn)? {
        Frame::Setup(setup) => setup,
        Frame::Error { code, message } => return Err(WireError::Rejected { code, message }),
        _ => return Err(WireError::BadValue("expected Setup")),
    };
    dispatch_program(setup, conn)
}

/// Routes the setup to the typed round loop for the named program. Every
/// [`WireProgram`] the worker can execute needs an arm here.
fn dispatch_program(setup: SetupFrame, mut conn: Conn) -> Result<(), WireError> {
    let name = setup.program.clone();
    if name == MinIdFlood::WIRE_NAME {
        serve_rounds::<MinIdFlood>(setup, conn)
    } else if name == MonitorFlood::WIRE_NAME {
        serve_rounds::<MonitorFlood>(setup, conn)
    } else if name == AlarmedFlood::WIRE_NAME {
        serve_rounds::<AlarmedFlood>(setup, conn)
    } else {
        let _ = write_frame(
            &mut conn,
            &Frame::Error {
                code: ERR_UNKNOWN_PROGRAM,
                message: format!("this worker has no codec for program {name:?}"),
            },
        );
        Err(WireError::BadValue("unknown program"))
    }
}

/// The typed round loop: deterministic shard rebuild, then
/// patch → halo-refresh → (inject) → compute → reply until shutdown.
fn serve_rounds<P: WireProgram>(setup: SetupFrame, mut conn: Conn) -> Result<(), WireError> {
    let mut spec = Dec::new(&setup.spec);
    let program = P::decode_spec(&mut spec)?;
    spec.finish()?;
    let graph = setup.graph.to_graph()?;
    let n = graph.node_count();
    let states_original = decode_states::<P>(&setup.states, n)?;

    // the same build pipeline as the coordinator: both sides derive the
    // identical geometry from (graph, layout, peers) instead of wiring it
    let base_topo = CsrTopology::build(&graph);
    let layout = layout_from_wire(setup.layout)?.build(&base_topo);
    let topo = layout.apply(&base_topo);
    let states_internal = layout.permute(states_original);
    let shards = partition_balanced(&topo, setup.peers as usize);
    let plan = HaloPlan::build(&topo, &shards);
    let part = setup.part as usize;
    if part >= shards.len() {
        let _ = write_frame(
            &mut conn,
            &Frame::Error {
                code: ERR_PROTOCOL,
                message: format!("part {part} out of range ({} shards)", shards.len()),
            },
        );
        return Err(WireError::BadValue("part out of range"));
    }
    let shard = plan.shard(part);
    let interior_len = shard.len();
    let halo_len = plan.halo_size(part);
    let offset = plan.arena_offset(part);
    // rebase the shard-local CSR from absolute arena coordinates to this
    // region (every coordinate of shard `part` falls inside region `part`)
    let (csr_offsets, csr_neighbors) = plan.local_csr(part);
    let offsets: Vec<usize> = csr_offsets.to_vec();
    let neighbors: Vec<u32> = csr_neighbors.iter().map(|&a| a - offset as u32).collect();
    let contexts: Vec<NodeContext> = shard
        .nodes()
        .map(|internal| NodeContext::for_node(&graph, NodeId(layout.original(internal))))
        .collect();

    // region arena: interiors then halo slots, double-buffered against
    // `next` so a round reads only previous-round registers
    let mut prev: Vec<P::State> = Vec::with_capacity(interior_len + halo_len);
    prev.extend(states_internal[shard.start..shard.end].iter().cloned());
    for &u in plan.halo_nodes(part) {
        prev.push(states_internal[u as usize].clone());
    }
    let mut next: Vec<P::State> = prev[..interior_len].to_vec();

    loop {
        let round = match read_frame(&mut conn)? {
            Frame::Shutdown => return Ok(()),
            Frame::Round(round) => round,
            _ => {
                let _ = write_frame(
                    &mut conn,
                    &Frame::Error {
                        code: ERR_PROTOCOL,
                        message: "expected Round or Shutdown".to_string(),
                    },
                );
                return Err(WireError::BadValue("expected Round or Shutdown"));
            }
        };
        let mut patches = Dec::new(&round.patch_states);
        for &local in &round.patch_nodes {
            let state = P::decode_state(&mut patches)?;
            if local as usize >= interior_len {
                return Err(WireError::BadValue("patch index out of range"));
            }
            prev[local as usize] = state;
        }
        patches.finish()?;
        let halo = decode_states::<P>(&round.halo_states, halo_len)?;
        prev[interior_len..].clone_from_slice(&halo);
        match round.inject {
            None => {}
            Some(WireInjection::Panic) => {
                panic!("injected chaos panic (round {}, part {part})", round.round)
            }
            Some(WireInjection::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis))
            }
        }
        // smst-lint: allow(clock, reason = "compute_ns measurement reported to the coordinator's observer; never steers results")
        let compute_start = std::time::Instant::now();
        {
            let mut neighbor_refs: Vec<&P::State> = Vec::new();
            for i in 0..interior_len {
                neighbor_refs.clear();
                neighbor_refs.extend(
                    neighbors[offsets[i]..offsets[i + 1]]
                        .iter()
                        .map(|&a| &prev[a as usize]),
                );
                next[i] = program.step(&contexts[i], &prev[i], &neighbor_refs);
            }
        }
        let compute_ns = compute_start.elapsed().as_nanos() as u64;
        prev[..interior_len].clone_from_slice(&next);
        write_frame(
            &mut conn,
            &Frame::Interiors(InteriorsFrame {
                round: round.round,
                dispatch: round.dispatch,
                compute_ns,
                states: encode_states::<P, _>(next.iter()),
            }),
        )?;
    }
}

/// Parses the `worker` subcommand's arguments and runs the loop. The wire
/// version defaults to [`WIRE_VERSION`]; `--wire-version <n>` (a test
/// hook) announces a different one to exercise the handshake rejection.
pub fn worker_main(args: &[String]) -> Result<(), WireError> {
    let mut endpoint = None;
    let mut part = None;
    let mut wire_version = WIRE_VERSION;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => {
                let value = iter
                    .next()
                    .ok_or(WireError::BadValue("--connect needs a value"))?;
                endpoint = Some(Endpoint::parse(value)?);
            }
            "--part" => {
                let value = iter
                    .next()
                    .ok_or(WireError::BadValue("--part needs a value"))?;
                part = Some(
                    value
                        .parse::<u32>()
                        .map_err(|_| WireError::BadValue("--part must be a u32"))?,
                );
            }
            "--wire-version" => {
                let value = iter
                    .next()
                    .ok_or(WireError::BadValue("--wire-version needs a value"))?;
                wire_version = value
                    .parse::<u16>()
                    .map_err(|_| WireError::BadValue("--wire-version must be a u16"))?;
            }
            _ => return Err(WireError::BadValue("unknown worker argument")),
        }
    }
    let endpoint = endpoint.ok_or(WireError::BadValue("--connect is required"))?;
    let part = part.ok_or(WireError::BadValue("--part is required"))?;
    run_worker(&endpoint, part, wire_version)
}
