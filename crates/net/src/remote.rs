//! The coordinator: [`RemoteRunner`] drives `Backend::Remote` rounds over
//! worker processes through the engine's object-safe `Runner` trait.
//!
//! The coordinator owns the canonical register mirror (internal layout
//! order), the barrier (it commits a round only when **every** worker's
//! reply is in), fault injection (the one-shot chaos injection rides the
//! round dispatch) and observer aggregation (`exchange_ns` is real wire
//! time, `compute_ns` the slowest worker's measured compute). Workers own
//! nothing durable: each holds a shard-local arena rebuilt
//! deterministically from the one-time setup frame, so killing and
//! respawning a worker loses no state the coordinator cannot restore.
//!
//! # Failure surface
//!
//! The typed `PoolError` machinery carries over from the in-process pool:
//! a dead peer (socket close, worker panic) is retried under the
//! envelope's `RecoveryPolicy` — kill + respawn + full interior resync +
//! replay from the exact pre-round registers, so a successful recovery is
//! **bit-for-bit invisible** in the register stream — and surfaces as
//! `PoolError::WorkerPanic` once retries are exhausted. A peer that hangs
//! past the policy's watchdog surfaces as `PoolError::BarrierTimeout`
//! (never retried), both through `Runner::try_step`. Stale replies from a
//! failed attempt are recognized by the dispatch counter echoed in every
//! reply and skipped.

use crate::program::{decode_states, encode_states, WireProgram};
use crate::transport::{unique_endpoint, Conn, Endpoint, Listener};
use crate::wire::{
    read_frame, write_frame, Frame, RoundFrame, SetupFrame, WireError, WireGraph, WireInjection,
    ERR_VERSION, WIRE_VERSION,
};
use crate::worker::layout_to_wire;
use smst_engine::{
    partition_balanced, Backend, ConfigError, CsrTopology, EngineConfig, EngineError, HaloPlan,
    InjectionKind, InjectionSpec, Layout, LayoutPolicy, PoolError, RecoveryPolicy, RunReport,
    Runner, Shard,
};
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{FaultPlan, Network, NodeContext, RoundObserver, RoundStats, Verdict};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How long the coordinator waits for a spawned worker to connect and
/// handshake.
const SETUP_TIMEOUT: Duration = Duration::from_secs(20);

/// How long an orderly shutdown waits before killing a worker.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// One connected worker process.
#[derive(Debug)]
struct Worker {
    part: usize,
    child: Child,
    conn: Conn,
}

/// The coordinator-side armed form of an [`InjectionSpec`]: disarmed the
/// moment it is put on the wire, so a recovery replay of the same round
/// runs clean (the process analog of the pool's `ArmedInjection`).
#[derive(Debug)]
struct PendingInjection {
    spec: InjectionSpec,
    armed: bool,
}

/// Why one round dispatch failed.
enum RoundFailure {
    /// A peer missed the reply deadline (the watchdog). Never retried.
    Timeout(Duration),
    /// Peers died or spoke out of protocol; retried under the
    /// `RecoveryPolicy` by respawn + resync + replay.
    Peers { parts: Vec<usize>, message: String },
}

/// The `Backend::Remote` execution path: shards as worker processes over
/// sockets, driven round by round by this coordinator. See the
/// [module docs](self).
#[derive(Debug)]
pub struct RemoteRunner<'p, P: WireProgram> {
    program: &'p P,
    graph: WeightedGraph,
    layout: Layout,
    layout_policy: LayoutPolicy,
    /// Static per-node contexts, internal order.
    contexts: Vec<NodeContext>,
    /// The canonical register mirror, internal order.
    states: Vec<P::State>,
    shards: Vec<Shard>,
    plan: HaloPlan,
    peers: usize,
    seed: u64,
    listener: Listener,
    endpoint: Endpoint,
    worker_bin: std::path::PathBuf,
    workers: Vec<Worker>,
    rounds: usize,
    /// Monotone dispatch counter (staleness filter for recovery replays).
    dispatches: u64,
    recovery: RecoveryPolicy,
    injection: Option<PendingInjection>,
    observer: Option<Box<dyn RoundObserver>>,
    /// Internal indices mutated since the last dispatch (fault injection /
    /// `state_mut`), patched to their owning worker next round.
    dirty: Vec<usize>,
    /// Force a full interior resync of **every** worker next dispatch
    /// (set on recovery — survivors replay from pre-round registers).
    resync: bool,
}

impl<'p, P: WireProgram> RemoteRunner<'p, P> {
    /// Launches the remote execution path on the default localhost
    /// transport (a fresh Unix socket where available, TCP loopback
    /// elsewhere): binds, spawns one `smst-net worker` process per shard,
    /// handshakes and ships each its setup frame.
    pub fn launch(
        program: &'p P,
        graph: WeightedGraph,
        config: &EngineConfig,
    ) -> Result<Self, ConfigError> {
        Self::launch_on(program, graph, config, unique_endpoint())
    }

    /// [`RemoteRunner::launch`] on an explicit endpoint (tests exercise
    /// the TCP transport through this).
    pub fn launch_on(
        program: &'p P,
        graph: WeightedGraph,
        config: &EngineConfig,
        endpoint: Endpoint,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let Backend::Remote { peers } = config.backend else {
            return Err(ConfigError::WrongMode {
                expected: "remote synchronous",
                got: config.describe(),
            });
        };
        let base_topo = CsrTopology::build(&graph);
        let layout = config.layout.build(&base_topo);
        let topo = layout.apply(&base_topo);
        let n = graph.node_count();
        let contexts: Vec<NodeContext> = (0..n)
            .map(|internal| NodeContext::for_node(&graph, NodeId(layout.original(internal))))
            .collect();
        let states_original: Vec<P::State> = (0..n)
            .map(|v| program.init(&contexts[layout.internal(v)]))
            .collect();
        let states = layout.permute(states_original);
        let shards = partition_balanced(&topo, peers);
        let plan = HaloPlan::build(&topo, &shards);
        let worker_bin = worker_binary().map_err(ConfigError::RemoteSetup)?;
        let (listener, endpoint) = Listener::bind(&endpoint)
            .map_err(|e| ConfigError::RemoteSetup(format!("bind {}: {e}", endpoint.to_arg())))?;

        let mut runner = RemoteRunner {
            program,
            graph,
            layout,
            layout_policy: config.layout,
            contexts,
            states,
            shards,
            plan,
            peers,
            seed: config.seed,
            listener,
            endpoint,
            worker_bin,
            workers: Vec::new(),
            rounds: 0,
            dispatches: 0,
            recovery: config.recovery,
            injection: config
                .injection
                .map(|spec| PendingInjection { spec, armed: true }),
            observer: None,
            dirty: Vec::new(),
            resync: false,
        };
        // sequential spawn → accept → handshake → setup pairs each child
        // handle with its connection (the only pending dialer is the one
        // just spawned)
        for part in 0..runner.shards.len() {
            match runner.bring_up_worker(part) {
                Ok(worker) => runner.workers.push(worker),
                Err(message) => {
                    runner.shutdown_workers();
                    return Err(ConfigError::RemoteSetup(message));
                }
            }
        }
        Ok(runner)
    }

    /// Spawns, accepts, handshakes and boots the worker for `part`.
    fn bring_up_worker(&mut self, part: usize) -> Result<Worker, String> {
        let mut child = spawn_worker(&self.worker_bin, &self.endpoint, part)?;
        let mut conn = match self.listener.accept_deadline(SETUP_TIMEOUT) {
            Ok(conn) => conn,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("worker {part} never connected: {e}"));
            }
        };
        let up = handshake_accept(&mut conn)
            .and_then(|got| {
                if got as usize == part {
                    Ok(())
                } else {
                    Err(WireError::BadValue("worker announced the wrong part"))
                }
            })
            .and_then(|()| write_frame(&mut conn, &Frame::Setup(self.setup_frame(part))));
        match up {
            Ok(()) => Ok(Worker { part, child, conn }),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("worker {part} handshake failed: {e}"))
            }
        }
    }

    /// The bootstrap frame for `part`: the graph, the layout policy, the
    /// partition input and the **current** registers in original node
    /// order (so a respawned worker starts from the mirror, not from
    /// `init`).
    fn setup_frame(&self, part: usize) -> SetupFrame {
        let mut spec = Vec::new();
        self.program.encode_spec(&mut spec);
        let n = self.states.len();
        SetupFrame {
            seed: self.seed,
            peers: self.peers as u32,
            part: part as u32,
            layout: layout_to_wire(self.layout_policy),
            program: P::WIRE_NAME.to_string(),
            spec,
            graph: WireGraph::from_graph(&self.graph),
            states: encode_states::<P, _>((0..n).map(|v| &self.states[self.layout.internal(v)])),
        }
    }

    /// Kills and replaces the named workers, re-shipping each a setup
    /// frame built from the current mirror. The caller sets
    /// [`resync`](Self::resync) so the next dispatch restores survivors'
    /// interiors too.
    fn respawn(&mut self, parts: &[usize]) -> Result<(), String> {
        for &part in parts {
            let idx = self
                .workers
                .iter()
                .position(|w| w.part == part)
                .ok_or_else(|| format!("no worker holds part {part}"))?;
            {
                let worker = &mut self.workers[idx];
                let _ = worker.child.kill();
                let _ = worker.child.wait();
            }
            let replacement = self.bring_up_worker(part)?;
            self.workers[idx] = replacement;
        }
        Ok(())
    }

    /// One round dispatch attempt: patches + halo snapshot + optional
    /// injection out to every worker, then the barrier — wait for every
    /// reply (skipping stale ones by dispatch counter) and commit the
    /// interiors to the mirror only when all are in. Returns
    /// `(max worker compute_ns, wire wall time)`; wall time is read only
    /// when `observed`.
    fn dispatch_round(&mut self, observed: bool) -> Result<(u64, u64), RoundFailure> {
        if self.workers.is_empty() {
            return Ok((0, 0));
        }
        self.dispatches += 1;
        let dispatch = self.dispatches;
        let round = self.rounds as u64;

        // per-part patch lists: full interiors on resync, dirty nodes else
        let mut patch_nodes: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        if self.resync {
            for (part, shard) in self.shards.iter().enumerate() {
                patch_nodes[part] = (0..shard.len() as u32).collect();
            }
        } else if !self.dirty.is_empty() {
            self.dirty.sort_unstable();
            self.dirty.dedup();
            for &internal in &self.dirty {
                let part = self.shards.partition_point(|sh| sh.end <= internal);
                patch_nodes[part].push((internal - self.shards[part].start) as u32);
            }
        }

        // one-shot injection: disarmed the moment it goes on the wire
        let mut inject_at: Option<(usize, WireInjection)> = None;
        if let Some(pending) = &mut self.injection {
            if pending.armed
                && pending.spec.step == self.rounds
                && pending.spec.part < self.shards.len()
            {
                pending.armed = false;
                let kind = match pending.spec.kind {
                    InjectionKind::Panic => WireInjection::Panic,
                    InjectionKind::Stall { millis } => WireInjection::Stall { millis },
                };
                inject_at = Some((pending.spec.part, kind));
            }
        }

        // observer-gated: never read unobserved, never steers results
        let wire_start = observed.then(Instant::now);
        let mut failed: Vec<usize> = Vec::new();
        let mut failure = String::new();

        for worker in self.workers.iter_mut() {
            let part = worker.part;
            let shard = self.shards[part];
            let mut patch_states = Vec::new();
            for &local in &patch_nodes[part] {
                P::encode_state(
                    &self.states[shard.start + local as usize],
                    &mut patch_states,
                );
            }
            let halo_states = encode_states::<P, _>(
                self.plan
                    .halo_nodes(part)
                    .iter()
                    .map(|&u| &self.states[u as usize]),
            );
            let frame = Frame::Round(RoundFrame {
                round,
                dispatch,
                patch_nodes: std::mem::take(&mut patch_nodes[part]),
                patch_states,
                halo_states,
                inject: inject_at
                    .filter(|&(target, _)| target == part)
                    .map(|(_, kind)| kind),
            });
            if let Err(e) = write_frame(&mut worker.conn, &frame) {
                failed.push(part);
                failure = format!("worker {part} send: {e}");
            }
        }

        // the barrier: every reply must be in before anything commits
        let watchdog = self.recovery.watchdog_timeout;
        let mut replies: Vec<(usize, Vec<P::State>)> = Vec::with_capacity(self.workers.len());
        let mut max_compute = 0u64;
        for worker in self.workers.iter_mut() {
            let part = worker.part;
            if failed.contains(&part) {
                continue;
            }
            if let Err(e) = worker.conn.set_read_timeout(watchdog) {
                failed.push(part);
                failure = format!("worker {part} deadline: {e}");
                continue;
            }
            loop {
                match read_frame(&mut worker.conn) {
                    Ok(Frame::Interiors(reply)) => {
                        if reply.dispatch < dispatch {
                            continue; // stale reply from a failed attempt
                        }
                        if reply.dispatch > dispatch || reply.round != round {
                            failed.push(part);
                            failure = format!("worker {part} replied out of protocol");
                            break;
                        }
                        match decode_states::<P>(&reply.states, self.shards[part].len()) {
                            Ok(states) => {
                                max_compute = max_compute.max(reply.compute_ns);
                                replies.push((part, states));
                            }
                            Err(e) => {
                                failed.push(part);
                                failure = format!("worker {part} reply: {e}");
                            }
                        }
                        break;
                    }
                    Ok(Frame::Error { code, message }) => {
                        failed.push(part);
                        failure = format!("worker {part} error (code {code}): {message}");
                        break;
                    }
                    Ok(_) => {
                        failed.push(part);
                        failure = format!("worker {part} replied out of protocol");
                        break;
                    }
                    Err(WireError::Timeout) => {
                        return Err(RoundFailure::Timeout(watchdog.unwrap_or_default()));
                    }
                    Err(e) => {
                        failed.push(part);
                        failure = format!("worker {part}: {e}");
                        break;
                    }
                }
            }
        }
        if !failed.is_empty() {
            return Err(RoundFailure::Peers {
                parts: failed,
                message: failure,
            });
        }

        for (part, interiors) in replies {
            let shard = self.shards[part];
            for (i, state) in interiors.into_iter().enumerate() {
                self.states[shard.start + i] = state;
            }
        }
        self.dirty.clear();
        self.resync = false;
        let wire_ns = wire_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        Ok((max_compute, wire_ns))
    }

    /// The supervised round loop behind [`Runner::try_step`]: dispatch,
    /// and on peer failure retry under the [`RecoveryPolicy`] —
    /// kill + respawn the dead peers, force a full resync, replay the
    /// round from the exact pre-round mirror (recovery is invisible in
    /// the register stream). Timeouts are never retried.
    fn try_step_impl(&mut self) -> Result<(), PoolError> {
        let observed = self.observer.is_some();
        // observer-gated: never read unobserved, never steers results
        let step_start = observed.then(Instant::now);
        let mut attempts = 0u32;
        let (compute_ns, wire_ns) = loop {
            match self.dispatch_round(observed) {
                Ok(timings) => break timings,
                Err(RoundFailure::Timeout(timeout)) => {
                    return Err(PoolError::BarrierTimeout { timeout });
                }
                Err(RoundFailure::Peers { parts, message }) => {
                    attempts += 1;
                    if attempts > self.recovery.max_retries {
                        return Err(PoolError::WorkerPanic { attempts, message });
                    }
                    std::thread::sleep(backoff_before(&self.recovery, attempts));
                    self.resync = true;
                    if let Err(message) = self.respawn(&parts) {
                        return Err(PoolError::WorkerPanic { attempts, message });
                    }
                }
            }
        };
        let round = self.rounds;
        self.rounds += 1;
        if let Some(start) = step_start {
            let total_ns = start.elapsed().as_nanos() as u64;
            self.observe_round(round, total_ns, compute_ns, wire_ns);
        }
        Ok(())
    }

    /// Emits one observed round: `compute_ns` is the slowest worker's
    /// measured compute, `exchange_ns` the wire wall time net of that
    /// overlapped compute, `dispatch_ns` the residual — the four phases
    /// sum to the measured step total, as everywhere else.
    fn observe_round(&mut self, round: usize, total_ns: u64, compute_ns: u64, wire_ns: u64) {
        let alarms = (0..self.states.len())
            .filter(|&i| {
                matches!(
                    self.program.verdict(&self.contexts[i], &self.states[i]),
                    Verdict::Reject
                )
            })
            .count();
        let halo_bytes = if self.shards.len() > 1 {
            (self.plan.total_halo() * std::mem::size_of::<P::State>()) as u64
        } else {
            0
        };
        let exchange_ns = wire_ns.saturating_sub(compute_ns);
        let stats = RoundStats {
            round,
            alarms,
            activations: self.states.len(),
            halo_bytes,
            dispatch_ns: total_ns
                .saturating_sub(compute_ns)
                .saturating_sub(exchange_ns),
            compute_ns,
            barrier_ns: 0,
            exchange_ns,
        };
        if let Some(observer) = self.observer.as_mut() {
            observer.on_round(&stats);
        }
    }

    /// Sends every worker an orderly shutdown, then reaps the processes
    /// (killing any that outlive the grace period). Idempotent.
    fn shutdown_workers(&mut self) {
        for worker in self.workers.iter_mut() {
            let _ = write_frame(&mut worker.conn, &Frame::Shutdown);
        }
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for mut worker in self.workers.drain(..) {
            loop {
                match worker.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(2))
                    }
                    _ => {
                        let _ = worker.child.kill();
                        let _ = worker.child.wait();
                        break;
                    }
                }
            }
        }
    }

    /// The actual endpoint the coordinator listens on (TCP port 0
    /// resolved) — what the worker processes dialed.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Live worker processes (== shard count, which a small graph may
    /// cap below the configured peer count).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl<'p, P: WireProgram> Drop for RemoteRunner<'p, P> {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

impl<'p, P: WireProgram> Runner<P> for RemoteRunner<'p, P> {
    fn step(&mut self) {
        self.try_step_impl()
            .unwrap_or_else(|e| panic!("remote execution failed: {e}"));
    }

    fn try_step(&mut self) -> Result<(), EngineError> {
        self.try_step_impl().map_err(EngineError::Pool)
    }

    fn steps(&self) -> usize {
        self.rounds
    }

    fn activations(&self) -> usize {
        self.rounds * self.states.len()
    }

    fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    fn state(&self, v: NodeId) -> &P::State {
        &self.states[self.layout.internal(v.0)]
    }

    fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        let internal = self.layout.internal(v.0);
        self.dirty.push(internal);
        &mut self.states[internal]
    }

    fn states_snapshot(&self) -> Vec<P::State> {
        (0..self.states.len())
            .map(|v| self.states[self.layout.internal(v)].clone())
            .collect()
    }

    fn context(&self, v: NodeId) -> NodeContext {
        self.contexts[self.layout.internal(v.0)].clone()
    }

    fn any_alarm(&self) -> bool {
        (0..self.states.len()).any(|i| {
            matches!(
                self.program.verdict(&self.contexts[i], &self.states[i]),
                Verdict::Reject
            )
        })
    }

    fn all_accept(&self) -> bool {
        (0..self.states.len()).all(|i| {
            matches!(
                self.program.verdict(&self.contexts[i], &self.states[i]),
                Verdict::Accept
            )
        })
    }

    fn alarming_nodes(&self) -> Vec<NodeId> {
        (0..self.states.len())
            .filter(|&v| {
                let i = self.layout.internal(v);
                matches!(
                    self.program.verdict(&self.contexts[i], &self.states[i]),
                    Verdict::Reject
                )
            })
            .map(NodeId)
            .collect()
    }

    fn apply_faults(&mut self, plan: &FaultPlan, mutate: &mut dyn FnMut(NodeId, &mut P::State)) {
        for &v in plan.nodes() {
            let internal = self.layout.internal(v.0);
            self.dirty.push(internal);
            mutate(v, &mut self.states[internal]);
        }
    }

    fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.observer = Some(observer);
    }

    fn report(&self) -> RunReport {
        RunReport {
            node_count: self.states.len(),
            steps: self.rounds,
            activations: Runner::activations(self),
            threads: self.peers,
            engine: format!("remote-sync(peers={})", self.peers),
        }
    }

    fn into_network(mut self: Box<Self>) -> Network<P> {
        self.shutdown_workers();
        let states = std::mem::take(&mut self.states);
        let graph = std::mem::replace(&mut self.graph, WeightedGraph::new());
        let states = self.layout.unpermute(states);
        Network::with_states(graph, states)
    }
}

/// The coordinator's half of the versioned handshake: reads the worker's
/// [`Frame::Hello`], rejects a version skew with a typed
/// [`Frame::Error`] + [`WireError::VersionMismatch`], acknowledges
/// otherwise. Returns the worker's announced part index.
pub fn handshake_accept(conn: &mut Conn) -> Result<u32, WireError> {
    match read_frame(conn)? {
        Frame::Hello { version, part } => {
            if version != WIRE_VERSION {
                let _ = write_frame(
                    conn,
                    &Frame::Error {
                        code: ERR_VERSION,
                        message: format!(
                            "coordinator speaks wire v{WIRE_VERSION}, worker announced v{version}"
                        ),
                    },
                );
                return Err(WireError::VersionMismatch {
                    ours: WIRE_VERSION,
                    theirs: version,
                });
            }
            write_frame(
                conn,
                &Frame::HelloAck {
                    version: WIRE_VERSION,
                },
            )?;
            Ok(part)
        }
        _ => Err(WireError::BadValue("expected Hello")),
    }
}

/// Locates the `smst-net` worker binary: the `SMST_NET_WORKER` env
/// override first (tests point it at `CARGO_BIN_EXE_smst-net`), then a
/// sibling of the current executable, then the parent directory (the
/// `target/<profile>/` layout when tests run from `deps/`).
fn worker_binary() -> Result<std::path::PathBuf, String> {
    if let Ok(path) = std::env::var("SMST_NET_WORKER") {
        return Ok(std::path::PathBuf::from(path));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let name = format!("smst-net{}", std::env::consts::EXE_SUFFIX);
    let mut candidates = Vec::new();
    if let Some(dir) = exe.parent() {
        candidates.push(dir.join(&name));
        if let Some(parent) = dir.parent() {
            candidates.push(parent.join(&name));
        }
    }
    candidates
        .into_iter()
        .find(|c| c.is_file())
        .ok_or_else(|| "cannot locate the smst-net worker binary; set SMST_NET_WORKER".to_string())
}

/// Spawns one worker process dialing `endpoint` for `part`.
fn spawn_worker(bin: &std::path::Path, endpoint: &Endpoint, part: usize) -> Result<Child, String> {
    Command::new(bin)
        .arg("worker")
        .arg("--connect")
        .arg(endpoint.to_arg())
        .arg("--part")
        .arg(part.to_string())
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn worker {part} ({}): {e}", bin.display()))
}

/// The retry backoff: base backoff doubled per prior retry, saturating —
/// the same curve as the in-process pool's `RecoveryPolicy`.
fn backoff_before(policy: &RecoveryPolicy, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(16);
    policy.backoff.saturating_mul(factor)
}
