//! The `smst-net` binary: the shard worker process the coordinator
//! spawns (`smst-net worker --connect <unix:PATH|tcp:ADDR> --part <K>`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => match smst_net::worker::worker_main(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("smst-net worker: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: smst-net worker --connect <unix:PATH|tcp:ADDR> --part <K> \
                 [--wire-version <N>]"
            );
            ExitCode::from(2)
        }
    }
}
