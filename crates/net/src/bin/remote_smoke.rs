//! CI smoke for the distributed backend: a coordinator plus local worker
//! processes over the default localhost transport, checked **bit-for-bit**
//! against the in-process sharded backend and the sequential reference,
//! then timed. Writes the round benchmarks and wire accounting to
//! `BENCH_remote.json` (the `smst-analyze check` gate consumes it).
//! `SMST_BENCH_SMOKE=1` shrinks the graph and iteration counts.

use smst_bench::harness::{smoke_mode, BenchGroup};
use smst_engine::programs::AlarmedFlood;
use smst_engine::{Backend, EngineConfig, GraphFamily, ScenarioSpec};

fn main() {
    smst_net::install_stock();
    let peers = 2usize;
    let n = if smoke_mode() { 96 } else { 384 };
    let rounds = 24usize;
    let iters = if smoke_mode() { 8 } else { 24 };
    let family = GraphFamily::Expander { n, degree: 4 };
    let graph = ScenarioSpec::new(family).seed(11).build_graph();
    let program = AlarmedFlood::new(0, n as u64 - 1);
    println!("remote smoke: {n}-node expander, {peers} worker processes, {rounds} rounds");

    // the headline acceptance: the remote register stream equals the
    // in-process sharded backend's, round by round
    let remote_config = EngineConfig::remote(peers);
    let sharded_config = EngineConfig::new().threads(peers).halo(true);
    let mut remote = remote_config
        .instantiate(&program, graph.clone())
        .expect("a valid remote envelope");
    let mut sharded = sharded_config
        .instantiate(&program, graph.clone())
        .expect("a valid sharded envelope");
    for round in 0..rounds {
        remote.step();
        sharded.step();
        assert_eq!(
            remote.states_snapshot(),
            sharded.states_snapshot(),
            "remote diverged from the sharded backend at round {round}"
        );
    }
    assert!(
        remote.all_accept(),
        "the flood must quiesce in {rounds} rounds"
    );
    let reference = EngineConfig::new()
        .backend(Backend::Reference)
        .instantiate(&program, graph.clone())
        .expect("a valid reference envelope");
    let mut reference = reference;
    for _ in 0..rounds {
        reference.step();
    }
    assert_eq!(
        remote.states_snapshot(),
        reference.states_snapshot(),
        "remote diverged from the sequential reference"
    );
    println!("  bit-for-bit vs sharded ({rounds} rounds) and reference: ok");

    // the timed leg: per-round wall time over the wire vs in-process
    let mut group = BenchGroup::new("remote");
    group.bench("round_remote_p2", iters as u32, || remote.step());
    group.bench("round_sharded_t2", iters as u32, || sharded.step());
    group.record_meta("nodes", n as f64);
    group.record_meta("peers", peers as f64);
    group.record_meta("rounds_checked", rounds as f64);
    let report = remote.report();
    println!("  engine: {} ({} steps)", report.engine, report.steps);
    let path = group.finish();
    println!("  wrote {}", path.display());
}
