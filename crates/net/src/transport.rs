//! Socket transport for the wire: Unix-domain sockets (the localhost
//! default) or TCP, behind one [`Endpoint`] / [`Listener`] / [`Conn`]
//! surface. Deadlines are explicit everywhere — a connect, accept or read
//! that cannot complete in time surfaces as a typed
//! [`WireError::Timeout`], never a hang.

use crate::wire::{io_error, WireError};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

/// How often a deadline loop polls a non-blocking accept/connect.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// A socket address the coordinator listens on and workers dial, in the
/// `unix:<path>` / `tcp:<host:port>` command-line syntax the worker bin
/// parses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
}

impl Endpoint {
    /// Parses the `unix:<path>` / `tcp:<addr>` argument syntax.
    pub fn parse(s: &str) -> Result<Endpoint, WireError> {
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Endpoint::Unix(path.into()));
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(WireError::BadValue("unix endpoints need a unix platform"));
            }
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        Err(WireError::BadValue(
            "endpoint must be unix:<path> or tcp:<addr>",
        ))
    }

    /// The `unix:<path>` / `tcp:<addr>` argument form.
    pub fn to_arg(&self) -> String {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => format!("unix:{}", path.display()),
            Endpoint::Tcp(addr) => format!("tcp:{addr}"),
        }
    }

    /// Dials the endpoint, retrying until `deadline` (the listener may
    /// still be a few scheduler slices from `bind` when a spawned worker
    /// starts).
    pub fn connect(&self, deadline: Duration) -> Result<Conn, WireError> {
        let give_up = Instant::now() + deadline;
        loop {
            let attempt = match self {
                #[cfg(unix)]
                Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
                Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
            };
            match attempt {
                Ok(conn) => {
                    conn.configure()?;
                    return Ok(conn);
                }
                Err(_) if Instant::now() < give_up => std::thread::sleep(POLL_INTERVAL),
                Err(e) => return Err(io_error(e)),
            }
        }
    }
}

/// A fresh, collision-free localhost endpoint: a Unix socket under the
/// temp dir on Unix platforms, an ephemeral-port TCP loopback elsewhere.
pub fn unique_endpoint() -> Endpoint {
    #[cfg(unix)]
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        Endpoint::Unix(std::env::temp_dir().join(format!(
            "smst-net-{}-{}.sock",
            std::process::id(),
            seq
        )))
    }
    #[cfg(not(unix))]
    {
        Endpoint::Tcp("127.0.0.1:0".to_string())
    }
}

/// A fresh ephemeral-port TCP loopback endpoint (the cross-platform /
/// multi-host transport; [`unique_endpoint`] prefers Unix sockets
/// locally).
pub fn unique_tcp_endpoint() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}

/// The coordinator's listening socket. Dropping a Unix listener removes
/// its socket file.
#[derive(Debug)]
pub enum Listener {
    /// A Unix-domain listener plus the path to unlink on drop.
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint, returning the listener plus the **actual**
    /// endpoint (TCP port 0 resolves to the assigned ephemeral port —
    /// that is the address workers must dial).
    pub fn bind(endpoint: &Endpoint) -> Result<(Listener, Endpoint), WireError> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let listener = UnixListener::bind(path).map_err(io_error)?;
                Ok((
                    Listener::Unix(listener, path.clone()),
                    Endpoint::Unix(path.clone()),
                ))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str()).map_err(io_error)?;
                let actual = listener.local_addr().map_err(io_error)?;
                Ok((Listener::Tcp(listener), Endpoint::Tcp(actual.to_string())))
            }
        }
    }

    /// Accepts one connection within `deadline` (polling non-blocking
    /// accepts — neither listener type has a native accept timeout).
    pub fn accept_deadline(&self, deadline: Duration) -> Result<Conn, WireError> {
        let give_up = Instant::now() + deadline;
        self.set_nonblocking(true)?;
        let conn = loop {
            let attempt = match self {
                #[cfg(unix)]
                Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Conn::Unix(s)),
                Listener::Tcp(listener) => listener.accept().map(|(s, _)| Conn::Tcp(s)),
            };
            match attempt {
                Ok(conn) => break conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= give_up {
                        self.set_nonblocking(false)?;
                        return Err(WireError::Timeout);
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.set_nonblocking(false)?;
                    return Err(io_error(e));
                }
            }
        };
        self.set_nonblocking(false)?;
        conn.configure()?;
        Ok(conn)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> Result<(), WireError> {
        match self {
            #[cfg(unix)]
            Listener::Unix(listener, _) => listener.set_nonblocking(nonblocking).map_err(io_error),
            Listener::Tcp(listener) => listener.set_nonblocking(nonblocking).map_err(io_error),
        }
    }
}

#[cfg(unix)]
impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One established connection (either transport), blocking, with an
/// adjustable read deadline.
#[derive(Debug)]
pub enum Conn {
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Post-connect socket setup: blocking mode (accepted streams can
    /// inherit the listener's non-blocking flag on some platforms) and
    /// `TCP_NODELAY` for TCP — round frames are latency-bound, not
    /// throughput-bound.
    fn configure(&self) -> Result<(), WireError> {
        match self {
            #[cfg(unix)]
            Conn::Unix(stream) => stream.set_nonblocking(false).map_err(io_error),
            Conn::Tcp(stream) => {
                stream.set_nonblocking(false).map_err(io_error)?;
                stream.set_nodelay(true).map_err(io_error)
            }
        }
    }

    /// Sets (or clears) the read deadline — the transport form of the
    /// engine's barrier watchdog. `None` waits forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), WireError> {
        match self {
            #[cfg(unix)]
            Conn::Unix(stream) => stream.set_read_timeout(timeout).map_err(io_error),
            Conn::Tcp(stream) => stream.set_read_timeout(timeout).map_err(io_error),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
            Conn::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
            Conn::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
            Conn::Tcp(stream) => stream.flush(),
        }
    }
}
