//! Distributed backend for the engine: shards as **worker processes**
//! over sockets, behind `Backend::Remote`.
//!
//! The engine's `EngineConfig::instantiate` stays the single entry point:
//! this crate registers a remote factory per program (see [`install`] /
//! [`install_stock`]), and an envelope with `Backend::Remote { peers }`
//! then resolves to a [`RemoteRunner`] — a coordinator that spawns one
//! `smst-net worker` process per shard, ships each a one-time setup frame
//! (graph + layout + registers), and drives synchronous rounds over the
//! length-prefixed `smst-wire-v1` protocol ([`wire`]). Worker processes
//! rebuild their shard geometry deterministically from the setup frame,
//! so the register stream is **bit-for-bit** identical to the in-process
//! sharded backend for the same envelope.
//!
//! Layering:
//!
//! - [`wire`] — frames, the versioned handshake, typed [`WireError`]s;
//! - [`transport`] — Unix-domain / TCP sockets with explicit deadlines;
//! - [`program`] — the [`WireProgram`] codec trait + stock impls;
//! - [`worker`] — the shard process loop behind `smst-net worker`;
//! - [`remote`] — the coordinator ([`RemoteRunner`]) implementing the
//!   engine's `Runner` trait, recovery included.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod program;
pub mod remote;
pub mod transport;
pub mod wire;
pub mod worker;

pub use program::{decode_states, encode_states, WireProgram};
pub use remote::{handshake_accept, RemoteRunner};
pub use transport::{unique_endpoint, unique_tcp_endpoint, Conn, Endpoint, Listener};
pub use wire::{read_frame, write_frame, Frame, WireError, WIRE_SCHEMA, WIRE_VERSION};

use smst_engine::programs::{AlarmedFlood, MinIdFlood, MonitorFlood};
use smst_engine::{register_remote_factory, ConfigError, EngineConfig, Runner};
use smst_graph::WeightedGraph;

/// The factory the engine registry stores: launch a coordinator and box
/// it behind the object-safe `Runner`.
fn launch_boxed<'p, P: WireProgram>(
    program: &'p P,
    graph: WeightedGraph,
    config: &EngineConfig,
) -> Result<Box<dyn Runner<P> + 'p>, ConfigError> {
    Ok(Box::new(RemoteRunner::launch(program, graph, config)?))
}

/// Registers the remote execution path for `P`: after this,
/// `EngineConfig::instantiate` resolves `Backend::Remote` envelopes for
/// `P` to a [`RemoteRunner`] (so scenarios, sweeps, chaos campaigns run
/// unmodified). The worker binary must also carry a dispatch arm for
/// `P::WIRE_NAME` (the stock `smst-net` binary knows the stock programs).
pub fn install<P: WireProgram>() {
    register_remote_factory::<P>(launch_boxed::<P>);
}

/// [`install`] for every stock engine workload the `smst-net` worker
/// binary can execute.
pub fn install_stock() {
    install::<MinIdFlood>();
    install::<MonitorFlood>();
    install::<AlarmedFlood>();
}
