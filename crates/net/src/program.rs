//! Programs that can cross the wire: a spec codec (so the worker can
//! rebuild the program from [`SetupFrame::spec`](crate::wire::SetupFrame))
//! plus a register codec (so halo/patch/interior payloads stay opaque to
//! the frame layer).
//!
//! The stock engine workloads ([`MinIdFlood`], [`MonitorFlood`],
//! [`AlarmedFlood`]) all implement it; `crate::install_stock()` registers
//! their remote execution paths with the engine. A custom program joins
//! the wire by implementing [`WireProgram`], adding a dispatch arm in the
//! worker (`crate::worker`), and calling `crate::install::<P>()` in the
//! coordinator process.

use crate::wire::{Dec, WireError};
use smst_engine::programs::{AlarmedFlood, MinIdFlood, MonitorFlood};
use smst_sim::NodeProgram;

/// A [`NodeProgram`] with a wire codec: the spec (program parameters) and
/// the per-node register both encode to the workspace's hand-rolled
/// little-endian format. `'static` because the coordinator-side registry
/// is keyed by `TypeId`.
pub trait WireProgram: NodeProgram + Sync + Sized + 'static {
    /// The stable program name carried in
    /// [`SetupFrame::program`](crate::wire::SetupFrame::program) — the
    /// worker's dispatch key. Matches [`NodeProgram::name`].
    const WIRE_NAME: &'static str;

    /// Encodes the program parameters.
    fn encode_spec(&self, out: &mut Vec<u8>);

    /// Rebuilds the program from its encoded parameters.
    fn decode_spec(dec: &mut Dec<'_>) -> Result<Self, WireError>;

    /// Encodes one register.
    fn encode_state(state: &Self::State, out: &mut Vec<u8>);

    /// Decodes one register.
    fn decode_state(dec: &mut Dec<'_>) -> Result<Self::State, WireError>;
}

/// Encodes a register sequence back-to-back (the count travels out of
/// band — patch lists carry it explicitly, halo/interior payloads derive
/// it from the shard geometry).
pub fn encode_states<'a, P, I>(states: I) -> Vec<u8>
where
    P: WireProgram,
    P::State: 'a,
    I: IntoIterator<Item = &'a P::State>,
{
    let mut out = Vec::new();
    for state in states {
        P::encode_state(state, &mut out);
    }
    out
}

/// Decodes exactly `count` registers; the payload must be an exact fit
/// (trailing bytes are a framing bug, surfaced as
/// [`WireError::Trailing`]).
pub fn decode_states<P: WireProgram>(
    bytes: &[u8],
    count: usize,
) -> Result<Vec<P::State>, WireError> {
    let mut dec = Dec::new(bytes);
    let mut states = Vec::with_capacity(count);
    for _ in 0..count {
        states.push(P::decode_state(&mut dec)?);
    }
    dec.finish()?;
    Ok(states)
}

impl WireProgram for MinIdFlood {
    const WIRE_NAME: &'static str = "min-id-flood";

    fn encode_spec(&self, out: &mut Vec<u8>) {
        crate::wire::put_u64(out, self.leader());
    }

    fn decode_spec(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(MinIdFlood::new(dec.u64()?))
    }

    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        crate::wire::put_u64(out, *state);
    }

    fn decode_state(dec: &mut Dec<'_>) -> Result<u64, WireError> {
        dec.u64()
    }
}

impl WireProgram for MonitorFlood {
    const WIRE_NAME: &'static str = "monitor-flood";

    fn encode_spec(&self, out: &mut Vec<u8>) {
        crate::wire::put_u64(out, self.monitor());
        crate::wire::put_u64(out, self.ceiling());
    }

    fn decode_spec(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let monitor = dec.u64()?;
        let ceiling = dec.u64()?;
        Ok(MonitorFlood::new(monitor, ceiling))
    }

    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        crate::wire::put_u64(out, *state);
    }

    fn decode_state(dec: &mut Dec<'_>) -> Result<u64, WireError> {
        dec.u64()
    }
}

impl WireProgram for AlarmedFlood {
    const WIRE_NAME: &'static str = "alarmed-flood";

    fn encode_spec(&self, out: &mut Vec<u8>) {
        crate::wire::put_u64(out, self.monitor());
        crate::wire::put_u64(out, self.ceiling());
    }

    fn decode_spec(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let monitor = dec.u64()?;
        let ceiling = dec.u64()?;
        Ok(AlarmedFlood::new(monitor, ceiling))
    }

    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        crate::wire::put_u64(out, *state);
    }

    fn decode_state(dec: &mut Dec<'_>) -> Result<u64, WireError> {
        dec.u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_wire_names_match_the_program_names() {
        assert_eq!(MinIdFlood::new(0).name(), MinIdFlood::WIRE_NAME);
        assert_eq!(MonitorFlood::new(0, 9).name(), MonitorFlood::WIRE_NAME);
        assert_eq!(AlarmedFlood::new(0, 9).name(), AlarmedFlood::WIRE_NAME);
    }

    #[test]
    fn specs_round_trip() {
        let mut buf = Vec::new();
        AlarmedFlood::new(7, 99).encode_spec(&mut buf);
        let decoded = AlarmedFlood::decode_spec(&mut Dec::new(&buf)).unwrap();
        assert_eq!(decoded.monitor(), 7);
        assert_eq!(decoded.ceiling(), 99);
    }

    #[test]
    fn state_sequences_round_trip_exactly() {
        let states = [3u64, u64::MAX, 0, 42];
        let bytes = encode_states::<MinIdFlood, _>(states.iter());
        assert_eq!(decode_states::<MinIdFlood>(&bytes, 4).unwrap(), states);
        // short payload is Truncated, long payload is Trailing
        assert!(matches!(
            decode_states::<MinIdFlood>(&bytes, 5),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            decode_states::<MinIdFlood>(&bytes, 3),
            Err(WireError::Trailing { extra: 8 })
        ));
    }
}
