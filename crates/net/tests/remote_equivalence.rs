//! The distributed backend's acceptance suite: `Backend::Remote` over
//! real localhost worker processes must be **bit-for-bit** equal to the
//! in-process sharded backend and the sequential reference — register
//! streams, chaos books and deterministic observer traces alike — at 2
//! and 4 workers, through the unmodified `EngineConfig::instantiate`
//! entry point. A worker killed mid-campaign and respawned under the
//! `RecoveryPolicy` must be invisible in the trace; a permanently hung
//! peer must surface the barrier watchdog as a typed
//! [`PoolError::BarrierTimeout`] through `Runner::try_step`; a wire
//! version skew must be a typed [`WireError::VersionMismatch`], never a
//! misparse.

use smst_engine::programs::{AlarmedFlood, MinIdFlood};
use smst_engine::{
    run_chaos, ChaosReport, EngineConfig, EngineError, InjectionSpec, LayoutPolicy, PoolError,
    RecoveryPolicy, Runner,
};
use smst_graph::generators::{expander_graph, path_graph};
use smst_net::{handshake_accept, unique_tcp_endpoint, Listener, RemoteRunner, WireError};
use smst_sim::{FaultSchedule, RecordingObserver};
use std::sync::Once;
use std::time::Duration;

const N: usize = 48;

/// Installs the remote factories and points the coordinator at the
/// `smst-net` worker binary Cargo built for this test run.
fn setup() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        smst_net::install_stock();
        std::env::set_var("SMST_NET_WORKER", env!("CARGO_BIN_EXE_smst-net"));
    });
}

/// Three periodic fault waves (the `chaos_determinism` schedule): 30
/// steps apart, room for the [`AlarmedFlood`] garbage to decay and the
/// flood to re-converge between waves.
fn schedule() -> FaultSchedule {
    FaultSchedule::periodic(30, 5, 23).offset(3)
}

/// Everything a campaign determines: per-wave books, final registers and
/// the full deterministic observer trace (halo bytes included — the
/// remote wire must account exactly like the in-process halo engine).
#[derive(Debug, PartialEq, Eq)]
struct CampaignTrace {
    report: ChaosReport,
    states: Vec<u64>,
    trace: Vec<(usize, usize, usize, u64)>,
}

/// One seeded chaos campaign on whatever path `config` describes.
fn run_campaign(config: &EngineConfig, steps: usize) -> CampaignTrace {
    let program = AlarmedFlood::new(0, N as u64 - 1);
    let graph = expander_graph(N, 4, 7);
    let recording = RecordingObserver::new();
    let mut runner = config
        .instantiate(&program, graph)
        .expect("a valid chaos envelope");
    runner.set_observer(Box::new(recording.clone()));
    let report = run_chaos(runner.as_mut(), &schedule(), steps, &mut |_v, s| {
        *s = AlarmedFlood::BOGUS
    })
    .expect("the campaign survives the schedule");
    let states = runner.into_network().states().to_vec();
    CampaignTrace {
        report,
        states,
        trace: recording.deterministic_trace(),
    }
}

#[test]
fn remote_matches_sharded_and_reference_round_by_round() {
    setup();
    let rounds = 30usize;
    for peers in [2usize, 4] {
        let program = AlarmedFlood::new(0, N as u64 - 1);
        let graph = expander_graph(N, 4, 7);
        let mut remote = EngineConfig::remote(peers)
            .instantiate(&program, graph.clone())
            .expect("a valid remote envelope");
        // the in-process twin: same shard count, halo-structured exchange
        let mut sharded = EngineConfig::new()
            .threads(peers)
            .halo(true)
            .instantiate(&program, graph.clone())
            .expect("a valid sharded envelope");
        for round in 0..rounds {
            remote.step();
            sharded.step();
            assert_eq!(
                remote.states_snapshot(),
                sharded.states_snapshot(),
                "remote({peers}) diverged from sharded at round {round}"
            );
            assert_eq!(remote.alarming_nodes(), sharded.alarming_nodes());
        }
        assert_eq!(
            remote.report().engine,
            format!("remote-sync(peers={peers})")
        );
        let mut reference = EngineConfig::reference()
            .instantiate(&program, graph)
            .expect("a valid reference envelope");
        for _ in 0..rounds {
            reference.step();
        }
        assert_eq!(
            remote.states_snapshot(),
            reference.states_snapshot(),
            "remote({peers}) diverged from the sequential reference"
        );
    }
}

#[test]
fn remote_replays_the_rcm_layout_bit_for_bit() {
    setup();
    // a layout permutation must stay invisible: the wire ships original-
    // order registers and both sides re-derive the permutation locally
    let program = MinIdFlood::new(0);
    let graph = expander_graph(N, 4, 11);
    let mut remote = EngineConfig::remote(2)
        .layout(LayoutPolicy::Rcm)
        .instantiate(&program, graph.clone())
        .expect("a valid remote RCM envelope");
    let mut plain = EngineConfig::remote(2)
        .instantiate(&program, graph)
        .expect("a valid remote envelope");
    for _ in 0..12 {
        remote.step();
        plain.step();
        assert_eq!(remote.states_snapshot(), plain.states_snapshot());
    }
}

#[test]
fn more_peers_than_nodes_collapses_gracefully() {
    setup();
    // the balanced partition caps the shard count at the node count; the
    // coordinator spawns only as many workers as there are shards
    let program = MinIdFlood::new(0);
    let graph = path_graph(3, 5);
    let config = EngineConfig::remote(4);
    let mut remote = RemoteRunner::launch(&program, graph.clone(), &config)
        .expect("a valid degenerate envelope");
    assert!(remote.worker_count() <= 3, "at most one worker per node");
    let mut reference = EngineConfig::reference()
        .instantiate(&program, graph)
        .expect("a valid reference envelope");
    for _ in 0..4 {
        remote.step();
        reference.step();
        assert_eq!(remote.states_snapshot(), reference.states_snapshot());
    }
}

#[test]
fn chaos_campaigns_replay_identically_over_the_wire() {
    setup();
    // the full campaign — books, registers, observer trace with halo
    // accounting — matches the in-process halo engine at both widths
    for peers in [2usize, 4] {
        let sharded = run_campaign(&EngineConfig::new().threads(peers).halo(true), 75);
        let remote = run_campaign(&EngineConfig::remote(peers), 75);
        assert_eq!(
            remote, sharded,
            "the remote campaign at {peers} peers diverged"
        );
        assert_eq!(remote.report.waves.len(), 3, "waves at 3, 33 and 63");
    }
}

#[test]
fn a_killed_worker_recovers_invisibly() {
    setup();
    // worker 1's process dies (an injected panic aborts it) mid-campaign;
    // the coordinator respawns it under the recovery policy and replays
    // the round from the pre-round mirror — the clean run's books,
    // registers and trace must reproduce bit-for-bit
    let config = EngineConfig::remote(2);
    let clean = run_campaign(&config, 40);
    let chaotic = run_campaign(
        &config
            .recovery(RecoveryPolicy::retries(2).backoff(Duration::from_millis(1)))
            .inject(InjectionSpec::panic_at(7, 1)),
        40,
    );
    assert_eq!(
        chaotic, clean,
        "worker recovery leaked into the deterministic trace"
    );
}

#[test]
fn a_hung_peer_is_a_typed_timeout_not_a_deadlock() {
    setup();
    // a peer stalled past the watchdog must surface the configured limit
    // as a typed timeout through try_step — timeouts are never retried
    let watchdog = Duration::from_millis(100);
    let program = AlarmedFlood::new(0, N as u64 - 1);
    let graph = expander_graph(N, 4, 7);
    let config = EngineConfig::remote(2)
        .recovery(RecoveryPolicy::retries(3).watchdog(watchdog))
        .inject(InjectionSpec::stall_at(2, 1, 800));
    let mut runner = config
        .instantiate(&program, graph)
        .expect("a valid stall envelope");
    let outcome = (0..6).try_for_each(|_| runner.try_step());
    match outcome {
        Err(EngineError::Pool(PoolError::BarrierTimeout { timeout })) => {
            assert_eq!(timeout, watchdog, "the configured watchdog surfaced")
        }
        other => panic!("a hung peer must trip the watchdog, got {other:?}"),
    }
}

#[test]
fn worker_exhausting_retries_is_a_typed_panic_error() {
    setup();
    // with no retries budgeted, the first dead peer is terminal and typed
    let program = AlarmedFlood::new(0, N as u64 - 1);
    let graph = expander_graph(N, 4, 7);
    let config = EngineConfig::remote(2).inject(InjectionSpec::panic_at(1, 0));
    let mut runner = config
        .instantiate(&program, graph)
        .expect("a valid envelope");
    let outcome = (0..4).try_for_each(|_| runner.try_step());
    match outcome {
        Err(EngineError::Pool(PoolError::WorkerPanic { attempts, .. })) => {
            assert_eq!(attempts, 1, "one attempt, zero retries")
        }
        other => panic!("a dead peer without recovery must be typed, got {other:?}"),
    }
}

#[test]
fn version_skew_is_a_typed_rejection() {
    setup();
    // a worker announcing a future protocol version is refused with a
    // typed mismatch on both sides of the wire
    let (listener, endpoint) = Listener::bind(&smst_net::unique_endpoint()).expect("bind");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_smst-net"))
        .arg("worker")
        .arg("--connect")
        .arg(endpoint.to_arg())
        .arg("--part")
        .arg("0")
        .arg("--wire-version")
        .arg("99")
        .spawn()
        .expect("spawning the skewed worker");
    let mut conn = listener
        .accept_deadline(Duration::from_secs(10))
        .expect("the worker dials in");
    assert_eq!(
        handshake_accept(&mut conn),
        Err(WireError::VersionMismatch {
            ours: 1,
            theirs: 99
        })
    );
    // the worker sees the typed Error frame and exits nonzero
    let status = child.wait().expect("the worker exits");
    assert!(!status.success(), "a rejected worker exits nonzero");
}

#[test]
fn the_tcp_transport_replays_the_reference() {
    setup();
    // same protocol over TCP loopback (the multi-host transport): the
    // register stream still matches the sequential reference
    let program = MinIdFlood::new(0);
    let graph = expander_graph(N, 4, 3);
    let config = EngineConfig::remote(2);
    let mut remote =
        RemoteRunner::launch_on(&program, graph.clone(), &config, unique_tcp_endpoint())
            .expect("a valid TCP envelope");
    let mut reference = EngineConfig::reference()
        .instantiate(&program, graph)
        .expect("a valid reference envelope");
    for round in 0..10 {
        remote.step();
        reference.step();
        assert_eq!(
            remote.states_snapshot(),
            reference.states_snapshot(),
            "TCP transport diverged at round {round}"
        );
    }
}
