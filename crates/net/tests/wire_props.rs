//! Property tests for the `smst-wire-v1` frame codec: every frame type
//! round-trips bit-for-bit (zero-length and large halo payloads
//! included), every torn-frame prefix decodes to a **typed** error (never
//! a panic, never a misparse), trailing bytes and unknown tags/schemas
//! are rejected, and a hostile length prefix is refused before
//! allocation.

use proptest::prelude::*;
use smst_net::wire::{
    frame_bytes, read_frame, write_frame, Frame, InteriorsFrame, RoundFrame, SetupFrame, WireError,
    WireGraph, WireInjection, MAX_FRAME,
};

/// Round-trips one frame through the payload codec and through the
/// length-prefixed stream layer.
fn assert_round_trip(frame: &Frame) {
    let decoded = Frame::decode(&frame.encode()).expect("a frame encodes decodably");
    assert_eq!(&decoded, frame, "payload codec round-trip");
    let bytes = frame_bytes(frame);
    let mut stream: &[u8] = &bytes;
    let streamed = read_frame(&mut stream).expect("a written frame reads back");
    assert_eq!(&streamed, frame, "stream round-trip");
    assert!(stream.is_empty(), "read_frame consumed the exact frame");
    let mut written = Vec::new();
    write_frame(&mut written, frame).expect("writing to a buffer");
    assert_eq!(written, bytes, "write_frame puts frame_bytes on the wire");
}

/// Every truncation of the wire bytes is a typed error: the empty prefix
/// is a clean [`WireError::PeerClosed`], every other cut is a torn frame.
fn assert_truncations_are_typed(frame: &Frame) {
    let bytes = frame_bytes(frame);
    for cut in 0..bytes.len() {
        let mut stream: &[u8] = &bytes[..cut];
        match read_frame(&mut stream) {
            Err(WireError::PeerClosed) => assert_eq!(cut, 0, "PeerClosed only between frames"),
            Err(WireError::Truncated) => assert!(cut > 0, "a torn frame needs at least one byte"),
            other => panic!("cut at {cut}/{} must be typed, got {other:?}", bytes.len()),
        }
    }
}

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            version: 1,
            part: 3,
        },
        Frame::HelloAck { version: 1 },
        Frame::Setup(SetupFrame {
            seed: 11,
            peers: 4,
            part: 2,
            layout: 1,
            program: "min-id-flood".to_string(),
            spec: vec![7, 0, 0, 0, 0, 0, 0, 0],
            graph: WireGraph {
                ids: vec![5, 1, 9],
                edges: vec![(0, 1, 10), (1, 2, 20)],
            },
            states: vec![1, 2, 3, 4],
        }),
        Frame::Round(RoundFrame {
            round: 42,
            dispatch: 99,
            patch_nodes: vec![0, 7],
            patch_states: vec![8; 16],
            halo_states: Vec::new(), // zero-length halo is a first-class frame
            inject: Some(WireInjection::Stall { millis: 250 }),
        }),
        Frame::Round(RoundFrame {
            round: 0,
            dispatch: 1,
            patch_nodes: Vec::new(),
            patch_states: Vec::new(),
            halo_states: vec![0xAB; 9],
            inject: Some(WireInjection::Panic),
        }),
        Frame::Interiors(InteriorsFrame {
            round: 42,
            dispatch: 99,
            compute_ns: 123_456,
            states: vec![0xCD; 24],
        }),
        Frame::Shutdown,
        Frame::Error {
            code: 3,
            message: "expected Round or Shutdown".to_string(),
        },
    ]
}

#[test]
fn every_frame_type_round_trips_and_truncates_typed() {
    for frame in sample_frames() {
        assert_round_trip(&frame);
        assert_truncations_are_typed(&frame);
    }
}

#[test]
fn large_halo_payloads_round_trip() {
    // a megabyte-scale halo (131072 u64 registers) exercises the
    // multi-read stream path without the pathological 1 GiB ceiling case
    let frame = Frame::Round(RoundFrame {
        round: 7,
        dispatch: 8,
        patch_nodes: Vec::new(),
        patch_states: Vec::new(),
        halo_states: (0..(1 << 20)).map(|i| (i % 251) as u8).collect(),
        inject: None,
    });
    assert_round_trip(&frame);
}

#[test]
fn hostile_length_prefixes_are_refused_before_allocation() {
    // a length prefix past MAX_FRAME must be rejected without trying to
    // allocate the announced payload
    let huge = (MAX_FRAME + 1).to_le_bytes();
    let mut stream: &[u8] = &huge;
    assert_eq!(
        read_frame(&mut stream),
        Err(WireError::FrameTooLarge {
            len: MAX_FRAME as u64 + 1
        })
    );
}

#[test]
fn trailing_bytes_unknown_tags_and_schemas_are_typed() {
    let mut payload = Frame::Shutdown.encode();
    payload.push(0);
    assert_eq!(
        Frame::decode(&payload),
        Err(WireError::Trailing { extra: 1 })
    );
    assert_eq!(Frame::decode(&[42]), Err(WireError::BadTag(42)));
    assert_eq!(Frame::decode(&[]), Err(WireError::Truncated));
    // a Hello carrying the wrong schema string is BadMagic, not a misparse
    let mut hello = Vec::new();
    hello.push(1u8); // TAG_HELLO
    hello.extend_from_slice(&8u32.to_le_bytes());
    hello.extend_from_slice(b"not-smst");
    hello.extend_from_slice(&1u16.to_le_bytes());
    hello.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        Frame::decode(&hello),
        Err(WireError::BadMagic("not-smst".to_string()))
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_frames_round_trip(version in 0u16..u16::MAX, part in 0u32..1024) {
        assert_round_trip(&Frame::Hello { version, part });
        assert_round_trip(&Frame::HelloAck { version });
    }

    #[test]
    fn round_frames_round_trip(
        round in 0u64..u64::MAX,
        dispatch in 0u64..u64::MAX,
        patches in proptest::collection::vec(0u32..4096, 0..12),
        halo_len in 0usize..64,
        inject_kind in 0u8..3,
        millis in 0u64..10_000,
    ) {
        let frame = Frame::Round(RoundFrame {
            round,
            dispatch,
            patch_states: patches.iter().flat_map(|p| u64::from(*p).to_le_bytes()).collect(),
            patch_nodes: patches,
            halo_states: (0..halo_len * 8).map(|i| (i % 256) as u8).collect(),
            inject: match inject_kind {
                0 => None,
                1 => Some(WireInjection::Panic),
                _ => Some(WireInjection::Stall { millis }),
            },
        });
        assert_round_trip(&frame);
        assert_truncations_are_typed(&frame);
    }

    #[test]
    fn setup_frames_round_trip(
        seed in 0u64..u64::MAX,
        peers in 1u32..64,
        part in 0u32..64,
        layout in 0u8..2,
        ids in proptest::collection::vec(0u64..u64::MAX, 0..24),
        edges in proptest::collection::vec((0u32..24, 0u32..24, 0u64..1000), 0..32),
    ) {
        let frame = Frame::Setup(SetupFrame {
            seed,
            peers,
            part,
            layout,
            program: "alarmed-flood".to_string(),
            spec: seed.to_le_bytes().to_vec(),
            graph: WireGraph {
                ids: ids.clone(),
                edges,
            },
            states: ids.iter().flat_map(|i| i.to_le_bytes()).collect(),
        });
        assert_round_trip(&frame);
    }

    #[test]
    fn interiors_frames_round_trip(
        round in 0u64..u64::MAX,
        dispatch in 0u64..u64::MAX,
        compute_ns in 0u64..u64::MAX,
        states_len in 0usize..64,
    ) {
        let frame = Frame::Interiors(InteriorsFrame {
            round,
            dispatch,
            compute_ns,
            states: (0..states_len * 8).map(|i| (i % 256) as u8).collect(),
        });
        assert_round_trip(&frame);
        assert_truncations_are_typed(&frame);
    }

    #[test]
    fn error_frames_round_trip(code in 0u32..u32::MAX, len in 0usize..64) {
        let message: String = (0..len).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        assert_round_trip(&Frame::Error { code, message });
    }
}
