//! Exit-code contract of the `smst-analyze` binary: `0` clean, `1` gate
//! failure, `2` usage/ingest error — what the CI `analyze-gate` job keys
//! off.

use std::path::{Path, PathBuf};
use std::process::Command;

fn analyze() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smst-analyze"))
}

fn fresh_dirs(name: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("smst_analyze_cli_{name}"));
    let base = root.join("base");
    let cur = root.join("cur");
    // stale files from a previous run must not leak into this one
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&cur).unwrap();
    (base, cur)
}

fn bench_doc(median_ns: u64) -> String {
    format!(
        "{{\"schema\":\"smst-bench-v1\",\"group\":\"g\",\"meta\":{{}},\
         \"results\":[{{\"name\":\"g/case\",\"iters\":5,\"min_ns\":1,\
         \"median_ns\":{median_ns},\"mean_ns\":1.0,\"max_ns\":9}}]}}\n"
    )
}

fn run(cmd: &mut Command) -> (i32, String, String) {
    let out = cmd.output().expect("running smst-analyze");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

fn check(base: &Path, cur: &Path) -> (i32, String, String) {
    run(analyze()
        .arg("check")
        .arg("--baseline")
        .arg(base)
        .arg("--current")
        .arg(cur))
}

#[test]
fn identical_artifacts_pass_with_exit_zero() {
    let (base, cur) = fresh_dirs("pass");
    std::fs::write(base.join("BENCH_g.json"), bench_doc(1_000_000)).unwrap();
    std::fs::write(cur.join("BENCH_g.json"), bench_doc(1_000_000)).unwrap();
    let (code, stdout, _) = check(&base, &cur);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("gate: PASS"), "{stdout}");
}

#[test]
fn a_synthetic_regression_exits_nonzero() {
    let (base, cur) = fresh_dirs("regress");
    std::fs::write(base.join("BENCH_g.json"), bench_doc(1_000_000)).unwrap();
    // 3x the baseline and 2ms over: fails both threshold tests
    std::fs::write(cur.join("BENCH_g.json"), bench_doc(3_000_000)).unwrap();
    let (code, stdout, _) = check(&base, &cur);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("gate: FAIL"), "{stdout}");
}

#[test]
fn custom_thresholds_are_honoured() {
    let (base, cur) = fresh_dirs("thresholds");
    std::fs::write(base.join("BENCH_g.json"), bench_doc(1_000_000)).unwrap();
    std::fs::write(cur.join("BENCH_g.json"), bench_doc(1_500_000)).unwrap();
    // 1.5x passes the default 2x gate...
    let (code, _, _) = check(&base, &cur);
    assert_eq!(code, 0);
    // ...and fails a 1.2x one
    let (code, stdout, _) = run(analyze()
        .arg("check")
        .arg("--baseline")
        .arg(&base)
        .arg("--current")
        .arg(&cur)
        .args(["--tolerance", "1.2"]));
    assert_eq!(code, 1, "{stdout}");
}

#[test]
fn a_chaos_determinism_change_exits_nonzero() {
    let (base, cur) = fresh_dirs("chaos");
    let chaos = |detected: usize| {
        format!(
            "{{\"schema\":\"smst-chaos-v1\",\"group\":\"chaos\",\"runs\":[\
             {{\"label\":\"l\",\"run\":\"seed=7\",\"schedule\":\"s\",\
             \"steps_run\":24,\"injected_faults\":12,\"detected_waves\":{detected},\
             \"quiesced_waves\":0,\"mean_detection_latency\":null,\
             \"mean_quiescence\":null,\"waves\":[]}}]}}\n"
        )
    };
    std::fs::write(base.join("BENCH_chaos.json"), chaos(3)).unwrap();
    std::fs::write(cur.join("BENCH_chaos.json"), chaos(2)).unwrap();
    let (code, stdout, _) = check(&base, &cur);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("detected_waves"), "{stdout}");
}

#[test]
fn corrupt_artifacts_and_bad_usage_exit_two() {
    let (base, cur) = fresh_dirs("corrupt");
    std::fs::write(base.join("BENCH_g.json"), "not json").unwrap();
    let (code, _, stderr) = check(&base, &cur);
    assert_eq!(code, 2, "{stderr}");

    let (code, _, stderr) = run(analyze().arg("frobnicate"));
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (code, _, stderr) = run(analyze().arg("check"));
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn ingest_lists_artifacts_and_flags_corruption() {
    let (base, _) = fresh_dirs("ingest");
    std::fs::write(base.join("BENCH_g.json"), bench_doc(5)).unwrap();
    std::fs::write(
        base.join("TRACE_t.jsonl"),
        "{\"run\":\"t\",\"round\":0,\"alarms\":0,\"activations\":4,\
         \"halo_bytes\":0,\"dispatch_ns\":1,\"compute_ns\":2,\
         \"barrier_ns\":3,\"exchange_ns\":4}\n",
    )
    .unwrap();
    let (code, stdout, _) = run(analyze().arg("ingest").arg(&base));
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("bench group"), "{stdout}");
    assert!(stdout.contains("trace: 1 records"), "{stdout}");

    std::fs::write(
        base.join("BENCH_broken.json"),
        "{\"schema\":\"smst-bench-v9\"}",
    )
    .unwrap();
    let (code, stdout, _) = run(analyze().arg("ingest").arg(&base));
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("FAILED"), "{stdout}");
}

#[test]
fn baseline_seeding_validates_then_copies() {
    let (from, to_parent) = fresh_dirs("seed");
    let to = to_parent.join("baselines");
    std::fs::write(from.join("BENCH_g.json"), bench_doc(42)).unwrap();
    let (code, stdout, _) = run(analyze()
        .arg("baseline")
        .arg("--from")
        .arg(&from)
        .arg("--to")
        .arg(&to));
    assert_eq!(code, 0, "{stdout}");
    assert!(to.join("BENCH_g.json").exists());
    // the seeded baseline gates clean against its own source
    let (code, _, _) = check(&to, &from);
    assert_eq!(code, 0);

    // corrupt source: refuse to seed at all
    std::fs::write(from.join("BENCH_bad.json"), "nope").unwrap();
    let (code, _, stderr) = run(analyze()
        .arg("baseline")
        .arg("--from")
        .arg(&from)
        .arg("--to")
        .arg(&to));
    assert_eq!(code, 2, "{stderr}");
}
