//! Writer ↔ acceptor round-trip for the lint artifact: the document
//! `smst-lint` renders must ingest back through `smst-analyze` with
//! every count and reason intact — the same parity the `schema-parity`
//! lint enforces for every other producer, proven end-to-end here.

use smst_analyze::ingest::{ingest_file, Artifact};
use smst_lint::report::render_json;
use smst_lint::rules::{run_lints, LintConfig, SourceFile};

#[test]
fn lint_artifacts_round_trip_through_ingest() {
    // a tiny in-memory workspace with one violation and one suppression
    let cfg = LintConfig {
        clock_allow: vec![],
        unsafe_allow: vec![],
        deterministic: vec![],
        acceptor_file: "accept.rs".to_string(),
        skip_dirs: vec![],
        safety_window: 10,
    };
    let files = [
        SourceFile::parse("a.rs", "fn f() { let t = Instant::now(); }\n"),
        SourceFile::parse(
            "b.rs",
            "// smst-lint: allow(rng, reason = \"seeded upstream\")\nlet r = thread_rng();\n",
        ),
    ];
    let diags = run_lints(&files, &cfg);
    let json = render_json("roundtrip", files.len(), &diags);

    let dir = std::env::temp_dir().join(format!("smst-lint-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ANALYSIS_lint.json");
    std::fs::write(&path, &json).unwrap();

    let Artifact::Lint(doc) = ingest_file(&path).unwrap() else {
        panic!("expected a lint artifact");
    };
    assert_eq!(doc.root, "roundtrip");
    assert_eq!(doc.files, 2);
    assert_eq!(doc.diagnostics.len(), diags.len());
    assert_eq!(doc.suppressed, 1);
    assert_eq!(doc.unsuppressed, diags.len() - 1);
    let suppressed: Vec<_> = doc.diagnostics.iter().filter(|d| d.suppressed).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].reason.as_deref(), Some("seeded upstream"));
    assert_eq!(suppressed[0].rule, "rng");
    // the unsuppressed clock diagnostic keeps its span
    let clock = doc.diagnostics.iter().find(|d| d.rule == "clock").unwrap();
    assert_eq!((clock.file.as_str(), clock.line), ("a.rs", 1));
    let _ = std::fs::remove_dir_all(&dir);
}
