//! Golden-file tests: the `smst-rounds-v1` and `smst-chaos-v1` schemas,
//! pinned byte-for-byte and field-for-field.
//!
//! The files under `tests/golden/` are checked in; each test regenerates
//! the same document through the real telemetry writer and demands byte
//! equality, then ingests the golden file and pins the exact ordered key
//! sets. A PR that touches a writer's field order, adds a field, or bumps
//! a schema version fails here first — and the fix (regenerate the golden
//! file, bump the analyzer's supported version) is the documentation of
//! the schema change.

use smst_analyze::ingest::{ingest_file, Artifact};
use smst_analyze::Json;
use smst_sim::{RoundStats, WaveStats};
use smst_telemetry::chaos::{ChaosArtifact, ChaosRun};
use smst_telemetry::rounds::RoundsArtifact;
use std::path::PathBuf;

const ROUNDS_GOLDEN: &str = include_str!("golden/BENCH_rounds_golden.json");
const CHAOS_GOLDEN: &str = include_str!("golden/BENCH_chaos_golden.json");

/// The fixed run the rounds golden file captures.
fn rounds_artifact() -> RoundsArtifact {
    let stat = |round: usize| RoundStats {
        round,
        alarms: round % 2,
        activations: 48,
        halo_bytes: 128,
        dispatch_ns: 1_000 + round as u64,
        compute_ns: 90_000,
        barrier_ns: 2_500,
        exchange_ns: 700,
    };
    let mut artifact = RoundsArtifact::new("rounds_golden");
    artifact.push("expander/n=48", "seed=7", vec![stat(0), stat(1), stat(2)]);
    artifact.push("ring/n=12", "trial=r0-3", vec![stat(0)]);
    artifact
}

/// The fixed campaign the chaos golden file captures.
fn chaos_artifact() -> ChaosArtifact {
    let mut artifact = ChaosArtifact::new("chaos_golden");
    artifact.push(ChaosRun {
        label: "sharded-sync(threads=4)".to_string(),
        run: "seed=7".to_string(),
        schedule: "periodic(period=8,offset=0,f=4,seed=7)".to_string(),
        steps_run: 24,
        injected_faults: 12,
        waves: vec![
            WaveStats {
                wave: 0,
                step: 0,
                faults: 4,
                detection_latency: Some(1),
                quiescence: Some(6),
            },
            WaveStats {
                wave: 1,
                step: 8,
                faults: 4,
                detection_latency: Some(2),
                quiescence: None,
            },
        ],
    });
    artifact
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn rounds_writer_reproduces_the_golden_file_byte_for_byte() {
    assert_eq!(
        rounds_artifact().to_json(),
        ROUNDS_GOLDEN,
        "the smst-rounds-v1 writer changed; if intentional, regenerate \
         tests/golden/BENCH_rounds_golden.json and bump the schema version"
    );
}

#[test]
fn chaos_writer_reproduces_the_golden_file_byte_for_byte() {
    assert_eq!(
        chaos_artifact().to_json(),
        CHAOS_GOLDEN,
        "the smst-chaos-v1 writer changed; if intentional, regenerate \
         tests/golden/BENCH_chaos_golden.json and bump the schema version"
    );
}

#[test]
fn rounds_golden_field_sets_are_pinned() {
    let doc = Json::parse(ROUNDS_GOLDEN).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("smst-rounds-v1"));
    assert_eq!(doc.keys(), vec!["schema", "group", "runs"]);
    let run = &doc.get("runs").unwrap().as_array().unwrap()[0];
    assert_eq!(run.keys(), vec!["label", "run", "rounds"]);
    let round = &run.get("rounds").unwrap().as_array().unwrap()[0];
    assert_eq!(
        round.keys(),
        vec![
            "round",
            "alarms",
            "activations",
            "halo_bytes",
            "dispatch_ns",
            "compute_ns",
            "barrier_ns",
            "exchange_ns"
        ]
    );
}

#[test]
fn chaos_golden_field_sets_are_pinned() {
    let doc = Json::parse(CHAOS_GOLDEN).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("smst-chaos-v1"));
    assert_eq!(doc.keys(), vec!["schema", "group", "runs"]);
    let run = &doc.get("runs").unwrap().as_array().unwrap()[0];
    assert_eq!(
        run.keys(),
        vec![
            "label",
            "run",
            "schedule",
            "steps_run",
            "injected_faults",
            "detected_waves",
            "quiesced_waves",
            "mean_detection_latency",
            "mean_quiescence",
            "waves"
        ]
    );
    let wave = &run.get("waves").unwrap().as_array().unwrap()[0];
    assert_eq!(
        wave.keys(),
        vec!["wave", "step", "faults", "detection_latency", "quiescence"]
    );
}

#[test]
fn golden_files_ingest_into_typed_records() {
    let Artifact::Rounds(rounds) = ingest_file(&golden_dir().join("BENCH_rounds_golden.json"))
        .expect("the checked-in rounds golden must ingest")
    else {
        panic!("expected a rounds artifact");
    };
    assert_eq!(rounds.group, "rounds_golden");
    assert_eq!(rounds.runs.len(), 2);
    assert_eq!(rounds.runs[0].rounds.len(), 3);
    assert_eq!(rounds.runs[0].rounds[2].dispatch_ns, 1_002);

    let Artifact::Chaos(chaos) = ingest_file(&golden_dir().join("BENCH_chaos_golden.json"))
        .expect("the checked-in chaos golden must ingest")
    else {
        panic!("expected a chaos artifact");
    };
    assert_eq!(chaos.group, "chaos_golden");
    assert_eq!(chaos.runs[0].detected_waves, 2);
    assert_eq!(chaos.runs[0].quiesced_waves, 1);
    assert_eq!(chaos.runs[0].waves[1].quiescence, None);
}
