//! `smst-analyze`: the artifact analysis plane.
//!
//! Every other crate in the workspace *produces* observability artifacts —
//! `BENCH_*.json` timing and accounting files, `CAMPAIGN_*.json` search
//! and chaos summaries, `TRACE_*.jsonl` round streams, `FLIGHT_*.json`
//! crash dumps. This crate is the *consumer*: it parses them back
//! ([`json`]), lifts them into typed records with schema-version checks
//! ([`ingest`]), gates CI on perf baselines ([`check`]), and runs the KMW
//! bound accounting that turns detection experiments into
//! measured-vs-bound curves ([`kmw`], the `ANALYSIS_kmw.json` producer).
//!
//! The `smst-analyze` binary fronts all of it:
//!
//! ```text
//! smst-analyze ingest  <dir>                    # list + validate artifacts
//! smst-analyze check   --baseline <dir> [--current <dir>]   # CI gate
//! smst-analyze kmw     [--out <dir>]            # bound accounting sweep
//! smst-analyze baseline --from <dir> --to <dir> # seed ci/baselines/
//! ```
//!
//! Exit codes: `0` clean, `1` gate failure (a regression or chaos
//! mismatch), `2` usage or ingest error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod ingest;
pub mod json;
pub mod kmw;

pub use check::{check_dirs, CheckError, CheckReport, Thresholds};
pub use ingest::{ingest_dir, ingest_file, Artifact, IngestError};
pub use json::Json;
pub use kmw::{run_kmw_accounting, KmwAnalysis, KmwConfig};
