//! A minimal recursive-descent JSON parser — the reading half of the
//! workspace's hand-rolled JSON story.
//!
//! Every artifact writer in the workspace emits JSON by hand (the offline
//! workspace has no serde); this is the matching reader. It parses the
//! full JSON grammar the writers use — objects, arrays, strings with the
//! writers' escape set, numbers, booleans, `null` — into a [`Json`] tree,
//! with byte offsets in errors so a truncated artifact points at its own
//! corruption.
//!
//! Numbers are held as `f64`, which is exact for every integer the
//! writers emit below 2⁵³ — nanosecond totals included (2⁵³ ns ≈ 104
//! days).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (exact for integers below 2⁵³).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the writers emit deterministic field
    /// orders, and the golden tests pin them).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing garbage after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one.
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64).then_some(x as usize)
    }

    /// The value as a `u64`, if it is a number that is one.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64).then_some(x as u64)
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys in source order (empty for non-objects) — what
    /// the golden schema tests compare against the pinned field sets.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected byte `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // the writers only emit \u for control bytes,
                            // so surrogate pairs never occur; reject them
                            // rather than silently mangling
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (the input is &str, so
                    // byte-level continuation handling is safe)
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writers_grammar() {
        let doc = Json::parse(
            "{\"schema\":\"smst-rounds-v1\",\"group\":\"g\",\
             \"runs\":[{\"label\":\"a\",\"x\":null,\"ok\":true,\
             \"mean\":1.5,\"rounds\":[{\"round\":0}]}]}",
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("smst-rounds-v1"));
        let run = &doc.get("runs").unwrap().as_array().unwrap()[0];
        assert!(run.get("x").unwrap().is_null());
        assert_eq!(run.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(run.get("mean").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            run.get("rounds").unwrap().as_array().unwrap()[0]
                .get("round")
                .unwrap()
                .as_usize(),
            Some(0)
        );
        assert_eq!(doc.keys(), vec!["schema", "group", "runs"]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0007é\"").unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\n\t\u{7}é"));
    }

    #[test]
    fn large_integers_stay_exact() {
        // nanosecond sums: 2^53 - 1 is the largest guaranteed-exact value
        let doc = Json::parse("9007199254740991").unwrap();
        assert_eq!(doc.as_u64(), Some(9007199254740991));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\":1,}").unwrap_err();
        assert_eq!(err.offset, 7, "the offending `}}`: {err}");
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn negative_and_float_numbers_parse() {
        assert_eq!(Json::parse("-3.25e2").unwrap().as_f64(), Some(-325.0));
        assert_eq!(Json::parse("-1").unwrap().as_usize(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_usize(), None);
    }
}
