//! The perf regression gate: current artifacts vs checked-in baselines.
//!
//! `smst-analyze check --baseline ci/baselines/ --current <dir>` ingests
//! both directories and compares what can be compared:
//!
//! * **Bench timings** (`smst-bench-v1`) are wall-clock and noisy, so a
//!   case only regresses when it fails **both** tests of
//!   [`Thresholds`]: the current median exceeds baseline ×
//!   [`tolerance`](Thresholds::tolerance) *and* the absolute growth
//!   exceeds [`floor_ns`](Thresholds::floor_ns). The ratio test alone
//!   flags µs-scale cases that double on scheduler jitter; the floor
//!   alone flags slow cases that creep. Together they only fire on
//!   regressions a human would act on.
//! * **Chaos accounting** (`smst-chaos-v1`) is logical — steps, waves,
//!   fault counts under the barrier-synchronized engine — so the
//!   deterministic summary fields are compared **exactly**. A changed
//!   `detected_waves` is a behavioral change, not noise.
//! * **Lint artifacts** (`smst-lint-v1`) gate on *creep*: the current
//!   run fails if its `unsuppressed` count is nonzero or its
//!   `suppressed` count grew past the baseline — each new suppression
//!   is a reviewed decision, re-seeded into `ci/baselines/`, never an
//!   accident. Shrinking counts pass (and warrant a re-seed).
//!
//! Cases present on one side only are *warnings*, not failures — PRs add
//! and retire benches routinely, and a gate that fails on every rename
//! gets deleted, not fixed. Corrupt or unreadable artifacts on either
//! side are hard errors: a gate that skips what it cannot read is not a
//! gate.

use crate::ingest::{ingest_dir, Artifact, BenchCase, ChaosRunRecord, IngestError, LintDoc};
use std::fmt::Write as _;
use std::path::Path;

/// Noise tolerance for the bench-timing comparison.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Multiplicative slack: current median must exceed baseline × this.
    pub tolerance: f64,
    /// Additive slack in nanoseconds: current median must also exceed
    /// baseline + this. Keeps µs-scale cases from tripping the ratio test
    /// on scheduler jitter.
    pub floor_ns: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        // 2× + 250µs: the harness's own docs promise spotting
        // "regressions of 2× and up", and single-core CI runners double
        // sub-100µs cases on a whim
        Thresholds {
            tolerance: 2.0,
            floor_ns: 250_000,
        }
    }
}

/// One bench case compared against its baseline.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Case name (`group/case`).
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_median_ns: u64,
    /// Current median, nanoseconds.
    pub current_median_ns: u64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether the case fails both threshold tests.
    pub regressed: bool,
}

/// One deterministic chaos field that changed.
#[derive(Debug, Clone)]
pub struct ChaosMismatch {
    /// `group/label` of the run.
    pub run: String,
    /// The field that differs.
    pub field: &'static str,
    /// The baseline value, rendered.
    pub baseline: String,
    /// The current value, rendered.
    pub current: String,
}

/// One lint count that crept past its baseline.
#[derive(Debug, Clone)]
pub struct LintCreep {
    /// The lint root (`workspace`).
    pub root: String,
    /// The count that grew (`unsuppressed` or `suppressed`).
    pub field: &'static str,
    /// The baseline count.
    pub baseline: usize,
    /// The current count.
    pub current: usize,
}

/// Everything the gate found.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Per-case bench comparisons (matched cases only).
    pub bench: Vec<BenchComparison>,
    /// Exact-compare failures in chaos accounting.
    pub chaos_mismatches: Vec<ChaosMismatch>,
    /// Lint counts that grew past their baseline.
    pub lint_creep: Vec<LintCreep>,
    /// Non-fatal observations: unmatched cases, ignored artifact kinds.
    pub warnings: Vec<String>,
}

impl CheckReport {
    /// Bench cases that regressed.
    pub fn regressions(&self) -> usize {
        self.bench.iter().filter(|c| c.regressed).count()
    }

    /// `true` when nothing regressed, no chaos field changed, and no lint
    /// count crept.
    pub fn passed(&self) -> bool {
        self.regressions() == 0 && self.chaos_mismatches.is_empty() && self.lint_creep.is_empty()
    }

    /// Human-readable gate output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.bench {
            let status = if c.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "  {status:>9}  {:<44} {:>12} -> {:>12}  ({:.2}x)",
                c.name, c.baseline_median_ns, c.current_median_ns, c.ratio
            );
        }
        for m in &self.chaos_mismatches {
            let _ = writeln!(
                out,
                "  CHANGED    {}: {} was {}, now {}",
                m.run, m.field, m.baseline, m.current
            );
        }
        for l in &self.lint_creep {
            let _ = writeln!(
                out,
                "  LINT-CREEP {}: {} was {}, now {}",
                l.root, l.field, l.baseline, l.current
            );
        }
        for w in &self.warnings {
            let _ = writeln!(out, "  warning: {w}");
        }
        let _ = writeln!(
            out,
            "{} bench cases compared, {} regressions, {} chaos mismatches, \
             {} lint creeps, {} warnings",
            self.bench.len(),
            self.regressions(),
            self.chaos_mismatches.len(),
            self.lint_creep.len(),
            self.warnings.len()
        );
        out
    }
}

/// Why the gate could not run at all (distinct from a failing gate).
#[derive(Debug)]
pub enum CheckError {
    /// A directory could not be scanned.
    Scan(std::path::PathBuf, std::io::Error),
    /// An artifact on either side failed to ingest.
    Ingest(IngestError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Scan(p, e) => write!(f, "scanning {}: {e}", p.display()),
            CheckError::Ingest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// All comparable records from one directory, keyed for matching.
#[derive(Debug, Default)]
struct Side {
    /// `name` → case (names already carry the `group/` prefix).
    bench: Vec<BenchCase>,
    /// `group/label` → run.
    chaos: Vec<(String, ChaosRunRecord)>,
    /// `root` → lint document.
    lint: Vec<(String, LintDoc)>,
}

fn load_side(dir: &Path, warnings: &mut Vec<String>, tag: &str) -> Result<Side, CheckError> {
    let mut side = Side::default();
    for (path, result) in ingest_dir(dir).map_err(|e| CheckError::Scan(dir.to_path_buf(), e))? {
        match result.map_err(CheckError::Ingest)? {
            Artifact::Bench(doc) => side.bench.extend(doc.results),
            Artifact::Chaos(doc) => {
                for run in doc.runs {
                    side.chaos
                        .push((format!("{}/{}", doc.group, run.label), run));
                }
            }
            Artifact::Lint(doc) => side.lint.push((doc.root.clone(), doc)),
            // campaigns, traces, flight dumps, and accounting analyses
            // have no stable comparison semantics — campaigns search,
            // traces sample, flights only exist after a failure
            other => warnings.push(format!(
                "{tag} {}: {} — not gated, ignored",
                path.display(),
                other.describe()
            )),
        }
    }
    Ok(side)
}

/// Runs the gate: every baseline case is looked up in `current` and
/// compared under `thresholds`.
pub fn check_dirs(
    baseline_dir: &Path,
    current_dir: &Path,
    thresholds: Thresholds,
) -> Result<CheckReport, CheckError> {
    let mut report = CheckReport::default();
    let base = load_side(baseline_dir, &mut report.warnings, "baseline")?;
    let cur = load_side(current_dir, &mut report.warnings, "current")?;

    for b in &base.bench {
        match cur.bench.iter().find(|c| c.name == b.name) {
            Some(c) => report.bench.push(compare_case(b, c, thresholds)),
            None => report.warnings.push(format!(
                "bench case {:?} is in the baseline but not the current run",
                b.name
            )),
        }
    }
    for c in &cur.bench {
        if !base.bench.iter().any(|b| b.name == c.name) {
            report.warnings.push(format!(
                "bench case {:?} is new (no baseline); re-seed ci/baselines/ to gate it",
                c.name
            ));
        }
    }

    for (key, b) in &base.chaos {
        match cur.chaos.iter().find(|(k, _)| k == key) {
            Some((_, c)) => compare_chaos(key, b, c, &mut report.chaos_mismatches),
            None => report.warnings.push(format!(
                "chaos run {key:?} is in the baseline but not the current run"
            )),
        }
    }
    for (key, _) in &cur.chaos {
        if !base.chaos.iter().any(|(k, _)| k == key) {
            report.warnings.push(format!(
                "chaos run {key:?} is new (no baseline); re-seed ci/baselines/ to gate it"
            ));
        }
    }

    for (key, c) in &cur.lint {
        match base.lint.iter().find(|(k, _)| k == key) {
            Some((_, b)) => compare_lint(key, b, c, &mut report.lint_creep),
            None => report.warnings.push(format!(
                "lint root {key:?} is new (no baseline); re-seed ci/baselines/ to gate it"
            )),
        }
    }
    for (key, _) in &base.lint {
        if !cur.lint.iter().any(|(k, _)| k == key) {
            report.warnings.push(format!(
                "lint root {key:?} is in the baseline but not the current run"
            ));
        }
    }

    Ok(report)
}

/// The suppression-creep gate: unsuppressed diagnostics always fail;
/// suppressed diagnostics may not outgrow the baseline (every new
/// suppression is re-seeded deliberately, never accumulated silently).
fn compare_lint(key: &str, base: &LintDoc, cur: &LintDoc, out: &mut Vec<LintCreep>) {
    if cur.unsuppressed > 0 {
        out.push(LintCreep {
            root: key.to_string(),
            field: "unsuppressed",
            baseline: base.unsuppressed,
            current: cur.unsuppressed,
        });
    }
    if cur.suppressed > base.suppressed {
        out.push(LintCreep {
            root: key.to_string(),
            field: "suppressed",
            baseline: base.suppressed,
            current: cur.suppressed,
        });
    }
}

fn compare_case(base: &BenchCase, cur: &BenchCase, t: Thresholds) -> BenchComparison {
    let ratio = if base.median_ns == 0 {
        // a 0ns baseline median can only come from a degenerate case;
        // any nonzero current value is "infinitely" slower, so let the
        // floor test alone decide
        f64::INFINITY
    } else {
        cur.median_ns as f64 / base.median_ns as f64
    };
    let over_ratio = cur.median_ns as f64 > base.median_ns as f64 * t.tolerance;
    let over_floor = cur.median_ns > base.median_ns.saturating_add(t.floor_ns);
    BenchComparison {
        name: base.name.clone(),
        baseline_median_ns: base.median_ns,
        current_median_ns: cur.median_ns,
        ratio,
        regressed: over_ratio && over_floor,
    }
}

fn compare_chaos(
    key: &str,
    base: &ChaosRunRecord,
    cur: &ChaosRunRecord,
    out: &mut Vec<ChaosMismatch>,
) {
    let mut push = |field: &'static str, b: String, c: String| {
        if b != c {
            out.push(ChaosMismatch {
                run: key.to_string(),
                field,
                baseline: b,
                current: c,
            });
        }
    };
    push("schedule", base.schedule.clone(), cur.schedule.clone());
    push(
        "steps_run",
        base.steps_run.to_string(),
        cur.steps_run.to_string(),
    );
    push(
        "injected_faults",
        base.injected_faults.to_string(),
        cur.injected_faults.to_string(),
    );
    push(
        "detected_waves",
        base.detected_waves.to_string(),
        cur.detected_waves.to_string(),
    );
    push(
        "quiesced_waves",
        base.quiesced_waves.to_string(),
        cur.quiesced_waves.to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dirs(name: &str) -> (PathBuf, PathBuf) {
        let root = std::env::temp_dir().join(format!("smst_analyze_check_{name}"));
        let base = root.join("base");
        let cur = root.join("cur");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cur).unwrap();
        (base, cur)
    }

    fn bench_doc(median_a: u64, median_b: u64) -> String {
        format!(
            "{{\"schema\":\"smst-bench-v1\",\"group\":\"g\",\"meta\":{{}},\
             \"results\":[\
             {{\"name\":\"g/a\",\"iters\":5,\"min_ns\":1,\"median_ns\":{median_a},\
              \"mean_ns\":1.0,\"max_ns\":9}},\
             {{\"name\":\"g/b\",\"iters\":5,\"min_ns\":1,\"median_ns\":{median_b},\
              \"mean_ns\":1.0,\"max_ns\":9}}]}}\n"
        )
    }

    #[test]
    fn regression_needs_both_ratio_and_floor() {
        let (base, cur) = dirs("both_tests");
        // case a: 3x but tiny (under the floor) — noise, not a regression;
        // case b: 3x and megaseconds over — a real regression
        std::fs::write(base.join("BENCH_g.json"), bench_doc(10_000, 1_000_000)).unwrap();
        std::fs::write(cur.join("BENCH_g.json"), bench_doc(30_000, 3_000_000)).unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert_eq!(report.bench.len(), 2);
        assert!(
            !report.bench[0].regressed,
            "under the floor: {:?}",
            report.bench[0]
        );
        assert!(report.bench[1].regressed);
        assert_eq!(report.regressions(), 1);
        assert!(!report.passed());
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn within_tolerance_passes() {
        let (base, cur) = dirs("tolerant");
        std::fs::write(base.join("BENCH_g.json"), bench_doc(1_000_000, 2_000_000)).unwrap();
        // 1.8x and 1.0x: both under the 2x tolerance
        std::fs::write(cur.join("BENCH_g.json"), bench_doc(1_800_000, 2_000_000)).unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn unmatched_cases_warn_but_do_not_fail() {
        let (base, cur) = dirs("unmatched");
        std::fs::write(
            base.join("BENCH_old.json"),
            "{\"schema\":\"smst-bench-v1\",\"group\":\"old\",\"meta\":{},\
             \"results\":[{\"name\":\"old/gone\",\"iters\":1,\"min_ns\":1,\
             \"median_ns\":5,\"mean_ns\":1.0,\"max_ns\":9}]}\n",
        )
        .unwrap();
        std::fs::write(
            cur.join("BENCH_new.json"),
            "{\"schema\":\"smst-bench-v1\",\"group\":\"new\",\"meta\":{},\
             \"results\":[{\"name\":\"new/added\",\"iters\":1,\"min_ns\":1,\
             \"median_ns\":5,\"mean_ns\":1.0,\"max_ns\":9}]}\n",
        )
        .unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 2, "{:?}", report.warnings);
    }

    #[test]
    fn chaos_determinism_is_compared_exactly() {
        let (base, cur) = dirs("chaos_exact");
        let chaos = |detected: usize| {
            format!(
                "{{\"schema\":\"smst-chaos-v1\",\"group\":\"chaos\",\"runs\":[\
                 {{\"label\":\"l\",\"run\":\"seed=7\",\"schedule\":\"s\",\
                 \"steps_run\":24,\"injected_faults\":12,\"detected_waves\":{detected},\
                 \"quiesced_waves\":0,\"mean_detection_latency\":null,\
                 \"mean_quiescence\":null,\"waves\":[]}}]}}\n"
            )
        };
        std::fs::write(base.join("BENCH_chaos.json"), chaos(3)).unwrap();
        std::fs::write(cur.join("BENCH_chaos.json"), chaos(2)).unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.chaos_mismatches.len(), 1);
        assert_eq!(report.chaos_mismatches[0].field, "detected_waves");
    }

    fn lint_doc(suppressed: usize, unsuppressed: usize) -> String {
        let diag = |i: usize, sup: bool| {
            format!(
                "{{\"rule\":\"clock\",\"file\":\"f{i}.rs\",\"line\":{},\
                 \"message\":\"m\",\"suppressed\":{sup},\"reason\":{}}}",
                i + 1,
                if sup { "\"why\"" } else { "null" }
            )
        };
        let diags: Vec<String> = (0..suppressed)
            .map(|i| diag(i, true))
            .chain((0..unsuppressed).map(|i| diag(suppressed + i, false)))
            .collect();
        format!(
            "{{\"schema\":\"smst-lint-v1\",\"root\":\"workspace\",\"files\":9,\
             \"summary\":{{\"total\":{},\"suppressed\":{suppressed},\
             \"unsuppressed\":{unsuppressed}}},\"diagnostics\":[{}]}}\n",
            suppressed + unsuppressed,
            diags.join(",")
        )
    }

    #[test]
    fn lint_suppression_creep_fails_the_gate() {
        let (base, cur) = dirs("lint_creep");
        std::fs::write(base.join("ANALYSIS_lint.json"), lint_doc(8, 0)).unwrap();
        std::fs::write(cur.join("ANALYSIS_lint.json"), lint_doc(9, 0)).unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.lint_creep.len(), 1);
        assert_eq!(report.lint_creep[0].field, "suppressed");
        assert!(report.render().contains("LINT-CREEP"));
    }

    #[test]
    fn lint_unsuppressed_diagnostics_always_fail() {
        let (base, cur) = dirs("lint_unsup");
        // even a baseline that (wrongly) recorded unsuppressed findings
        // does not excuse the current run having any
        std::fs::write(base.join("ANALYSIS_lint.json"), lint_doc(8, 2)).unwrap();
        std::fs::write(cur.join("ANALYSIS_lint.json"), lint_doc(8, 1)).unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.lint_creep[0].field, "unsuppressed");
    }

    #[test]
    fn lint_shrinkage_and_parity_pass() {
        let (base, cur) = dirs("lint_ok");
        std::fs::write(base.join("ANALYSIS_lint.json"), lint_doc(8, 0)).unwrap();
        std::fs::write(cur.join("ANALYSIS_lint.json"), lint_doc(7, 0)).unwrap();
        let report = check_dirs(&base, &cur, Thresholds::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
        // a lint artifact with no baseline warns instead of failing
        let (base2, cur2) = dirs("lint_new");
        std::fs::write(cur2.join("ANALYSIS_lint.json"), lint_doc(0, 0)).unwrap();
        std::fs::create_dir_all(&base2).unwrap();
        let report = check_dirs(&base2, &cur2, Thresholds::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
    }

    #[test]
    fn corrupt_artifacts_are_hard_errors() {
        let (base, cur) = dirs("corrupt");
        std::fs::write(base.join("BENCH_g.json"), "not json").unwrap();
        let err = check_dirs(&base, &cur, Thresholds::default()).unwrap_err();
        assert!(matches!(err, CheckError::Ingest(_)), "{err}");
    }
}
