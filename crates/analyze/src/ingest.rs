//! Typed ingestion of every artifact the workspace emits.
//!
//! Each producer hand-writes its JSON with a top-level `schema` tag; this
//! module is the consumer side of that contract. [`ingest_file`] dispatches
//! on the tag (or on the `.jsonl` extension for trace streams, whose lines
//! carry no tag), verifies the schema **version**, and lifts the document
//! into a typed [`Artifact`] — so everything downstream (the regression
//! gate, the KMW accounting, the CLI summaries) works on Rust structs, not
//! raw JSON trees.
//!
//! A `schema` value with a known family prefix but an unknown version
//! (`smst-bench-v2`, say) is rejected with a version error rather than
//! half-parsed: the gate must fail loudly when a future PR bumps a schema
//! without teaching the analyzer about it.

use crate::json::{Json, ParseError};
use smst_sim::RoundStats;
use std::fmt;
use std::path::{Path, PathBuf};

/// Schema tag of `BenchGroup` timing artifacts.
pub const SCHEMA_BENCH: &str = "smst-bench-v1";
/// Schema tag of per-round accounting artifacts.
pub const SCHEMA_ROUNDS: &str = "smst-rounds-v1";
/// Schema tag of chaos wave-accounting artifacts.
pub const SCHEMA_CHAOS: &str = "smst-chaos-v1";
/// Schema tag of campaign artifacts (both the adversarial-search and
/// chaos-campaign shapes).
pub const SCHEMA_CAMPAIGN: &str = "smst-campaign-v1";
/// Schema tag of flight-recorder dumps.
pub const SCHEMA_FLIGHT: &str = "smst-flight-v1";
/// Schema tag of the analyzer's own `ANALYSIS_*.json` output.
pub const SCHEMA_ANALYSIS: &str = "smst-analysis-v1";
/// Schema tag of `smst-lint` invariant-lint artifacts.
pub const SCHEMA_LINT: &str = "smst-lint-v1";
/// Schema tag of the `smst-net` socket protocol (announced by the
/// distributed backend's `Frame::Hello` handshake). Declared here so the
/// schema-parity lint pairs the wire's writer with an acceptor; it tags a
/// protocol, not a JSON document, so [`ingest_document`] rejects files
/// claiming it.
pub const SCHEMA_WIRE: &str = "smst-wire-v1";

/// Why ingesting an artifact failed.
#[derive(Debug)]
pub enum IngestError {
    /// The file could not be read.
    Io(PathBuf, std::io::Error),
    /// The file is not valid JSON.
    Parse(PathBuf, ParseError),
    /// The document has no top-level `schema` string.
    MissingSchema(PathBuf),
    /// The `schema` tag names a known family at an unknown version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// What the file claims to be.
        found: String,
        /// The version this analyzer understands.
        supported: &'static str,
    },
    /// The `schema` tag is entirely unknown.
    UnknownSchema(PathBuf, String),
    /// The document carries the right tag but is missing or mistypes a
    /// field the schema requires.
    Shape {
        /// The offending file.
        path: PathBuf,
        /// Dotted path of the bad field (e.g. `runs[0].steps_run`).
        field: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            IngestError::Parse(p, e) => write!(f, "{}: {e}", p.display()),
            IngestError::MissingSchema(p) => {
                write!(f, "{}: no top-level \"schema\" string", p.display())
            }
            IngestError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{}: schema {found:?} is a version this analyzer does not \
                 understand (supported: {supported:?})",
                path.display()
            ),
            IngestError::UnknownSchema(p, s) => {
                write!(f, "{}: unknown schema {s:?}", p.display())
            }
            IngestError::Shape { path, field } => {
                write!(f, "{}: missing or mistyped field `{field}`", path.display())
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// One timing case from a `smst-bench-v1` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Case name (`group/case`).
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u64,
}

/// A parsed `smst-bench-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// The bench group name.
    pub group: String,
    /// Non-timing metrics recorded alongside the timings.
    pub meta: Vec<(String, f64)>,
    /// The timing cases, in artifact order.
    pub results: Vec<BenchCase>,
}

/// One labelled run from a `smst-rounds-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundsRun {
    /// Case label.
    pub label: String,
    /// Replay correlation (seed, trial id, …).
    pub run: String,
    /// The per-round records, in round order.
    pub rounds: Vec<RoundStats>,
}

/// A parsed `smst-rounds-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundsDoc {
    /// The artifact group name.
    pub group: String,
    /// The labelled runs.
    pub runs: Vec<RoundsRun>,
}

/// One fault wave from a `smst-chaos-v1` run.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveRecord {
    /// Wave index.
    pub wave: usize,
    /// Step the wave fired at.
    pub step: usize,
    /// Registers corrupted by the wave.
    pub faults: usize,
    /// Steps from wave to first alarm (`None` = censored).
    pub detection_latency: Option<usize>,
    /// Steps from wave to full re-acceptance (`None` = censored).
    pub quiescence: Option<usize>,
}

/// One labelled campaign from a `smst-chaos-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRunRecord {
    /// Case label.
    pub label: String,
    /// Replay correlation.
    pub run: String,
    /// The schedule grammar that was executed.
    pub schedule: String,
    /// Steps the campaign executed.
    pub steps_run: usize,
    /// Total registers corrupted.
    pub injected_faults: usize,
    /// Waves with a recorded detection latency.
    pub detected_waves: usize,
    /// Waves with a recorded quiescence.
    pub quiesced_waves: usize,
    /// Mean detection latency over the detected waves.
    pub mean_detection_latency: Option<f64>,
    /// Mean quiescence over the quiesced waves.
    pub mean_quiescence: Option<f64>,
    /// Per-wave accounting.
    pub waves: Vec<WaveRecord>,
}

/// A parsed `smst-chaos-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosDoc {
    /// The artifact group name.
    pub group: String,
    /// The labelled campaigns.
    pub runs: Vec<ChaosRunRecord>,
}

/// The two document shapes sharing the `smst-campaign-v1` tag.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignDoc {
    /// The adversarial-search shape (`random_trials` / `guided_trials` /
    /// `records`).
    Search {
        /// Campaign name.
        campaign: String,
        /// Random trials executed.
        random_trials: usize,
        /// Guided trials executed.
        guided_trials: usize,
        /// Trial records in the document.
        records: usize,
    },
    /// The chaos-campaign shape (`cases` / `pool`).
    Chaos {
        /// Campaign name.
        campaign: String,
        /// Case records in the document.
        cases: usize,
        /// Pool self-healing counters: (panics, respawns, barrier
        /// timeouts).
        pool: (usize, usize, usize),
    },
}

impl CampaignDoc {
    /// The campaign's name, whichever shape it is.
    pub fn campaign(&self) -> &str {
        match self {
            CampaignDoc::Search { campaign, .. } | CampaignDoc::Chaos { campaign, .. } => campaign,
        }
    }
}

/// A parsed `smst-flight-v1` flight-recorder dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDoc {
    /// The recorder name (`FLIGHT_<name>.json`).
    pub name: String,
    /// Why the dump was taken.
    pub reason: String,
    /// Ring-buffer capacity.
    pub capacity: usize,
    /// Rounds observed over the recorder's lifetime.
    pub rounds_seen: usize,
    /// The retained window, oldest first.
    pub rounds: Vec<RoundStats>,
}

/// One family of points from a `smst-analysis-v1` accounting document.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisFamily {
    /// Family label (e.g. the hard-instance family name).
    pub family: String,
    /// What the family plots (`measured`, `bound`, …).
    pub kind: String,
    /// Points recorded for the family.
    pub points: usize,
}

/// A parsed `smst-analysis-v1` document (the KMW accounting shape).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisDoc {
    /// Which analysis produced the document (`kmw`).
    pub analysis: String,
    /// The point families, in artifact order.
    pub families: Vec<AnalysisFamily>,
}

/// One diagnostic from a `smst-lint-v1` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct LintRecord {
    /// The rule that fired (`clock`, `unsafe-file`, …).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// Whether a suppression covers it.
    pub suppressed: bool,
    /// The suppression's reason, when suppressed.
    pub reason: Option<String>,
}

/// A parsed `smst-lint-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct LintDoc {
    /// What was scanned (`workspace`, or a fixture label in tests).
    pub root: String,
    /// Source files visited.
    pub files: usize,
    /// Diagnostics a suppression covers.
    pub suppressed: usize,
    /// Diagnostics nothing covers (nonzero fails the lint gate).
    pub unsuppressed: usize,
    /// Every diagnostic, in artifact order.
    pub diagnostics: Vec<LintRecord>,
}

/// One line of a `TRACE_*.jsonl` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLine {
    /// Replay correlation label.
    pub run: String,
    /// The round record.
    pub stats: RoundStats,
}

/// A parsed `TRACE_*.jsonl` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// The records, in stream order.
    pub lines: Vec<TraceLine>,
}

/// Any artifact the workspace emits, lifted to typed records.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A `smst-bench-v1` timing artifact.
    Bench(BenchDoc),
    /// A `smst-rounds-v1` per-round artifact.
    Rounds(RoundsDoc),
    /// A `smst-chaos-v1` wave-accounting artifact.
    Chaos(ChaosDoc),
    /// A `smst-campaign-v1` campaign artifact (either shape).
    Campaign(CampaignDoc),
    /// A `smst-flight-v1` flight-recorder dump.
    Flight(FlightDoc),
    /// A `smst-analysis-v1` accounting document.
    Analysis(AnalysisDoc),
    /// A `smst-lint-v1` invariant-lint artifact.
    Lint(LintDoc),
    /// A `TRACE_*.jsonl` stream.
    Trace(TraceDoc),
}

impl Artifact {
    /// A one-line human summary (the CLI `ingest` listing).
    pub fn describe(&self) -> String {
        match self {
            Artifact::Bench(d) => format!(
                "bench group {:?}: {} cases, {} meta entries",
                d.group,
                d.results.len(),
                d.meta.len()
            ),
            Artifact::Rounds(d) => format!(
                "rounds group {:?}: {} runs, {} rounds total",
                d.group,
                d.runs.len(),
                d.runs.iter().map(|r| r.rounds.len()).sum::<usize>()
            ),
            Artifact::Chaos(d) => format!(
                "chaos group {:?}: {} runs, {} waves total",
                d.group,
                d.runs.len(),
                d.runs.iter().map(|r| r.waves.len()).sum::<usize>()
            ),
            Artifact::Campaign(CampaignDoc::Search {
                campaign,
                random_trials,
                guided_trials,
                records,
            }) => format!(
                "campaign {campaign:?} (search): {random_trials} random + \
                 {guided_trials} guided trials, {records} records"
            ),
            Artifact::Campaign(CampaignDoc::Chaos {
                campaign,
                cases,
                pool,
            }) => format!(
                "campaign {campaign:?} (chaos): {cases} cases, pool \
                 panics={} respawns={} barrier_timeouts={}",
                pool.0, pool.1, pool.2
            ),
            Artifact::Flight(d) => format!(
                "flight {:?}: {} of {} rounds retained (capacity {}) — {}",
                d.name,
                d.rounds.len(),
                d.rounds_seen,
                d.capacity,
                d.reason
            ),
            Artifact::Analysis(d) => format!(
                "analysis {:?}: {} families, {} points total",
                d.analysis,
                d.families.len(),
                d.families.iter().map(|f| f.points).sum::<usize>()
            ),
            Artifact::Lint(d) => format!(
                "lint {:?}: {} files, {} diagnostics ({} suppressed, {} unsuppressed)",
                d.root,
                d.files,
                d.diagnostics.len(),
                d.suppressed,
                d.unsuppressed
            ),
            Artifact::Trace(d) => format!("trace: {} records", d.lines.len()),
        }
    }
}

/// Reads and ingests one artifact file, dispatching on the `.jsonl`
/// extension (trace streams) or the top-level `schema` tag (everything
/// else).
pub fn ingest_file(path: &Path) -> Result<Artifact, IngestError> {
    let text = std::fs::read_to_string(path).map_err(|e| IngestError::Io(path.to_path_buf(), e))?;
    if path.extension().is_some_and(|e| e == "jsonl") {
        return ingest_trace(path, &text);
    }
    let doc = Json::parse(&text).map_err(|e| IngestError::Parse(path.to_path_buf(), e))?;
    ingest_document(path, &doc)
}

/// Ingests an already-parsed schema-tagged document.
pub fn ingest_document(path: &Path, doc: &Json) -> Result<Artifact, IngestError> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| IngestError::MissingSchema(path.to_path_buf()))?;
    let cx = Cx { path };
    match schema {
        SCHEMA_BENCH => ingest_bench(&cx, doc).map(Artifact::Bench),
        SCHEMA_ROUNDS => ingest_rounds(&cx, doc).map(Artifact::Rounds),
        SCHEMA_CHAOS => ingest_chaos(&cx, doc).map(Artifact::Chaos),
        SCHEMA_CAMPAIGN => ingest_campaign(&cx, doc).map(Artifact::Campaign),
        SCHEMA_FLIGHT => ingest_flight(&cx, doc).map(Artifact::Flight),
        SCHEMA_ANALYSIS => ingest_analysis(&cx, doc).map(Artifact::Analysis),
        SCHEMA_LINT => ingest_lint(&cx, doc).map(Artifact::Lint),
        // the wire tag names a socket protocol, not a document shape —
        // nothing to lift into an Artifact
        SCHEMA_WIRE => Err(IngestError::UnknownSchema(
            path.to_path_buf(),
            format!("{SCHEMA_WIRE} tags the smst-net socket protocol, not a JSON artifact"),
        )),
        other => {
            let known = [
                SCHEMA_BENCH,
                SCHEMA_ROUNDS,
                SCHEMA_CHAOS,
                SCHEMA_CAMPAIGN,
                SCHEMA_FLIGHT,
                SCHEMA_ANALYSIS,
                SCHEMA_LINT,
                SCHEMA_WIRE,
            ];
            let family = |tag: &str| tag.rsplit_once("-v").map(|(f, _)| f.to_string());
            match family(other) {
                Some(f) => {
                    if let Some(sup) = known.iter().find(|k| family(k).as_deref() == Some(&f)) {
                        return Err(IngestError::UnsupportedVersion {
                            path: path.to_path_buf(),
                            found: other.to_string(),
                            supported: sup,
                        });
                    }
                    Err(IngestError::UnknownSchema(
                        path.to_path_buf(),
                        other.to_string(),
                    ))
                }
                None => Err(IngestError::UnknownSchema(
                    path.to_path_buf(),
                    other.to_string(),
                )),
            }
        }
    }
}

/// Shape-error context: the file being ingested.
struct Cx<'a> {
    path: &'a Path,
}

impl Cx<'_> {
    fn shape(&self, field: impl Into<String>) -> IngestError {
        IngestError::Shape {
            path: self.path.to_path_buf(),
            field: field.into(),
        }
    }

    fn str_field(&self, obj: &Json, at: &str, key: &str) -> Result<String, IngestError> {
        obj.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| self.shape(format!("{at}{key}")))
    }

    fn usize_field(&self, obj: &Json, at: &str, key: &str) -> Result<usize, IngestError> {
        obj.get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| self.shape(format!("{at}{key}")))
    }

    fn u64_field(&self, obj: &Json, at: &str, key: &str) -> Result<u64, IngestError> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| self.shape(format!("{at}{key}")))
    }

    fn f64_field(&self, obj: &Json, at: &str, key: &str) -> Result<f64, IngestError> {
        obj.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| self.shape(format!("{at}{key}")))
    }

    /// `null` → `None`; missing or mistyped → error (censored values are
    /// explicit in every writer).
    fn opt_usize_field(
        &self,
        obj: &Json,
        at: &str,
        key: &str,
    ) -> Result<Option<usize>, IngestError> {
        match obj.get(key) {
            Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_usize()
                .map(Some)
                .ok_or_else(|| self.shape(format!("{at}{key}"))),
            None => Err(self.shape(format!("{at}{key}"))),
        }
    }

    fn opt_f64_field(&self, obj: &Json, at: &str, key: &str) -> Result<Option<f64>, IngestError> {
        match obj.get(key) {
            Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| self.shape(format!("{at}{key}"))),
            None => Err(self.shape(format!("{at}{key}"))),
        }
    }

    fn bool_field(&self, obj: &Json, at: &str, key: &str) -> Result<bool, IngestError> {
        obj.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| self.shape(format!("{at}{key}")))
    }

    /// `null` → `None`; missing or mistyped → error.
    fn opt_str_field(
        &self,
        obj: &Json,
        at: &str,
        key: &str,
    ) -> Result<Option<String>, IngestError> {
        match obj.get(key) {
            Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| self.shape(format!("{at}{key}"))),
            None => Err(self.shape(format!("{at}{key}"))),
        }
    }

    fn arr_field<'j>(&self, obj: &'j Json, at: &str, key: &str) -> Result<&'j [Json], IngestError> {
        obj.get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| self.shape(format!("{at}{key}")))
    }

    fn round_stats(&self, obj: &Json, at: &str) -> Result<RoundStats, IngestError> {
        Ok(RoundStats {
            round: self.usize_field(obj, at, "round")?,
            alarms: self.usize_field(obj, at, "alarms")?,
            activations: self.usize_field(obj, at, "activations")?,
            halo_bytes: self.u64_field(obj, at, "halo_bytes")?,
            dispatch_ns: self.u64_field(obj, at, "dispatch_ns")?,
            compute_ns: self.u64_field(obj, at, "compute_ns")?,
            barrier_ns: self.u64_field(obj, at, "barrier_ns")?,
            exchange_ns: self.u64_field(obj, at, "exchange_ns")?,
        })
    }
}

fn ingest_bench(cx: &Cx, doc: &Json) -> Result<BenchDoc, IngestError> {
    let meta = match doc.get("meta") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| cx.shape(format!("meta.{k}")))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(cx.shape("meta")),
    };
    let results = cx
        .arr_field(doc, "", "results")?
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let at = format!("results[{i}].");
            Ok(BenchCase {
                name: cx.str_field(r, &at, "name")?,
                iters: cx.u64_field(r, &at, "iters")?,
                min_ns: cx.u64_field(r, &at, "min_ns")?,
                median_ns: cx.u64_field(r, &at, "median_ns")?,
                mean_ns: cx.f64_field(r, &at, "mean_ns")?,
                max_ns: cx.u64_field(r, &at, "max_ns")?,
            })
        })
        .collect::<Result<Vec<_>, IngestError>>()?;
    Ok(BenchDoc {
        group: cx.str_field(doc, "", "group")?,
        meta,
        results,
    })
}

fn ingest_rounds(cx: &Cx, doc: &Json) -> Result<RoundsDoc, IngestError> {
    let runs = cx
        .arr_field(doc, "", "runs")?
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let at = format!("runs[{i}].");
            let rounds = cx
                .arr_field(r, &at, "rounds")?
                .iter()
                .enumerate()
                .map(|(j, s)| cx.round_stats(s, &format!("{at}rounds[{j}].")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RoundsRun {
                label: cx.str_field(r, &at, "label")?,
                run: cx.str_field(r, &at, "run")?,
                rounds,
            })
        })
        .collect::<Result<Vec<_>, IngestError>>()?;
    Ok(RoundsDoc {
        group: cx.str_field(doc, "", "group")?,
        runs,
    })
}

fn ingest_chaos(cx: &Cx, doc: &Json) -> Result<ChaosDoc, IngestError> {
    let runs = cx
        .arr_field(doc, "", "runs")?
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let at = format!("runs[{i}].");
            let waves = cx
                .arr_field(r, &at, "waves")?
                .iter()
                .enumerate()
                .map(|(j, w)| {
                    let wat = format!("{at}waves[{j}].");
                    Ok(WaveRecord {
                        wave: cx.usize_field(w, &wat, "wave")?,
                        step: cx.usize_field(w, &wat, "step")?,
                        faults: cx.usize_field(w, &wat, "faults")?,
                        detection_latency: cx.opt_usize_field(w, &wat, "detection_latency")?,
                        quiescence: cx.opt_usize_field(w, &wat, "quiescence")?,
                    })
                })
                .collect::<Result<Vec<_>, IngestError>>()?;
            Ok(ChaosRunRecord {
                label: cx.str_field(r, &at, "label")?,
                run: cx.str_field(r, &at, "run")?,
                schedule: cx.str_field(r, &at, "schedule")?,
                steps_run: cx.usize_field(r, &at, "steps_run")?,
                injected_faults: cx.usize_field(r, &at, "injected_faults")?,
                detected_waves: cx.usize_field(r, &at, "detected_waves")?,
                quiesced_waves: cx.usize_field(r, &at, "quiesced_waves")?,
                mean_detection_latency: cx.opt_f64_field(r, &at, "mean_detection_latency")?,
                mean_quiescence: cx.opt_f64_field(r, &at, "mean_quiescence")?,
                waves,
            })
        })
        .collect::<Result<Vec<_>, IngestError>>()?;
    Ok(ChaosDoc {
        group: cx.str_field(doc, "", "group")?,
        runs,
    })
}

fn ingest_campaign(cx: &Cx, doc: &Json) -> Result<CampaignDoc, IngestError> {
    let campaign = cx.str_field(doc, "", "campaign")?;
    // one tag, two producers: the chaos campaign carries `cases` + `pool`,
    // the adversarial search carries `records` + trial counts
    if doc.get("cases").is_some() {
        let pool = doc.get("pool").ok_or_else(|| cx.shape("pool"))?;
        Ok(CampaignDoc::Chaos {
            campaign,
            cases: cx.arr_field(doc, "", "cases")?.len(),
            pool: (
                cx.usize_field(pool, "pool.", "worker_panics")?,
                cx.usize_field(pool, "pool.", "worker_respawns")?,
                cx.usize_field(pool, "pool.", "barrier_timeouts")?,
            ),
        })
    } else {
        Ok(CampaignDoc::Search {
            campaign,
            random_trials: cx.usize_field(doc, "", "random_trials")?,
            guided_trials: cx.usize_field(doc, "", "guided_trials")?,
            records: cx.arr_field(doc, "", "records")?.len(),
        })
    }
}

fn ingest_flight(cx: &Cx, doc: &Json) -> Result<FlightDoc, IngestError> {
    let rounds = cx
        .arr_field(doc, "", "rounds")?
        .iter()
        .enumerate()
        .map(|(i, s)| cx.round_stats(s, &format!("rounds[{i}].")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FlightDoc {
        name: cx.str_field(doc, "", "name")?,
        reason: cx.str_field(doc, "", "reason")?,
        capacity: cx.usize_field(doc, "", "capacity")?,
        rounds_seen: cx.usize_field(doc, "", "rounds_seen")?,
        rounds,
    })
}

fn ingest_analysis(cx: &Cx, doc: &Json) -> Result<AnalysisDoc, IngestError> {
    let families = cx
        .arr_field(doc, "", "families")?
        .iter()
        .enumerate()
        .map(|(i, fam)| {
            let at = format!("families[{i}].");
            Ok(AnalysisFamily {
                family: cx.str_field(fam, &at, "family")?,
                kind: cx.str_field(fam, &at, "kind")?,
                points: cx.arr_field(fam, &at, "points")?.len(),
            })
        })
        .collect::<Result<Vec<_>, IngestError>>()?;
    Ok(AnalysisDoc {
        analysis: cx.str_field(doc, "", "analysis")?,
        families,
    })
}

fn ingest_lint(cx: &Cx, doc: &Json) -> Result<LintDoc, IngestError> {
    let summary = doc.get("summary").ok_or_else(|| cx.shape("summary"))?;
    let diagnostics = cx
        .arr_field(doc, "", "diagnostics")?
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let at = format!("diagnostics[{i}].");
            Ok(LintRecord {
                rule: cx.str_field(d, &at, "rule")?,
                file: cx.str_field(d, &at, "file")?,
                line: cx.usize_field(d, &at, "line")?,
                message: cx.str_field(d, &at, "message")?,
                suppressed: cx.bool_field(d, &at, "suppressed")?,
                reason: cx.opt_str_field(d, &at, "reason")?,
            })
        })
        .collect::<Result<Vec<_>, IngestError>>()?;
    let total = cx.usize_field(summary, "summary.", "total")?;
    if total != diagnostics.len() {
        return Err(cx.shape("summary.total"));
    }
    Ok(LintDoc {
        root: cx.str_field(doc, "", "root")?,
        files: cx.usize_field(doc, "", "files")?,
        suppressed: cx.usize_field(summary, "summary.", "suppressed")?,
        unsuppressed: cx.usize_field(summary, "summary.", "unsuppressed")?,
        diagnostics,
    })
}

fn ingest_trace(path: &Path, text: &str) -> Result<Artifact, IngestError> {
    let cx = Cx { path };
    let lines = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            let doc = Json::parse(line).map_err(|e| IngestError::Parse(path.to_path_buf(), e))?;
            let at = format!("line {}: ", i + 1);
            Ok(TraceLine {
                run: cx.str_field(&doc, &at, "run")?,
                stats: cx.round_stats(&doc, &at)?,
            })
        })
        .collect::<Result<Vec<_>, IngestError>>()?;
    Ok(Artifact::Trace(TraceDoc { lines }))
}

/// Artifact files recognized inside a directory: the upload-glob
/// prefixes, in scan order. `ANALYSIS_*` covers both the analyzer's own
/// accounting output (`smst-analysis-v1`) and the lint gate's
/// `ANALYSIS_lint.json` (`smst-lint-v1`).
pub const ARTIFACT_PREFIXES: [&str; 5] = ["ANALYSIS_", "BENCH_", "CAMPAIGN_", "TRACE_", "FLIGHT_"];

/// Ingests every recognized artifact directly inside `dir`, sorted by
/// file name (deterministic CLI output). Each file's result is returned
/// individually — one corrupt artifact must not hide the rest.
pub fn ingest_dir(dir: &Path) -> std::io::Result<Vec<(PathBuf, Result<Artifact, IngestError>)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| ARTIFACT_PREFIXES.iter().any(|pre| n.starts_with(pre)))
        })
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let result = ingest_file(&p);
            (p, result)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, body: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("smst_analyze_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn bench_documents_lift_to_typed_cases() {
        let path = tmp(
            "BENCH_unit.json",
            "{\"schema\":\"smst-bench-v1\",\"group\":\"g\",\
             \"meta\":{\"halo_entries\":42},\
             \"results\":[{\"name\":\"g/a\",\"iters\":5,\"min_ns\":10,\
             \"median_ns\":20,\"mean_ns\":21.5,\"max_ns\":40}]}\n",
        );
        let Artifact::Bench(doc) = ingest_file(&path).unwrap() else {
            panic!("expected a bench artifact");
        };
        assert_eq!(doc.group, "g");
        assert_eq!(doc.meta, vec![("halo_entries".to_string(), 42.0)]);
        assert_eq!(doc.results.len(), 1);
        assert_eq!(doc.results[0].median_ns, 20);
        assert_eq!(doc.results[0].mean_ns, 21.5);
    }

    #[test]
    fn chaos_documents_keep_censored_waves_as_none() {
        let path = tmp(
            "BENCH_chaos_unit.json",
            "{\"schema\":\"smst-chaos-v1\",\"group\":\"chaos\",\"runs\":[\
             {\"label\":\"l\",\"run\":\"seed=7\",\"schedule\":\"s\",\
             \"steps_run\":24,\"injected_faults\":12,\"detected_waves\":1,\
             \"quiesced_waves\":0,\"mean_detection_latency\":1,\
             \"mean_quiescence\":null,\"waves\":[\
             {\"wave\":0,\"step\":0,\"faults\":4,\"detection_latency\":1,\
             \"quiescence\":null}]}]}\n",
        );
        let Artifact::Chaos(doc) = ingest_file(&path).unwrap() else {
            panic!("expected a chaos artifact");
        };
        assert_eq!(doc.runs[0].waves[0].detection_latency, Some(1));
        assert_eq!(doc.runs[0].waves[0].quiescence, None);
        assert_eq!(doc.runs[0].mean_quiescence, None);
    }

    #[test]
    fn both_campaign_shapes_share_one_tag() {
        let search = tmp(
            "CAMPAIGN_search.json",
            "{\"schema\":\"smst-campaign-v1\",\"campaign\":\"s\",\
             \"random_trials\":4,\"guided_trials\":0,\"best\":null,\
             \"shrunk\":null,\"records\":[]}\n",
        );
        let chaos = tmp(
            "CAMPAIGN_chaos.json",
            "{\"schema\":\"smst-campaign-v1\",\"campaign\":\"c\",\
             \"cases\":[],\"pool\":{\"worker_panics\":1,\
             \"worker_respawns\":2,\"barrier_timeouts\":3}}\n",
        );
        let Artifact::Campaign(CampaignDoc::Search { random_trials, .. }) =
            ingest_file(&search).unwrap()
        else {
            panic!("expected the search shape");
        };
        assert_eq!(random_trials, 4);
        let Artifact::Campaign(CampaignDoc::Chaos { pool, .. }) = ingest_file(&chaos).unwrap()
        else {
            panic!("expected the chaos shape");
        };
        assert_eq!(pool, (1, 2, 3));
    }

    #[test]
    fn trace_streams_dispatch_on_extension() {
        let path = tmp(
            "TRACE_unit.jsonl",
            "{\"run\":\"t\",\"round\":0,\"alarms\":0,\"activations\":4,\
             \"halo_bytes\":0,\"dispatch_ns\":1,\"compute_ns\":2,\
             \"barrier_ns\":3,\"exchange_ns\":4}\n",
        );
        let Artifact::Trace(doc) = ingest_file(&path).unwrap() else {
            panic!("expected a trace artifact");
        };
        assert_eq!(doc.lines.len(), 1);
        assert_eq!(doc.lines[0].run, "t");
        assert_eq!(doc.lines[0].stats.exchange_ns, 4);
    }

    #[test]
    fn future_schema_versions_are_rejected_loudly() {
        let path = tmp(
            "BENCH_future.json",
            "{\"schema\":\"smst-bench-v2\",\"group\":\"g\"}\n",
        );
        match ingest_file(&path).unwrap_err() {
            IngestError::UnsupportedVersion {
                found, supported, ..
            } => {
                assert_eq!(found, "smst-bench-v2");
                assert_eq!(supported, SCHEMA_BENCH);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn unknown_and_missing_schemas_are_distinct_errors() {
        let unknown = tmp("BENCH_x.json", "{\"schema\":\"something-else\"}\n");
        assert!(matches!(
            ingest_file(&unknown).unwrap_err(),
            IngestError::UnknownSchema(..)
        ));
        let missing = tmp("BENCH_y.json", "{\"group\":\"g\"}\n");
        assert!(matches!(
            ingest_file(&missing).unwrap_err(),
            IngestError::MissingSchema(..)
        ));
    }

    #[test]
    fn shape_errors_name_the_offending_field() {
        let path = tmp(
            "BENCH_shape.json",
            "{\"schema\":\"smst-bench-v1\",\"group\":\"g\",\"meta\":{},\
             \"results\":[{\"name\":\"a\",\"iters\":1,\"min_ns\":1,\
             \"mean_ns\":1.0,\"max_ns\":1}]}\n",
        );
        match ingest_file(&path).unwrap_err() {
            IngestError::Shape { field, .. } => assert_eq!(field, "results[0].median_ns"),
            other => panic!("expected Shape, got {other:?}"),
        }
    }

    #[test]
    fn directory_scan_is_sorted_and_prefix_filtered() {
        let dir = std::env::temp_dir().join("smst_analyze_ingest_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_b.json"),
            "{\"schema\":\"smst-bench-v1\",\"group\":\"b\",\"meta\":{},\"results\":[]}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("ANALYSIS_lint.json"),
            "{\"schema\":\"smst-lint-v1\",\"root\":\"workspace\",\"files\":3,\
             \"summary\":{\"total\":0,\"suppressed\":0,\"unsuppressed\":0},\
             \"diagnostics\":[]}\n",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        std::fs::write(dir.join("BENCH_a.json"), "not json").unwrap();
        let results = ingest_dir(&dir).unwrap();
        let names: Vec<_> = results
            .iter()
            .map(|(p, _)| p.file_name().unwrap().to_string_lossy().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["ANALYSIS_lint.json", "BENCH_a.json", "BENCH_b.json"]
        );
        assert!(matches!(
            results[0].1.as_ref().unwrap(),
            Artifact::Lint(doc) if doc.files == 3 && doc.diagnostics.is_empty()
        ));
        assert!(
            results[1].1.is_err(),
            "corrupt artifact reported, not hidden"
        );
        assert!(results[2].1.is_ok());
    }

    #[test]
    fn lint_documents_round_trip_reasons_and_counts() {
        let path = tmp(
            "ANALYSIS_lint_unit.json",
            "{\"schema\":\"smst-lint-v1\",\"root\":\"fixture\",\"files\":2,\
             \"summary\":{\"total\":2,\"suppressed\":1,\"unsuppressed\":1},\
             \"diagnostics\":[\
             {\"rule\":\"clock\",\"file\":\"a.rs\",\"line\":3,\
              \"message\":\"m\",\"suppressed\":true,\"reason\":\"observed path\"},\
             {\"rule\":\"rng\",\"file\":\"b.rs\",\"line\":9,\
              \"message\":\"m\",\"suppressed\":false,\"reason\":null}]}\n",
        );
        let Artifact::Lint(doc) = ingest_file(&path).unwrap() else {
            panic!("expected a lint artifact");
        };
        assert_eq!((doc.suppressed, doc.unsuppressed), (1, 1));
        assert_eq!(doc.diagnostics[0].reason.as_deref(), Some("observed path"));
        assert_eq!(doc.diagnostics[1].reason, None);
        // a summary that disagrees with the diagnostics array is a shape error
        let lying = tmp(
            "ANALYSIS_lint_lying.json",
            "{\"schema\":\"smst-lint-v1\",\"root\":\"fixture\",\"files\":1,\
             \"summary\":{\"total\":5,\"suppressed\":0,\"unsuppressed\":5},\
             \"diagnostics\":[]}\n",
        );
        match ingest_file(&lying).unwrap_err() {
            IngestError::Shape { field, .. } => assert_eq!(field, "summary.total"),
            other => panic!("expected Shape, got {other:?}"),
        }
    }

    #[test]
    fn analysis_documents_lift_to_family_summaries() {
        let path = tmp(
            "ANALYSIS_kmw_unit.json",
            "{\"schema\":\"smst-analysis-v1\",\"analysis\":\"kmw\",\
             \"families\":[{\"family\":\"hard\",\"kind\":\"measured\",\
             \"points\":[{\"x\":1},{\"x\":2}]}]}\n",
        );
        let Artifact::Analysis(doc) = ingest_file(&path).unwrap() else {
            panic!("expected an analysis artifact");
        };
        assert_eq!(doc.analysis, "kmw");
        assert_eq!(doc.families.len(), 1);
        assert_eq!(doc.families[0].points, 2);
    }
}
