//! The `smst-analyze` CLI: ingest listings, the CI regression gate, the
//! KMW bound-accounting sweep, and baseline seeding.
//!
//! Exit codes: `0` clean, `1` gate failure, `2` usage or ingest error.

use smst_analyze::check::{check_dirs, Thresholds};
use smst_analyze::ingest::{ingest_dir, ARTIFACT_PREFIXES};
use smst_analyze::kmw::{run_kmw_accounting, validate_analysis_json, KmwConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: smst-analyze <command> [options]

commands:
  ingest <dir>
      Parse every recognized artifact (ANALYSIS_/BENCH_/CAMPAIGN_/
      TRACE_/FLIGHT_) directly inside <dir>, print a one-line summary
      per file, and fail (exit 2) if any artifact is corrupt or carries
      an unknown schema version.

  check --baseline <dir> [--current <dir>] [--tolerance <x>] [--floor-ns <n>]
      Compare the current artifacts (default: $SMST_BENCH_DIR, else .)
      against the checked-in baselines. Bench medians regress only when
      they exceed baseline x tolerance (default 2.0) AND grow by more
      than floor-ns (default 250000); chaos accounting is compared
      exactly; lint artifacts fail on any unsuppressed diagnostic or a
      suppression count above the baseline (suppression creep). Exit 1
      on any regression, mismatch, or creep.

  kmw [--out <dir>] [--seed <s>] [--warmup <w>]
      Run the KMW bound-accounting sweep (cluster trees, hybrids, and
      matched expanders at depths 2/3/4) and write ANALYSIS_kmw.json
      into --out (default: $SMST_BENCH_DIR, else .).

  baseline --from <dir> --to <dir>
      Seed or refresh a baseline directory: validate every recognized
      artifact in --from, then copy the gate-relevant ones (bench
      timings, chaos accounting, and lint artifacts) into --to. Traces,
      campaigns, and flight dumps are validated but not copied -- the
      gate has no comparison semantics for them.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("kmw") => cmd_kmw(&args[1..]),
        Some("baseline") => cmd_baseline(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("smst-analyze: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Where current artifacts live when no directory is given: the same
/// `$SMST_BENCH_DIR`-else-`.` rule every producer writes with.
fn default_artifact_dir() -> PathBuf {
    std::env::var_os("SMST_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Pulls the value of `--flag value` out of `args`, erroring on a
/// trailing flag with no value.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.clone()))
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

fn cmd_ingest(args: &[String]) -> Result<ExitCode, String> {
    let dir = args.first().ok_or("ingest needs a directory")?;
    let results = ingest_dir(Path::new(dir)).map_err(|e| format!("scanning {dir}: {e}"))?;
    if results.is_empty() {
        println!(
            "no artifacts in {dir} (recognized prefixes: {})",
            ARTIFACT_PREFIXES.join(", ")
        );
        return Ok(ExitCode::SUCCESS);
    }
    let mut failures = 0usize;
    for (path, result) in &results {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        match result {
            Ok(artifact) => println!("  ok      {name}: {}", artifact.describe()),
            Err(e) => {
                failures += 1;
                println!("  FAILED  {e}");
            }
        }
    }
    println!("{} artifacts, {failures} failures", results.len());
    if failures > 0 {
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let baseline = flag_value(args, "--baseline")?.ok_or("check needs --baseline <dir>")?;
    let current = flag_value(args, "--current")?
        .map(PathBuf::from)
        .unwrap_or_else(default_artifact_dir);
    let mut thresholds = Thresholds::default();
    if let Some(t) = flag_value(args, "--tolerance")? {
        thresholds.tolerance = t
            .parse()
            .map_err(|_| format!("--tolerance {t:?} is not a number"))?;
    }
    if let Some(f) = flag_value(args, "--floor-ns")? {
        thresholds.floor_ns = f
            .parse()
            .map_err(|_| format!("--floor-ns {f:?} is not an integer"))?;
    }
    println!(
        "checking {} against baseline {} (tolerance {}x, floor {} ns)",
        current.display(),
        baseline,
        thresholds.tolerance,
        thresholds.floor_ns
    );
    let report = check_dirs(Path::new(&baseline), &current, thresholds)
        .map_err(|e| format!("gate could not run: {e}"))?;
    print!("{}", report.render());
    if report.passed() {
        println!("gate: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("gate: FAIL");
        Ok(ExitCode::from(1))
    }
}

fn cmd_kmw(args: &[String]) -> Result<ExitCode, String> {
    let out = flag_value(args, "--out")?
        .map(PathBuf::from)
        .unwrap_or_else(default_artifact_dir);
    let mut config = KmwConfig::default();
    if let Some(s) = flag_value(args, "--seed")? {
        config.seed = s
            .parse()
            .map_err(|_| format!("--seed {s:?} is not an integer"))?;
    }
    if let Some(w) = flag_value(args, "--warmup")? {
        config.warmup = w
            .parse()
            .map_err(|_| format!("--warmup {w:?} is not an integer"))?;
    }
    println!(
        "kmw bound accounting: depths {:?}, delta {}, seed {}, warmup {}",
        config.levels, config.delta, config.seed, config.warmup
    );
    let analysis = run_kmw_accounting(&config);
    print!("{}", analysis.render());
    let undetected = analysis
        .points
        .iter()
        .filter(|p| p.measured_rounds.is_none())
        .count();
    let json = analysis.to_json();
    validate_analysis_json(&json, config.levels.len())
        .map_err(|e| format!("sweep produced an invalid analysis: {e}"))?;
    let path = analysis
        .write_json_to(&out)
        .map_err(|e| format!("writing ANALYSIS_kmw.json into {}: {e}", out.display()))?;
    println!("  analysis -> {}", path.display());
    if undetected > 0 {
        // every family must detect within the generous budget; a silent
        // miss is exactly what this accounting exists to catch
        println!("gate: FAIL ({undetected} points never alarmed)");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_baseline(args: &[String]) -> Result<ExitCode, String> {
    let from = flag_value(args, "--from")?.ok_or("baseline needs --from <dir>")?;
    let to = flag_value(args, "--to")?.ok_or("baseline needs --to <dir>")?;
    let results = ingest_dir(Path::new(&from)).map_err(|e| format!("scanning {from}: {e}"))?;
    if results.is_empty() {
        return Err(format!("no artifacts in {from} to seed a baseline from"));
    }
    // refuse to seed from a directory with corrupt artifacts: a baseline
    // the gate cannot read back is worse than no baseline
    for (path, result) in &results {
        if let Err(e) = result {
            return Err(format!("{} failed validation: {e}", path.display()));
        }
    }
    std::fs::create_dir_all(&to).map_err(|e| format!("creating {to}: {e}"))?;
    let mut copied = 0usize;
    for (path, result) in &results {
        let gate_relevant = matches!(
            result,
            Ok(smst_analyze::Artifact::Bench(_)
                | smst_analyze::Artifact::Chaos(_)
                | smst_analyze::Artifact::Lint(_))
        );
        if !gate_relevant {
            println!("  skipped {} (not gated)", path.display());
            continue;
        }
        let dest = Path::new(&to).join(path.file_name().unwrap_or_default());
        std::fs::copy(path, &dest)
            .map_err(|e| format!("copying {} -> {}: {e}", path.display(), dest.display()))?;
        println!("  {} -> {}", path.display(), dest.display());
        copied += 1;
    }
    if copied == 0 {
        return Err(format!("no gate-relevant artifacts in {from}"));
    }
    println!("{copied} artifacts seeded into {to}");
    Ok(ExitCode::SUCCESS)
}
