//! KMW bound accounting: measured detection rounds vs the paper's bounds,
//! per graph family — the `ANALYSIS_kmw.json` producer.
//!
//! The paper proves MST verification detects a fault within `O(log² n)`
//! synchronous rounds; Kuhn–Moscibroda–Wattenhofer's lower bound says no
//! local algorithm beats `Ω(√(log n / log log n))` rounds on their hard
//! cluster-tree family. This module runs the actual verifier on both
//! sides of that gap:
//!
//! * **hard** — the KMW cluster trees ([`GraphFamily::KmwClusterTree`])
//!   and the triangle-free hybrid ([`GraphFamily::KmwHybrid`]), the
//!   simplified `CT_k` realizations grown in `smst-graph`;
//! * **easy** — degree-4 circulant expanders at matched node counts,
//!   where locality is cheap.
//!
//! Each point is a small detection campaign: per trial, warm the
//! verifier up on the correctly-marked instance, corrupt one stored
//! piece weight, and count the synchronous rounds to the first alarm;
//! the point records the worst (maximum) detected latency next to the
//! two bound curves (both in base-2 logs). Trials are needed because a
//! single corrupted register can land where the verifier legitimately
//! never looks (a value that collides with the correct one, a register
//! the comparison machinery does not consult on that topology) — a
//! one-shot experiment reads such a miss as "bound broken" when it is
//! just an undetectable fault.
//! The warm-up is a modest constant, not the paper's full
//! `sync_budget(n)` (which is ~584k steps at `n = 393` — a budget for
//! proofs, not for CI): the verifier starts from the correct
//! configuration, so it is already converged at round 0 and the warm-up
//! only demonstrates steady-state silence before the fault lands.

use crate::json::Json;
use smst_bench::engine_metrics::mst_verifier_for;
use smst_bench::harness::json_string;
use smst_core::faults::{corrupt, FaultKind};
use smst_engine::{EngineConfig, GraphFamily, ScenarioSpec, StopCondition};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Configuration of one accounting sweep.
#[derive(Debug, Clone)]
pub struct KmwConfig {
    /// Base graph / corruption seed (trial `t` uses `seed + t`; every
    /// point is a pure function of the family, this seed, and the trial
    /// count).
    pub seed: u64,
    /// Fault-free steps before each trial's burst.
    pub warmup: usize,
    /// Detection trials per point.
    pub trials: usize,
    /// Cluster-hierarchy depths to sweep (each contributes one cluster
    /// tree, one hybrid at depth ≥ 2, and one matched expander).
    pub levels: Vec<usize>,
    /// Branching factor δ between cluster levels.
    pub delta: usize,
    /// Engine envelope the scenarios run on (thread count and layout
    /// never change the measured rounds — the engine's determinism
    /// contract).
    pub engine: EngineConfig,
}

impl Default for KmwConfig {
    fn default() -> Self {
        // levels 2/3/4 at δ=3 give cluster trees of 17/78/393 nodes —
        // three sizes spanning a 23x range while the largest run stays
        // in CI-smoke territory
        KmwConfig {
            seed: 7,
            warmup: 64,
            trials: 5,
            levels: vec![2, 3, 4],
            delta: 3,
            engine: EngineConfig::new(),
        }
    }
}

/// One measured point of the accounting sweep.
#[derive(Debug, Clone)]
pub struct KmwPoint {
    /// Family slug (`kmw_cluster_tree`, `kmw_hybrid`, `expander`).
    pub family: &'static str,
    /// `hard` (KMW constructions) or `easy` (expander).
    pub kind: &'static str,
    /// Cluster-hierarchy depth (0 for the expander points).
    pub levels: usize,
    /// Branching factor δ (0 for the expander points).
    pub delta: usize,
    /// Node count.
    pub n: usize,
    /// Detection trials run.
    pub trials: usize,
    /// Trials that alarmed within the budget.
    pub detected: usize,
    /// Worst-case synchronous rounds from the fault burst to the first
    /// alarm, over the detected trials (`None`: no trial detected — a
    /// finding, not an error).
    pub measured_rounds: Option<usize>,
    /// The paper's upper-bound curve at this size: `log₂² n`.
    pub upper_bound: f64,
    /// The KMW lower-bound curve at this size:
    /// `√(log₂ n / log₂ log₂ n)`.
    pub lower_bound: f64,
}

/// A completed sweep, ready to serialize as `ANALYSIS_kmw.json`.
#[derive(Debug, Clone)]
pub struct KmwAnalysis {
    /// The seed the sweep ran with.
    pub seed: u64,
    /// The warm-up the sweep ran with.
    pub warmup: usize,
    /// All measured points, grouped by family in sweep order.
    pub points: Vec<KmwPoint>,
}

/// The paper's upper-bound curve: `log₂² n`.
pub fn upper_bound(n: usize) -> f64 {
    let l = (n.max(2) as f64).log2();
    l * l
}

/// The KMW lower-bound curve: `√(log₂ n / log₂ log₂ n)`. Clamped below
/// `n = 5` where `log log n` dips under 1 and the expression loses
/// meaning.
pub fn lower_bound(n: usize) -> f64 {
    let l = (n.max(5) as f64).log2();
    (l / l.log2()).sqrt()
}

/// Detection budget after the warm-up: a generous multiple of the upper
/// bound, so "not detected" in a point means the bound story is broken,
/// not that the budget was tight.
fn detection_budget(n: usize) -> usize {
    16 * upper_bound(n).ceil() as usize + 64
}

/// Runs one detection trial: warm up, corrupt one stored piece weight,
/// count rounds to the first alarm.
fn measure_trial(family: &GraphFamily, config: &KmwConfig, trial: u64) -> Option<usize> {
    let n = family.node_count();
    let seed = config.seed + trial;
    let budget = config.warmup + detection_budget(n);
    let spec = ScenarioSpec::new(family.clone())
        .engine(config.engine.clone())
        .seed(seed)
        .fault_burst(config.warmup, 1, seed)
        .until(StopCondition::FirstAlarm);
    let mut i = 0u64;
    let (outcome, _verifier) = spec.run_with(
        mst_verifier_for,
        |_v, state| {
            corrupt(state, FaultKind::StoredPieceWeight, seed.wrapping_add(i));
            i += 1;
        },
        budget,
    );
    outcome.report.first_alarm
}

/// Runs the point's campaign: `trials` independent trials, keeping the
/// detected count and the worst detected latency.
fn measure(family: &GraphFamily, config: &KmwConfig) -> (usize, Option<usize>) {
    let mut detected = 0usize;
    let mut worst: Option<usize> = None;
    for trial in 0..config.trials.max(1) as u64 {
        if let Some(rounds) = measure_trial(family, config, trial) {
            detected += 1;
            worst = Some(worst.map_or(rounds, |w: usize| w.max(rounds)));
        }
    }
    (detected, worst)
}

/// Runs the full accounting sweep described by `config`.
pub fn run_kmw_accounting(config: &KmwConfig) -> KmwAnalysis {
    let mut points = Vec::new();
    let point = |family: &'static str,
                 kind: &'static str,
                 levels: usize,
                 delta: usize,
                 g: GraphFamily,
                 config: &KmwConfig| {
        let n = g.node_count();
        let (detected, measured_rounds) = measure(&g, config);
        KmwPoint {
            family,
            kind,
            levels,
            delta,
            n,
            trials: config.trials.max(1),
            detected,
            measured_rounds,
            upper_bound: upper_bound(n),
            lower_bound: lower_bound(n),
        }
    };
    for &levels in &config.levels {
        let g = GraphFamily::KmwClusterTree {
            levels,
            delta: config.delta,
        };
        points.push(point(
            "kmw_cluster_tree",
            "hard",
            levels,
            config.delta,
            g,
            config,
        ));
    }
    for &levels in config.levels.iter().filter(|&&l| l >= 2) {
        let g = GraphFamily::KmwHybrid {
            levels,
            delta: config.delta,
        };
        points.push(point("kmw_hybrid", "hard", levels, config.delta, g, config));
    }
    for &levels in &config.levels {
        // the easy side of the gap: an expander matched to the cluster
        // tree's node count, so each hard point has an easy twin
        let n = GraphFamily::KmwClusterTree {
            levels,
            delta: config.delta,
        }
        .node_count();
        let g = GraphFamily::Expander { n, degree: 4 };
        points.push(point("expander", "easy", 0, 0, g, config));
    }
    KmwAnalysis {
        seed: config.seed,
        warmup: config.warmup,
        points,
    }
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

impl KmwAnalysis {
    /// The family slugs present, in first-appearance order.
    pub fn families(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for p in &self.points {
            if !out.contains(&p.family) {
                out.push(p.family);
            }
        }
        out
    }

    /// The analysis as a JSON document:
    ///
    /// ```json
    /// {"schema":"smst-analysis-v1","analysis":"kmw","seed":7,"warmup":64,
    ///  "families":[{"family":"kmw_cluster_tree","kind":"hard",
    ///   "points":[{"levels":2,"delta":3,"n":17,"trials":5,"detected":5,
    ///              "measured_rounds":1,"upper_bound":16.7,
    ///              "lower_bound":1.4}]}]}
    /// ```
    pub fn to_json(&self) -> String {
        let families: Vec<String> = self
            .families()
            .into_iter()
            .map(|family| {
                let members: Vec<&KmwPoint> =
                    self.points.iter().filter(|p| p.family == family).collect();
                let kind = members[0].kind;
                let points: Vec<String> = members
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"levels\":{},\"delta\":{},\"n\":{},\
                             \"trials\":{},\"detected\":{},\
                             \"measured_rounds\":{},\"upper_bound\":{:.3},\
                             \"lower_bound\":{:.3}}}",
                            p.levels,
                            p.delta,
                            p.n,
                            p.trials,
                            p.detected,
                            json_opt_usize(p.measured_rounds),
                            p.upper_bound,
                            p.lower_bound
                        )
                    })
                    .collect();
                format!(
                    "{{\"family\":{},\"kind\":{},\"points\":[{}]}}",
                    json_string(family),
                    json_string(kind),
                    points.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"smst-analysis-v1\",\"analysis\":\"kmw\",\
             \"seed\":{},\"warmup\":{},\"families\":[{}]}}\n",
            self.seed,
            self.warmup,
            families.join(",")
        )
    }

    /// Writes `ANALYSIS_kmw.json` into `dir` and returns its path (the
    /// same injectable-directory discipline as every artifact writer).
    pub fn write_json_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join("ANALYSIS_kmw.json");
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// A console rendering of the measured-vs-bound table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<18} {:>4} {:>4} {:>6} {:>9} {:>9} {:>11} {:>11}",
            "family", "kind", "lvl", "n", "detected", "measured", "upper", "lower"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "  {:<18} {:>4} {:>4} {:>6} {:>9} {:>9} {:>11.2} {:>11.2}",
                p.family,
                p.kind,
                p.levels,
                p.n,
                format!("{}/{}", p.detected, p.trials),
                p.measured_rounds
                    .map_or_else(|| "none".to_string(), |r| r.to_string()),
                p.upper_bound,
                p.lower_bound
            );
        }
        out
    }
}

/// Sanity gate on a written `ANALYSIS_kmw.json` body: parses it back and
/// confirms the acceptance shape — per-family curves with at least
/// `min_tree_sizes` cluster-tree points (the CLI asserts this after every
/// sweep, so a broken sweep cannot quietly publish an empty analysis).
pub fn validate_analysis_json(body: &str, min_tree_sizes: usize) -> Result<(), String> {
    let doc = Json::parse(body).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(crate::ingest::SCHEMA_ANALYSIS) {
        return Err("missing or wrong \"schema\" tag".to_string());
    }
    let families = doc
        .get("families")
        .and_then(Json::as_array)
        .ok_or("missing \"families\" array")?;
    let tree = families
        .iter()
        .find(|f| f.get("family").and_then(Json::as_str) == Some("kmw_cluster_tree"))
        .ok_or("no kmw_cluster_tree family")?;
    let points = tree
        .get("points")
        .and_then(Json::as_array)
        .ok_or("kmw_cluster_tree has no points array")?;
    if points.len() < min_tree_sizes {
        return Err(format!(
            "kmw_cluster_tree has {} points, need at least {min_tree_sizes}",
            points.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_curves_are_monotone_and_ordered() {
        let sizes = [17usize, 78, 393, 10_000];
        for w in sizes.windows(2) {
            assert!(upper_bound(w[0]) < upper_bound(w[1]));
            assert!(lower_bound(w[0]) < lower_bound(w[1]));
        }
        for &n in &sizes {
            assert!(lower_bound(n) < upper_bound(n), "gap must be open at n={n}");
        }
    }

    #[test]
    fn a_small_sweep_measures_detection_within_the_upper_bound_regime() {
        // levels=2 only: the full 3-size sweep belongs to the CLI run,
        // not the unit suite
        let config = KmwConfig {
            levels: vec![2],
            ..KmwConfig::default()
        };
        let analysis = run_kmw_accounting(&config);
        assert_eq!(analysis.points.len(), 3, "tree + hybrid + expander");
        for p in &analysis.points {
            assert!(
                p.detected >= 1,
                "{} n={}: no trial of {} detected",
                p.family,
                p.n,
                p.trials
            );
            let measured = p.measured_rounds.unwrap();
            assert!(
                (measured as f64) <= 4.0 * p.upper_bound + 8.0,
                "{} n={}: {measured} rounds vs upper bound {}",
                p.family,
                p.n,
                p.upper_bound
            );
        }
        let json = analysis.to_json();
        validate_analysis_json(&json, 1).unwrap();
        assert!(json.starts_with("{\"schema\":\"smst-analysis-v1\",\"analysis\":\"kmw\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn validation_rejects_thin_analyses() {
        let body = "{\"schema\":\"smst-analysis-v1\",\"analysis\":\"kmw\",\
                    \"seed\":7,\"warmup\":64,\"families\":[\
                    {\"family\":\"kmw_cluster_tree\",\"kind\":\"hard\",\
                     \"points\":[{\"levels\":2,\"delta\":3,\"n\":17,\
                     \"trials\":5,\"detected\":5,\"measured_rounds\":1,\
                     \"upper_bound\":16.7,\"lower_bound\":1.4}]}]}\n";
        validate_analysis_json(body, 1).unwrap();
        assert!(validate_analysis_json(body, 3).is_err());
        assert!(validate_analysis_json("{}", 1).is_err());
    }
}
