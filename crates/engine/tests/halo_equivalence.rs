//! Property tests for the halo-exchange execution mode and worker pinning:
//! halo-mode runs must be **bit-for-bit identical** to the sequential
//! [`SyncRunner`] across threads ∈ {1, 2, 8} × layout ∈ {Identity, Rcm} ×
//! pinning on/off (the sequential runner stays the oracle, as in the PR 2
//! equivalence suite), the async runner must be placement-invariant, and
//! on the expander scenario the RCM layout must leave strictly smaller
//! halos than the identity layout.

use proptest::prelude::*;
use smst_engine::programs::MinIdFlood;
use smst_engine::{
    partition_balanced, CsrTopology, EngineConfig, HaloPlan, LayoutPolicy, ParallelSyncRunner,
    PinPolicy, ShardedAsyncRunner,
};
use smst_graph::generators::{expander_graph, random_connected_graph};
use smst_graph::WeightedGraph;
use smst_sim::{AsyncRunner, Daemon, Network, SyncRunner};

fn graph_for(kind: bool, n: usize, seed: u64) -> WeightedGraph {
    if kind {
        // circulant expanders need an even degree >= 2 and n > degree
        expander_graph(n.max(8), 4, seed)
    } else {
        random_connected_graph(n, 3 * n, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn halo_runs_are_bit_identical_to_the_sequential_runner(
        expander in proptest::bool::ANY,
        n in 8usize..40,
        seed in 0u64..1000,
        rounds in 1usize..10,
    ) {
        let g = graph_for(expander, n, seed);
        let program = MinIdFlood::new(0);
        let mut seq = SyncRunner::new(&program, Network::new(&program, g.clone()));
        seq.run_rounds(rounds);
        for threads in [1usize, 2, 8] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                for pin in [PinPolicy::None, PinPolicy::Cores] {
                    let config = EngineConfig::new()
                        .threads(threads)
                        .layout(policy)
                        .halo(true)
                        .pin(pin);
                    let mut par = ParallelSyncRunner::from_config(&program, g.clone(), &config)
                        .expect("a valid halo envelope");
                    par.run_rounds(rounds);
                    let snapshot = par.states_snapshot();
                    prop_assert_eq!(
                        snapshot.as_slice(),
                        seq.network().states(),
                        "threads {}, {:?}, {:?}", threads, policy, pin
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn halo_stepping_interleaves_like_direct_stepping(
        expander in proptest::bool::ANY,
        n in 8usize..32,
        seed in 0u64..1000,
    ) {
        // single steps and chunks must agree: the halo arenas are re-
        // gathered per call, so mutating states between calls (as fault
        // injection does) must never desynchronize them
        let g = graph_for(expander, n, seed);
        let program = MinIdFlood::new(0);
        let rcm4 = EngineConfig::new().threads(4).layout(LayoutPolicy::Rcm);
        let mut halo =
            ParallelSyncRunner::from_config(&program, g.clone(), &rcm4.clone().halo(true))
                .expect("a valid halo envelope");
        let mut direct = ParallelSyncRunner::from_config(&program, g.clone(), &rcm4)
            .expect("a valid sharded sync envelope");
        halo.step_round();
        direct.step_round();
        halo.run_rounds(3);
        direct.run_rounds(3);
        halo.step_round();
        direct.step_round();
        prop_assert_eq!(halo.states_snapshot(), direct.states_snapshot());
        prop_assert_eq!(halo.rounds(), 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn pinned_async_runs_replay_the_central_daemon(
        expander in proptest::bool::ANY,
        n in 8usize..30,
        seed in 0u64..1000,
        daemon_seed in 0u64..100,
        units in 1usize..5,
    ) {
        let g = graph_for(expander, n, seed);
        let program = MinIdFlood::new(0);
        let daemon = Daemon::Random { seed: daemon_seed, extra_factor: 1 };
        let mut seq = AsyncRunner::new(&program, Network::new(&program, g.clone()), daemon.clone());
        seq.run_time_units(units);
        for threads in [2usize, 8] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let config = EngineConfig::new()
                    .asynchronous(daemon.clone(), 1)
                    .threads(threads)
                    .layout(policy)
                    .pin(PinPolicy::Cores);
                let mut par = ShardedAsyncRunner::from_config(&program, g.clone(), &config)
                    .expect("a valid sharded async envelope");
                par.run_time_units(units);
                let snapshot = par.states_snapshot();
                prop_assert_eq!(
                    snapshot.as_slice(),
                    seq.network().states(),
                    "threads {}, {:?}", threads, policy
                );
                prop_assert_eq!(par.activations(), seq.activations());
            }
        }
    }
}

/// Total halo of a topology under a layout policy, at the given shard
/// count (the quantity the halo exchange moves every round).
fn total_halo(g: &WeightedGraph, policy: LayoutPolicy, shards: usize) -> usize {
    let base = CsrTopology::build(g);
    let layout = policy.build(&base);
    let topo = layout.apply(&base);
    let parts = partition_balanced(&topo, shards);
    HaloPlan::build(&topo, &parts).total_halo()
}

#[test]
fn rcm_halos_are_strictly_smaller_than_identity_halos_on_the_expander() {
    // the acceptance scenario: the low-diameter expander motivated by the
    // KMW lower-bound line, where nearly every read is cross-shard under
    // the generator's arbitrary numbering; RCM packs neighbours into
    // nearby indices, which must strictly shrink the boundary
    let g = expander_graph(2000, 8, 5);
    for shards in [2usize, 4, 8] {
        let identity = total_halo(&g, LayoutPolicy::Identity, shards);
        let rcm = total_halo(&g, LayoutPolicy::Rcm, shards);
        assert!(
            rcm < identity,
            "{shards} shards: RCM halo {rcm} must be < identity halo {identity}"
        );
    }
}

#[test]
fn halo_size_is_bounded_by_the_cross_shard_edge_count() {
    let g = random_connected_graph(500, 1500, 7);
    let topo = CsrTopology::build(&g);
    let shards = partition_balanced(&topo, 8);
    let plan = HaloPlan::build(&topo, &shards);
    // each shard's halo is a *set* of external endpoints, so it cannot
    // exceed the shard's external-edge endpoint count, nor n
    for (s, sh) in shards.iter().enumerate() {
        let endpoints: usize = sh
            .nodes()
            .map(|v| {
                topo.neighbors_of(v)
                    .iter()
                    .filter(|&&u| (u as usize) < sh.start || (u as usize) >= sh.end)
                    .count()
            })
            .sum();
        assert!(plan.halo_size(s) <= endpoints);
        assert!(plan.halo_size(s) <= 500);
    }
}
