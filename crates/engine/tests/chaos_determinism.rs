//! Fault-schedule determinism across the full backend matrix: the same
//! seeded [`FaultSchedule`] replayed through every backend — the
//! sequential sync/async references and the sharded sync/async engines at
//! 1/2/8 threads — must produce identical per-wave chaos books
//! ([`ChaosReport`]), identical final registers, and identical
//! deterministic `(round, alarms, activations)` observer traces. Layering
//! an injected worker panic plus a successful retry on top must change
//! **nothing** (recovery is invisible in the deterministic trace), and a
//! hung worker must surface as a typed
//! [`PoolError::BarrierTimeout`] instead of a deadlock.

use smst_engine::programs::AlarmedFlood;
use smst_engine::{
    run_chaos, ChaosReport, EngineConfig, InjectionSpec, LayoutPolicy, ParallelSyncRunner,
    PoolError, RecoveryPolicy,
};
use smst_graph::generators::expander_graph;
use smst_sim::{Daemon, FaultSchedule, RecordingObserver};
use std::time::Duration;

const N: usize = 48;

/// Three periodic waves at steps 3, 33 and 63 — 30 steps apart, enough
/// for the [`AlarmedFlood`] garbage (≈15 halvings plus the expander
/// diameter: 25 steps measured on this graph) to decay and the flood to
/// re-converge between waves.
fn schedule() -> FaultSchedule {
    FaultSchedule::periodic(30, 5, 23).offset(3)
}

/// Everything a chaos campaign determines: the per-wave books, the final
/// configuration, and the per-step observer trace.
#[derive(Debug, PartialEq, Eq)]
struct CampaignTrace {
    report: ChaosReport,
    states: Vec<u64>,
    trace: Vec<(usize, usize, usize)>,
}

/// One seeded campaign on whatever execution path `config` describes.
fn run_campaign(config: &EngineConfig, steps: usize) -> CampaignTrace {
    let program = AlarmedFlood::new(0, N as u64 - 1);
    let graph = expander_graph(N, 4, 7);
    let recording = RecordingObserver::new();
    let mut runner = config
        .instantiate(&program, graph)
        .expect("a valid chaos envelope");
    runner.set_observer(Box::new(recording.clone()));
    let report = run_chaos(runner.as_mut(), &schedule(), steps, &mut |_v, s| {
        *s = AlarmedFlood::BOGUS
    })
    .expect("the campaign survives the schedule");
    let states = runner.into_network().states().to_vec();
    let trace = recording
        .deterministic_trace()
        .into_iter()
        .map(|(round, alarms, activations, _halo_bytes)| (round, alarms, activations))
        .collect();
    CampaignTrace {
        report,
        states,
        trace,
    }
}

#[test]
fn every_sync_backend_replays_the_same_campaign() {
    // the sequential reference plus the sharded engine at 1/2/8 threads
    // (with a layout permutation and halo exchange thrown in): one trace
    let envelopes = [
        EngineConfig::reference(),
        EngineConfig::new().threads(1),
        EngineConfig::new().threads(2).layout(LayoutPolicy::Rcm),
        EngineConfig::new()
            .threads(8)
            .layout(LayoutPolicy::Rcm)
            .halo(true),
    ];
    let baseline = run_campaign(&envelopes[0], 90);
    // the baseline campaign is a real one: every wave detected by the
    // monitor and fully digested, the flood back at the true maximum
    assert_eq!(baseline.report.waves.len(), 3, "waves at 3, 33 and 63");
    assert_eq!(baseline.report.detected_waves(), 3);
    assert_eq!(baseline.report.quiesced_waves(), 3);
    assert_eq!(baseline.trace.len(), 90);
    assert!(baseline.states.iter().all(|&s| s == N as u64 - 1));
    for config in &envelopes[1..] {
        let replay = run_campaign(config, 90);
        assert_eq!(
            replay,
            baseline,
            "{} diverged from {}",
            config.describe(),
            envelopes[0].describe()
        );
    }
}

#[test]
fn every_async_backend_replays_the_same_campaign() {
    // batch 1 under the central round-robin daemon replays the sequential
    // asynchronous reference exactly — whatever the thread count
    let reference = EngineConfig::reference().asynchronous(Daemon::RoundRobin, 1);
    let baseline = run_campaign(&reference, 75);
    assert_eq!(baseline.report.waves.len(), 3);
    assert_eq!(baseline.trace.len(), 75);
    for threads in [1usize, 2, 8] {
        let config = EngineConfig::new()
            .threads(threads)
            .asynchronous(Daemon::RoundRobin, 1);
        let replay = run_campaign(&config, 75);
        assert_eq!(
            replay,
            baseline,
            "{} diverged from {}",
            config.describe(),
            reference.describe()
        );
    }
}

#[test]
fn wide_async_batches_replay_across_thread_counts() {
    // batch 16 makes each step a real concurrent slice (three sweeps of
    // the graph per wave period) — still one trace at every thread count
    let config_for = |threads: usize| {
        EngineConfig::new()
            .threads(threads)
            .asynchronous(Daemon::RoundRobin, 16)
    };
    let baseline = run_campaign(&config_for(1), 90);
    assert_eq!(baseline.report.waves.len(), 3, "waves at 3, 33 and 63");
    assert!(
        baseline.report.detected_waves() >= 1,
        "the monitor hears at least one wave within the budget"
    );
    for threads in [2usize, 8] {
        let replay = run_campaign(&config_for(threads), 90);
        assert_eq!(
            replay,
            baseline,
            "{} diverged from {}",
            config_for(threads).describe(),
            config_for(1).describe()
        );
    }
}

#[test]
fn a_recovered_panic_is_invisible_at_every_thread_count() {
    // the same campaign with a worker panic injected mid-run and retried
    // away must reproduce the clean run bit-for-bit — books, registers
    // and observer trace — on both sharded backends at 1/2/8 threads
    let envelopes: Vec<EngineConfig> = [1usize, 2, 8]
        .into_iter()
        .flat_map(|threads| {
            [
                EngineConfig::new().threads(threads),
                EngineConfig::new()
                    .threads(threads)
                    .asynchronous(Daemon::RoundRobin, 16),
            ]
        })
        .collect();
    for config in envelopes {
        let clean = run_campaign(&config, 75);
        let chaotic = run_campaign(
            &config
                .clone()
                .recovery(RecoveryPolicy::retries(2).backoff(Duration::from_millis(1)))
                .inject(InjectionSpec::panic_at(7, 0)),
            75,
        );
        assert_eq!(
            chaotic,
            clean,
            "recovery leaked into the deterministic trace of {}",
            config.describe()
        );
    }
}

#[test]
fn a_hung_worker_is_a_typed_timeout_not_a_deadlock() {
    // the watchdog guards the round barrier inside multi-round chunks, so
    // drive a chunked run: the stalled worker must surface the configured
    // limit as a typed error instead of hanging the barrier forever
    let watchdog = Duration::from_millis(50);
    let program = AlarmedFlood::new(0, N as u64 - 1);
    let graph = expander_graph(N, 4, 7);
    let config = EngineConfig::new()
        .threads(2)
        .recovery(RecoveryPolicy::retries(1).watchdog(watchdog))
        .inject(InjectionSpec::stall_at(2, 1, 400));
    let mut runner =
        ParallelSyncRunner::from_config(&program, graph, &config).expect("a valid stall envelope");
    match runner.try_run_rounds(6) {
        Err(PoolError::BarrierTimeout { timeout }) => {
            assert_eq!(timeout, watchdog, "the configured watchdog surfaced")
        }
        other => panic!("a hung worker must trip the watchdog, got {other:?}"),
    }
}
