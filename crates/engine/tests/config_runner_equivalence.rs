//! The one-engine-API equivalence suite: a `Box<dyn Runner>` built from
//! **every** `EngineConfig` combination (sync/async × 1/2/8 threads ×
//! Identity/Rcm × halo on/off) must be bit-for-bit equal to the matching
//! sequential reference runner — itself instantiated through the *same*
//! `EngineConfig` API ([`EngineConfig::reference`]) — and `RoundObserver`
//! callbacks must be deterministic across thread counts, layouts, halo
//! modes, pinning and telemetry modes (disabled / enabled / sampled
//! tracing).

use proptest::prelude::*;
use smst_engine::programs::{MinIdFlood, MonitorFlood};
use smst_engine::{ConfigError, EngineConfig, LayoutPolicy, PinPolicy, Runner, StopCondition};
use smst_graph::generators::{expander_graph, random_connected_graph};
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{Daemon, FaultPlan, RecordingObserver, TeeObserver};
use smst_telemetry::{Telemetry, TraceWriter};

fn graph_for(kind: bool, n: usize, seed: u64) -> WeightedGraph {
    if kind {
        expander_graph(n, 4, seed)
    } else {
        random_connected_graph(n, 5 * n / 2, seed)
    }
}

/// Every sharded synchronous envelope the satellite matrix names.
fn sync_envelopes() -> Vec<EngineConfig> {
    let mut configs = Vec::new();
    for threads in [1usize, 2, 8] {
        for layout in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
            for halo in [false, true] {
                configs.push(
                    EngineConfig::new()
                        .threads(threads)
                        .layout(layout)
                        .halo(halo),
                );
            }
        }
    }
    configs
}

/// Every sharded asynchronous envelope the satellite matrix names
/// (batch 1 replays the sequential reference; halo is sync-only by
/// validation, so the async matrix is threads × layout).
fn async_envelopes(daemon: Daemon, batch: usize) -> Vec<EngineConfig> {
    let mut configs = Vec::new();
    for threads in [1usize, 2, 8] {
        for layout in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
            configs.push(
                EngineConfig::new()
                    .threads(threads)
                    .layout(layout)
                    .asynchronous(daemon.clone(), batch),
            );
        }
    }
    configs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn every_sync_envelope_matches_the_reference_runner(
        kind in proptest::bool::ANY,
        n in 24usize..60,
        seed in 0u64..1000,
    ) {
        let g = graph_for(kind, n, seed);
        let program = MinIdFlood::new(0);
        let mut reference = EngineConfig::reference()
            .instantiate(&program, g.clone())
            .expect("the reference envelope is valid");
        let mut engines: Vec<(String, Box<dyn Runner<MinIdFlood>>)> = sync_envelopes()
            .into_iter()
            .map(|c| {
                (
                    c.describe(),
                    c.instantiate(&program, g.clone()).expect("valid envelope"),
                )
            })
            .collect();
        for round in 0..8 {
            let oracle = reference.states_snapshot();
            for (label, runner) in &mut engines {
                prop_assert_eq!(
                    &runner.states_snapshot(),
                    &oracle,
                    "round {}, {}",
                    round,
                    &*label
                );
                runner.step();
            }
            reference.step();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn every_async_envelope_replays_the_reference_daemon(
        kind in proptest::bool::ANY,
        n in 20usize..40,
        seed in 0u64..1000,
        daemon_seed in 0u64..64,
    ) {
        let g = graph_for(kind, n, seed);
        let program = MinIdFlood::new(0);
        let daemon = Daemon::Random { seed: daemon_seed, extra_factor: 1 };
        // batch width 1 is the sequential semantics: every sharded envelope
        // must replay the reference AsyncRunner register for register
        let mut reference = EngineConfig::reference()
            .asynchronous(daemon.clone(), 1)
            .instantiate(&program, g.clone())
            .expect("the reference envelope is valid");
        let mut engines: Vec<(String, Box<dyn Runner<MinIdFlood>>)> =
            async_envelopes(daemon.clone(), 1)
                .into_iter()
                .map(|c| {
                    (
                        c.describe(),
                        c.instantiate(&program, g.clone()).expect("valid envelope"),
                    )
                })
                .collect();
        for unit in 0..5 {
            let oracle = reference.states_snapshot();
            for (label, runner) in &mut engines {
                prop_assert_eq!(
                    &runner.states_snapshot(),
                    &oracle,
                    "unit {}, {}",
                    unit,
                    &*label
                );
                runner.step();
            }
            reference.step();
        }
        // wider batches have no sequential twin; they must agree with the
        // single-threaded identity-layout envelope of the same batch width
        let wide = EngineConfig::new().threads(1).asynchronous(daemon.clone(), 4);
        let mut wide_reference = wide.instantiate(&program, g.clone()).expect("valid");
        wide_reference.run_until(StopCondition::Steps, 5);
        for config in async_envelopes(daemon, 4) {
            let mut runner = config.instantiate(&program, g.clone()).expect("valid");
            runner.run_until(StopCondition::Steps, 5);
            prop_assert_eq!(
                &runner.states_snapshot(),
                &wide_reference.states_snapshot(),
                "{}",
                config.describe()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn observer_callbacks_are_deterministic_across_envelopes(
        n in 24usize..48,
        seed in 0u64..500,
    ) {
        // the monitor flood raises real alarms, so the observed alarm
        // counts are non-trivial; every sharded sync envelope (and the
        // sequential reference) must report the same deterministic
        // (round, alarms, activations) trace — halo_bytes legitimately
        // varies with shard geometry, so it is compared only within a
        // fixed envelope shape
        let g = graph_for(true, n, seed);
        let program = MonitorFlood::new(n as u64 - 1, n as u64 - 1);
        let plan = FaultPlan::random(n, 2, seed ^ 0x5EED);
        let mut traces = Vec::new();
        let mut configs = sync_envelopes();
        configs.push(EngineConfig::reference());
        configs.push(EngineConfig::new().threads(8).pin(PinPolicy::Cores));
        for config in configs {
            let recording = RecordingObserver::new();
            let mut runner = config.instantiate(&program, g.clone()).expect("valid");
            runner.set_observer(Box::new(recording.clone()));
            runner.run_until(StopCondition::Steps, 3);
            runner.apply_faults(&plan, &mut |_v, s| *s = MonitorFlood::BOGUS);
            runner.run_until(StopCondition::Steps, 6);
            let trace: Vec<(usize, usize, usize)> = recording
                .deterministic_trace()
                .into_iter()
                .map(|(round, alarms, activations, _halo_bytes)| (round, alarms, activations))
                .collect();
            prop_assert_eq!(trace.len(), 9, "{}", config.describe());
            traces.push((config.describe(), trace));
        }
        let (first_label, first) = &traces[0];
        for (label, trace) in &traces[1..] {
            prop_assert_eq!(
                trace,
                first,
                "observer trace of {} diverged from {}",
                &**label,
                &**first_label
            );
        }
    }
}

#[test]
fn telemetry_modes_never_change_the_deterministic_trace() {
    // telemetry is measurement, not computation: the deterministic
    // (round, alarms, activations) trace is identical with telemetry
    // disabled (no observer at all), enabled (counters + histograms), and
    // enabled with sampled round tracing — at every thread count
    let n = 40usize;
    let g = graph_for(true, n, 11);
    let program = MonitorFlood::new(n as u64 - 1, n as u64 - 1);
    let plan = FaultPlan::random(n, 2, 0x5EED);
    let trace_dir = std::env::temp_dir().join("smst_engine_telemetry_determinism");
    std::fs::create_dir_all(&trace_dir).expect("temp trace dir");
    let mut traces = Vec::new();
    for threads in [1usize, 2, 8] {
        for mode in ["disabled", "enabled", "sampled"] {
            let telemetry = match mode {
                "disabled" => Telemetry::disabled(),
                "enabled" => Telemetry::enabled(),
                // an explicit directory instead of the env gate: tests
                // must not mutate process-global environment
                _ => Telemetry::with_trace(
                    TraceWriter::create_in(&trace_dir, &format!("equiv_t{threads}"))
                        .expect("trace file"),
                    2,
                ),
            };
            assert_eq!(telemetry.is_enabled(), mode != "disabled");
            let label = format!("threads={threads};mode={mode}");
            let recording = RecordingObserver::new();
            let mut tee = TeeObserver::new().with(Box::new(recording.clone()));
            if let Some(observer) = telemetry.observer(&label) {
                tee.push(observer);
            }
            let mut runner = EngineConfig::new()
                .threads(threads)
                .instantiate(&program, g.clone())
                .expect("valid");
            runner.set_observer(Box::new(tee));
            runner.run_until(StopCondition::Steps, 3);
            runner.apply_faults(&plan, &mut |_v, s| *s = MonitorFlood::BOGUS);
            runner.run_until(StopCondition::Steps, 6);
            let trace: Vec<(usize, usize, usize)> = recording
                .deterministic_trace()
                .into_iter()
                .map(|(round, alarms, activations, _halo_bytes)| (round, alarms, activations))
                .collect();
            assert_eq!(trace.len(), 9, "{label}");
            telemetry.flush().expect("flushing the test trace");
            traces.push((label, trace));
        }
    }
    let (first_label, first) = traces[0].clone();
    for (label, trace) in &traces[1..] {
        assert_eq!(trace, &first, "{label} diverged from {first_label}");
    }
}

#[test]
fn halo_bytes_are_reported_and_layout_sensitive() {
    // a multi-shard halo run reports nonzero exchanged bytes per round;
    // RCM packs neighbours so its halos are strictly smaller on the
    // expander (the PR 4 geometry result, now visible through the
    // observer instead of runner internals)
    let g = expander_graph(2000, 8, 5);
    let program = MinIdFlood::new(0);
    let mut per_layout = Vec::new();
    for layout in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
        let recording = RecordingObserver::new();
        let mut runner = EngineConfig::new()
            .threads(4)
            .layout(layout)
            .halo(true)
            .instantiate(&program, g.clone())
            .expect("valid");
        runner.set_observer(Box::new(recording.clone()));
        runner.run_until(StopCondition::Steps, 3);
        let stats = recording.stats();
        assert_eq!(stats.len(), 3);
        assert!(
            stats.iter().all(|s| s.halo_bytes > 0),
            "halo mode must report exchanged bytes"
        );
        assert!(
            stats.windows(2).all(|w| w[0].halo_bytes == w[1].halo_bytes),
            "halo geometry is static across rounds"
        );
        per_layout.push(stats[0].halo_bytes);
    }
    assert!(
        per_layout[1] < per_layout[0],
        "RCM must exchange strictly fewer halo bytes than identity ({} vs {})",
        per_layout[1],
        per_layout[0]
    );
}

#[test]
fn invalid_envelopes_surface_as_config_errors() {
    let g = expander_graph(16, 4, 1);
    let program = MinIdFlood::new(0);
    let cases: Vec<(EngineConfig, ConfigError)> = vec![
        (EngineConfig::new().threads(0), ConfigError::ZeroThreads),
        (
            EngineConfig::new()
                .asynchronous(Daemon::RoundRobin, 2)
                .halo(true),
            ConfigError::HaloRequiresSync,
        ),
        (
            EngineConfig::reference().threads(8),
            ConfigError::ReferenceKnob("threads > 1"),
        ),
        (
            EngineConfig::reference().asynchronous(Daemon::RoundRobin, 2),
            ConfigError::ReferenceNeedsCentralDaemon,
        ),
    ];
    for (config, expected) in cases {
        match config.instantiate(&program, g.clone()) {
            Err(err) => assert_eq!(err, expected),
            Ok(_) => panic!("{} must not instantiate", config.describe()),
        }
    }
}

#[test]
fn dyn_runners_expose_the_full_driving_surface() {
    // fault injection, stop conditions, reports and network interop all
    // work uniformly through the trait object, whatever the path
    let g = random_connected_graph(30, 75, 9);
    let program = MinIdFlood::new(0);
    for config in [
        EngineConfig::reference(),
        EngineConfig::new().threads(4).halo(true),
        EngineConfig::new()
            .threads(4)
            .asynchronous(Daemon::RoundRobin, 8),
    ] {
        let mut runner = config.instantiate(&program, g.clone()).expect("valid");
        runner
            .run_until(StopCondition::AllAccept, 200)
            .expect("the flood converges");
        let plan = FaultPlan::random(30, 5, 3);
        runner.apply_faults(&plan, &mut |_v, s| *s = u64::MAX);
        assert!(!runner.all_accept(), "{}", config.describe());
        runner
            .run_until(StopCondition::AllAccept, 200)
            .expect("the flood heals");
        let report = runner.report();
        assert_eq!(report.node_count, 30);
        assert!(report.steps > 0 && report.activations >= report.steps);
        assert_eq!(*runner.state(NodeId(7)), 0);
        let network = runner.into_network();
        assert!(network.states().iter().all(|&s| s == 0));
    }
}
