//! Property tests for PR 2's pool + layout pass: the pool-based runners
//! must be **bit-identical** to PR 1's scoped-thread results — which were
//! themselves pinned bit-identical to the sequential runners, so the
//! sequential runners remain the oracle — at 1/2/8 threads, with the RCM
//! layout on and off; and the RCM renumbering must round-trip node ids on
//! random and expander graphs.

use proptest::prelude::*;
use smst_engine::layout::mean_bandwidth;
use smst_engine::programs::MinIdFlood;
use smst_engine::{
    CsrTopology, EngineConfig, Layout, LayoutPolicy, ParallelSyncRunner, ShardedAsyncRunner,
};
use smst_graph::generators::{expander_graph, random_connected_graph};
use smst_graph::WeightedGraph;
use smst_sim::{AsyncRunner, Daemon, Network, SyncRunner};

fn graph_for(kind: bool, n: usize, seed: u64) -> WeightedGraph {
    if kind {
        // circulant expanders need an even degree >= 2 and n > degree
        expander_graph(n.max(8), 4, seed)
    } else {
        random_connected_graph(n, 3 * n, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn pool_sync_runner_is_bit_identical_to_sequential(
        expander in proptest::bool::ANY,
        n in 8usize..40,
        seed in 0u64..1000,
        rounds in 1usize..10,
    ) {
        let g = graph_for(expander, n, seed);
        let program = MinIdFlood::new(0);
        let mut seq = SyncRunner::new(&program, Network::new(&program, g.clone()));
        seq.run_rounds(rounds);
        for threads in [1usize, 2, 8] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let config = EngineConfig::new().threads(threads).layout(policy);
                let mut par = ParallelSyncRunner::from_config(&program, g.clone(), &config)
                    .expect("a valid sharded sync envelope");
                par.run_rounds(rounds);
                let snapshot = par.states_snapshot();
                prop_assert_eq!(
                    snapshot.as_slice(),
                    seq.network().states(),
                    "threads {}, {:?}", threads, policy
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn pool_async_runner_replays_the_central_daemon(
        expander in proptest::bool::ANY,
        n in 8usize..30,
        seed in 0u64..1000,
        daemon_seed in 0u64..100,
        units in 1usize..5,
    ) {
        let g = graph_for(expander, n, seed);
        let program = MinIdFlood::new(0);
        let daemon = Daemon::Random { seed: daemon_seed, extra_factor: 1 };
        let mut seq = AsyncRunner::new(&program, Network::new(&program, g.clone()), daemon.clone());
        seq.run_time_units(units);
        for threads in [1usize, 2, 8] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let config = EngineConfig::new()
                    .asynchronous(daemon.clone(), 1)
                    .threads(threads)
                    .layout(policy);
                let mut par = ShardedAsyncRunner::from_config(&program, g.clone(), &config)
                    .expect("a valid sharded async envelope");
                par.run_time_units(units);
                let snapshot = par.states_snapshot();
                prop_assert_eq!(
                    snapshot.as_slice(),
                    seq.network().states(),
                    "threads {}, {:?}", threads, policy
                );
                prop_assert_eq!(par.activations(), seq.activations());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn batched_async_outcomes_are_thread_and_layout_invariant(
        expander in proptest::bool::ANY,
        n in 10usize..40,
        seed in 0u64..1000,
        batch in 2usize..40,
        units in 1usize..4,
    ) {
        let g = graph_for(expander, n, seed);
        let program = MinIdFlood::new(0);
        let daemon = Daemon::Random { seed: seed ^ 0x5a, extra_factor: 1 };
        let reference_config = EngineConfig::new().asynchronous(daemon.clone(), batch);
        let mut reference =
            ShardedAsyncRunner::from_config(&program, g.clone(), &reference_config)
                .expect("a valid sharded async envelope");
        reference.run_time_units(units);
        for threads in [2usize, 8] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let config = EngineConfig::new()
                    .asynchronous(daemon.clone(), batch)
                    .threads(threads)
                    .layout(policy);
                let mut runner = ShardedAsyncRunner::from_config(&program, g.clone(), &config)
                    .expect("a valid sharded async envelope");
                runner.run_time_units(units);
                prop_assert_eq!(
                    runner.states_snapshot(),
                    reference.states_snapshot(),
                    "batch {}, threads {}, {:?}", batch, threads, policy
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn rcm_round_trips_node_ids(
        expander in proptest::bool::ANY,
        n in 8usize..80,
        seed in 0u64..1000,
    ) {
        let g = graph_for(expander, n, seed);
        let topo = CsrTopology::build(&g);
        let layout = Layout::rcm(&topo);
        let count = topo.node_count();
        for v in 0..count {
            prop_assert_eq!(layout.original(layout.internal(v)), v);
            prop_assert_eq!(layout.internal(layout.original(v)), v);
        }
        // the renumbered CSR maps every port through the same bijection
        let permuted = layout.apply(&topo);
        for v in 0..count {
            let expected: Vec<u32> = topo
                .neighbors_of(v)
                .iter()
                .map(|&u| layout.internal(u as usize) as u32)
                .collect();
            prop_assert_eq!(permuted.neighbors_of(layout.internal(v)), expected.as_slice());
        }
        // and a data round-trip through permute/unpermute is the identity
        let data: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(layout.unpermute(layout.permute(data.clone())), data);
    }
}

#[test]
fn rcm_reduces_bandwidth_on_expanders() {
    // not a property (RCM is a heuristic), but on the fixed benchmark
    // expander the bandwidth win is what the layout pass exists for
    let g = expander_graph(2000, 8, 5);
    let topo = CsrTopology::build(&g);
    let before = mean_bandwidth(&topo);
    let after = mean_bandwidth(&Layout::rcm(&topo).apply(&topo));
    assert!(
        after < before,
        "RCM should cut index bandwidth on the expander: {before:.1} -> {after:.1}"
    );
}
