//! One engine configuration: the full execution envelope behind every
//! runner, validated up front.
//!
//! [`EngineConfig`] captures everything that selects *how* a program is
//! executed — [`Backend`] (sharded engine or sequential reference),
//! [`Mode`] (synchronous rounds or daemon-driven asynchrony), worker
//! threads, [`LayoutPolicy`], [`PinPolicy`], the halo-exchange flag and a
//! seed — in one builder. [`EngineConfig::validate`] rejects inconsistent
//! envelopes with a typed [`ConfigError`] (zero threads, halo outside the
//! synchronous sharded mode, sharded-only knobs on the reference backend)
//! **before** anything reaches the worker pool, and
//! [`EngineConfig::instantiate`] builds the matching execution path as a
//! `Box<dyn Runner<P>>` — all four runners behind one call.
//!
//! Before this module, every knob (threads, layout, pinning, halo, batch
//! daemons) was re-threaded by hand through `ScenarioSpec`, the adapters,
//! the bench sweeps and the adversary campaign; a new knob meant five call
//! sites. Now those layers hold an `EngineConfig` and new knobs are added
//! here once.
//!
//! Observability is deliberately **not** part of the envelope: every knob
//! here selects semantics or placement, while measurement is attached
//! after instantiation via [`Runner::set_observer`] (e.g. a
//! `RecordingObserver`, or the telemetry crate's sinks) and never changes
//! results.
//!
//! ```
//! use smst_engine::{EngineConfig, LayoutPolicy, StopCondition};
//! use smst_engine::programs::MinIdFlood;
//! use smst_graph::generators::ring_graph;
//!
//! let program = MinIdFlood::new(0);
//! let config = EngineConfig::new().threads(4).layout(LayoutPolicy::Rcm);
//! let mut runner = config
//!     .instantiate(&program, ring_graph(64, 7))
//!     .expect("a valid config");
//! runner.run_until(StopCondition::AllAccept, 1_000).unwrap();
//! assert!(runner.all_accept());
//! ```

use crate::layout::LayoutPolicy;
use crate::parallel_sync::ParallelSyncRunner;
use crate::pool::{PinPolicy, PoolError};
use crate::runner::Runner;
use crate::sharded_async::ShardedAsyncRunner;
use smst_graph::WeightedGraph;
use smst_sim::{AsyncRunner, BatchDaemon, ChunkedDaemon, Daemon, Network, NodeProgram, SyncRunner};
use std::time::Duration;

/// Which implementation family executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The sequential reference runners of `smst-sim`
    /// ([`SyncRunner`] / [`AsyncRunner`]): the semantic ground truth the
    /// sharded engine is pinned against. Single-threaded by definition —
    /// sharded-only knobs (threads > 1, layout, pinning, halo) are
    /// rejected by [`EngineConfig::validate`].
    Reference,
    /// The sharded parallel engine
    /// ([`ParallelSyncRunner`] / [`ShardedAsyncRunner`]): bit-for-bit
    /// equal to the reference at any thread count.
    Sharded,
    /// The distributed engine: each shard runs in a worker **process**
    /// connected over a socket, the coordinator drives rounds through the
    /// same [`Runner`] trait (bit-for-bit equal to [`Backend::Sharded`]).
    /// Synchronous only; `threads` must equal `peers`, pinning is a worker
    /// concern the wire cannot honor. The execution path lives in the
    /// `smst-net` crate and is registered per program type via
    /// [`register_remote_factory`] (e.g. `smst_net::install_stock()`) —
    /// instantiating an unregistered program fails with
    /// [`ConfigError::RemoteUnavailable`].
    Remote {
        /// Worker processes the graph is partitioned across.
        peers: usize,
    },
}

/// The schedule a configuration runs under.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Lock-step synchronous rounds.
    Sync,
    /// Daemon-driven asynchrony.
    Async(DaemonConfig),
}

impl Mode {
    /// `true` for the asynchronous mode.
    pub fn is_async(&self) -> bool {
        matches!(self, Mode::Async(_))
    }

    fn describe(&self) -> String {
        match self {
            Mode::Sync => "sync".to_string(),
            Mode::Async(daemon) => format!("async[{}]", daemon.describe()),
        }
    }
}

/// The daemon of an asynchronous configuration.
#[derive(Debug, Clone)]
pub enum DaemonConfig {
    /// A central [`Daemon`] executed in uniform chunks of `batch`
    /// simultaneous activations (`batch == 1` is the sequential reference
    /// semantics).
    Central {
        /// The central daemon.
        daemon: Daemon,
        /// Simultaneous activations per batch.
        batch: usize,
    },
    /// Any [`BatchDaemon`] — the fully general distributed daemon
    /// (adversarial batch daemons included). Only the sharded backend can
    /// execute it.
    Batch(Box<dyn BatchDaemon>),
}

impl DaemonConfig {
    /// Instantiates the boxed batch daemon this configuration describes.
    pub fn build(&self) -> Box<dyn BatchDaemon> {
        match self {
            DaemonConfig::Central { daemon, batch } => {
                Box::new(ChunkedDaemon::new(daemon.clone(), *batch))
            }
            DaemonConfig::Batch(daemon) => daemon.clone(),
        }
    }

    /// A short descriptor for labels and artifacts.
    pub fn describe(&self) -> String {
        match self {
            DaemonConfig::Central { daemon, batch } => {
                format!("{}@batch={batch}", daemon.describe())
            }
            DaemonConfig::Batch(daemon) => daemon.describe(),
        }
    }
}

/// Why an [`EngineConfig`] cannot be instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads == 0`: there is no zero-worker execution. (Previously a
    /// silent clamp to 1 deep in the runner constructors.)
    ZeroThreads,
    /// The halo-exchange mode is defined only for synchronous schedules —
    /// asynchronous batches are not shard-aligned.
    HaloRequiresSync,
    /// A sharded-only knob (named in the payload) was set on the
    /// sequential [`Backend::Reference`].
    ReferenceKnob(&'static str),
    /// [`Backend::Reference`] executes only a central daemon at batch
    /// width 1 (the [`AsyncRunner`] semantics).
    ReferenceNeedsCentralDaemon,
    /// A typed constructor was handed a config for a different execution
    /// path (e.g. [`ParallelSyncRunner::from_config`] with an
    /// asynchronous config).
    WrongMode {
        /// What the constructor executes.
        expected: &'static str,
        /// What the config describes.
        got: String,
    },
    /// A knob (named in the payload) the wire protocol cannot honor was
    /// set on [`Backend::Remote`] (asynchronous schedules, worker
    /// pinning, an empty peer set).
    RemoteKnob(&'static str),
    /// [`Backend::Remote`] requires `threads == peers`: every peer is a
    /// worker process, there is no second level of parallelism to size.
    RemotePeerMismatch {
        /// The configured peer set size.
        peers: usize,
        /// The configured thread count.
        threads: usize,
    },
    /// No remote execution path is registered for this program type —
    /// [`Backend::Remote`] needs a [`register_remote_factory`] call first
    /// (the `smst-net` crate's `install_stock()` registers the stock
    /// workloads).
    RemoteUnavailable {
        /// The program's name.
        program: String,
    },
    /// Spawning or handshaking the remote worker set failed (worker
    /// binary missing, socket error, wire-version mismatch).
    RemoteSetup(String),
    /// A barrier watchdog was configured on a backend whose schedule
    /// ignores it (named in the payload) — a silently inert watchdog is a
    /// misconfiguration, not a default.
    InertWatchdog(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "threads must be >= 1 (got 0)"),
            ConfigError::HaloRequiresSync => {
                write!(f, "halo exchange requires the synchronous sharded mode")
            }
            ConfigError::ReferenceKnob(knob) => write!(
                f,
                "the sequential reference backend does not support {knob}"
            ),
            ConfigError::ReferenceNeedsCentralDaemon => write!(
                f,
                "the sequential reference backend runs only a central daemon at batch width 1"
            ),
            ConfigError::WrongMode { expected, got } => {
                write!(f, "this constructor executes {expected} configs, got {got}")
            }
            ConfigError::RemoteKnob(knob) => {
                write!(f, "the remote backend does not support {knob}")
            }
            ConfigError::RemotePeerMismatch { peers, threads } => write!(
                f,
                "the remote backend requires threads == peers (got {threads} threads for {peers} peers)"
            ),
            ConfigError::RemoteUnavailable { program } => write!(
                f,
                "no remote execution path is registered for program {program:?} \
                 (call smst_net::install_stock() or register_remote_factory first)"
            ),
            ConfigError::RemoteSetup(message) => {
                write!(f, "remote worker setup failed: {message}")
            }
            ConfigError::InertWatchdog(backend) => write!(
                f,
                "a barrier watchdog is configured but {backend} ignores it"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any failure of the engine's fallible driving surface
/// ([`Runner::try_step`] /
/// [`Runner::try_run_until`] and the
/// [`ScenarioSpec`](crate::ScenarioSpec) façade): either the envelope was
/// inconsistent ([`ConfigError`]) or the pooled execution failed at run
/// time ([`PoolError`] — a worker panic that exhausted its
/// [`RecoveryPolicy`], or a barrier watchdog timeout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The envelope failed validation.
    Config(ConfigError),
    /// The pooled execution failed at run time.
    Pool(PoolError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(err) => write!(f, "{err}"),
            EngineError::Pool(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(err) => Some(err),
            EngineError::Pool(err) => Some(err),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(err: ConfigError) -> Self {
        EngineError::Config(err)
    }
}

impl From<PoolError> for EngineError {
    fn from(err: PoolError) -> Self {
        EngineError::Pool(err)
    }
}

/// Supervised recovery for the sharded runners: how a run responds when a
/// worker panics or hangs mid-epoch.
///
/// The default policy (`max_retries == 0`, no backoff, no watchdog) is
/// exactly the pre-recovery behaviour: the first worker panic surfaces as
/// an error (through [`Runner::try_step`]) or an
/// unwind (through the panicking convenience surface) and the run is over.
/// With `max_retries > 0` the runner snapshots its registers before every
/// step chunk, and on a worker panic restores the snapshot, sleeps the
/// (exponentially doubling) backoff, and replays the chunk — a successful
/// retry is **bit-for-bit invisible** in the deterministic trace, because
/// the replay starts from the exact pre-chunk registers.
///
/// `watchdog_timeout` arms the round-barrier watchdog of the synchronous
/// sharded runner: a part that fails to reach a round barrier within the
/// timeout turns into [`PoolError::BarrierTimeout`] instead of a deadlock.
/// Timeouts are never retried — a hung worker is a liveness bug, not a
/// transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryPolicy {
    /// How many times a panicked step chunk is replayed before the error
    /// surfaces (0 = fail on the first panic).
    pub max_retries: u32,
    /// Base sleep before a replay; doubles on every further retry of the
    /// same chunk (`backoff`, `2·backoff`, `4·backoff`, …).
    pub backoff: Duration,
    /// Round-barrier watchdog: `Some(t)` poisons a barrier whose laggard
    /// has not arrived after `t`. Supported by the synchronous sharded
    /// runner (its round barrier) and the remote backend (the
    /// coordinator's per-round reply deadline);
    /// [`EngineConfig::validate`] rejects a watchdog on any backend that
    /// would ignore it ([`ConfigError::InertWatchdog`]). `None` waits
    /// forever, as before.
    pub watchdog_timeout: Option<Duration>,
}

impl RecoveryPolicy {
    /// The do-nothing policy (fail on first panic, no watchdog).
    pub fn none() -> Self {
        Self::default()
    }

    /// A policy that replays a panicked chunk up to `max_retries` times
    /// (no backoff, no watchdog — add them with the builders).
    pub fn retries(max_retries: u32) -> Self {
        RecoveryPolicy {
            max_retries,
            ..Self::default()
        }
    }

    /// Sets the base backoff slept before a replay (doubles per retry).
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Arms the round-barrier watchdog.
    pub fn watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog_timeout = Some(timeout);
        self
    }

    /// `true` for the default do-nothing policy.
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }

    /// The sleep before retry number `attempt` (1-based): the base backoff
    /// doubled per prior retry, saturating.
    pub(crate) fn backoff_before(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff.saturating_mul(factor)
    }
}

/// What a chaos injection does to its target part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionKind {
    /// The part panics (`panic!`) — exercised by the
    /// [`RecoveryPolicy`] retry path.
    Panic,
    /// The part sleeps this many milliseconds before computing — exercised
    /// by the barrier watchdog. Meaningful on the synchronous sharded
    /// backend (the watchdog lives in its round barrier); elsewhere it only
    /// delays.
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// A one-shot worker fault injection for chaos tests and campaigns: at
/// step `step` (synchronous round or asynchronous time unit), part `part`
/// of the sharded execution misbehaves per
/// [`kind`](InjectionSpec::kind) — **exactly once**. The trigger disarms
/// when it fires, so a [`RecoveryPolicy`] replay of the same step runs
/// clean and the recovered trace is bit-for-bit identical to an uninjected
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionSpec {
    /// What the injection does.
    pub kind: InjectionKind,
    /// The step (round / time unit) the injection fires at.
    pub step: usize,
    /// The part (shard / batch piece) the injection fires in.
    pub part: usize,
}

impl InjectionSpec {
    /// A one-shot worker panic at `(step, part)`.
    pub fn panic_at(step: usize, part: usize) -> Self {
        InjectionSpec {
            kind: InjectionKind::Panic,
            step,
            part,
        }
    }

    /// A one-shot worker stall of `millis` milliseconds at `(step, part)`.
    pub fn stall_at(step: usize, part: usize, millis: u64) -> Self {
        InjectionSpec {
            kind: InjectionKind::Stall { millis },
            step,
            part,
        }
    }
}

/// The armed runtime form of an [`InjectionSpec`]: shared by every part of
/// a dispatch, fires at most once across the whole run (retries included).
#[derive(Debug)]
pub(crate) struct ArmedInjection {
    spec: InjectionSpec,
    armed: std::sync::atomic::AtomicBool,
}

impl ArmedInjection {
    pub(crate) fn new(spec: InjectionSpec) -> Self {
        ArmedInjection {
            spec,
            armed: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Fires the injection iff `(step, part)` match and it has not fired
    /// yet. Called from worker threads inside the compute phase; the
    /// one-shot swap is what keeps a recovered replay clean.
    pub(crate) fn maybe_fire(&self, step: usize, part: usize) {
        if step != self.spec.step || part != self.spec.part {
            return;
        }
        // relaxed is enough: the flag is monotone (true -> false) and the
        // pool's dispatch protocol orders the retry after the panic
        if !self.armed.swap(false, std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        match self.spec.kind {
            InjectionKind::Panic => {
                panic!("injected chaos panic (step {step}, part {part})")
            }
            InjectionKind::Stall { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
    }
}

/// The constructor a remote execution path registers for one program type:
/// builds the [`Backend::Remote`] runner from the program, the graph and
/// the validated envelope. A plain `fn` pointer — the registry stores it
/// type-erased and [`EngineConfig::instantiate`] recovers it by
/// `TypeId`.
pub type RemoteFactory<P> =
    for<'p> fn(&'p P, WeightedGraph, &EngineConfig) -> Result<Box<dyn Runner<P> + 'p>, ConfigError>;

/// The process-wide registry mapping program types to their remote
/// execution path: `TypeId::of::<P>()` → the monomorphic
/// [`RemoteFactory<P>`] fn pointer, type-erased behind `Any`.
static REMOTE_FACTORIES: std::sync::Mutex<
    Vec<(std::any::TypeId, Box<dyn std::any::Any + Send + Sync>)>,
> = std::sync::Mutex::new(Vec::new());

/// Registers (or replaces) the [`Backend::Remote`] execution path for one
/// program type. The engine crate stays socket-free: the `smst-net` crate
/// registers every wire-capable program (`smst_net::install_stock()`) and
/// [`EngineConfig::instantiate`] dispatches through this registry —
/// instantiating an unregistered program fails with
/// [`ConfigError::RemoteUnavailable`].
pub fn register_remote_factory<P>(factory: RemoteFactory<P>)
where
    P: NodeProgram + 'static,
{
    let mut registry = REMOTE_FACTORIES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let key = std::any::TypeId::of::<P>();
    if let Some(slot) = registry.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = Box::new(factory);
    } else {
        registry.push((key, Box::new(factory)));
    }
}

/// The registered remote execution path for `P`, if any.
fn remote_factory<P>() -> Option<RemoteFactory<P>>
where
    P: NodeProgram + 'static,
{
    let registry = REMOTE_FACTORIES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let key = std::any::TypeId::of::<P>();
    registry
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, factory)| factory.downcast_ref::<RemoteFactory<P>>())
        .copied()
}

/// The full execution envelope of one run. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Implementation family (sharded engine or sequential reference).
    pub backend: Backend,
    /// Synchronous rounds or daemon-driven asynchrony.
    pub mode: Mode,
    /// Worker threads (validated ≥ 1; purely wall-clock).
    pub threads: usize,
    /// Node renumbering applied before sharding (wall-clock only; results
    /// are layout-invariant).
    pub layout: LayoutPolicy,
    /// Worker core pinning (wall-clock only; results are
    /// placement-invariant).
    pub pin: PinPolicy,
    /// Halo-exchange execution mode (synchronous sharded schedules only;
    /// wall-clock only).
    pub halo: bool,
    /// The workload seed the envelope carries for reproducibility
    /// bookkeeping: it names the run in [`describe`](Self::describe) /
    /// artifact labels, and the [`ScenarioSpec`](crate::ScenarioSpec)
    /// façade keeps its graph seed in sync with it. The runners themselves
    /// never read it — execution randomness lives in the daemon seeds.
    pub seed: u64,
    /// Supervised recovery: retry-with-backoff for panicked step chunks
    /// and the round-barrier watchdog. The default policy is the exact
    /// pre-recovery behaviour (fail on first panic, wait forever).
    /// Sharded-backend only; results are recovery-invariant.
    pub recovery: RecoveryPolicy,
    /// A one-shot chaos injection (worker panic or stall) for tests and
    /// campaigns. Sharded-backend only; with a sufficient
    /// [`recovery`](Self::recovery) policy, results are
    /// injection-invariant.
    pub injection: Option<InjectionSpec>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineConfig {
    /// A synchronous, single-threaded sharded configuration with no layout
    /// pass, no pinning and no halo exchange.
    pub fn new() -> Self {
        EngineConfig {
            backend: Backend::Sharded,
            mode: Mode::Sync,
            threads: 1,
            layout: LayoutPolicy::Identity,
            pin: PinPolicy::None,
            halo: false,
            seed: 0,
            recovery: RecoveryPolicy::default(),
            injection: None,
        }
    }

    /// [`EngineConfig::new`] on the sequential [`Backend::Reference`] —
    /// the oracle configuration equivalence tests drive through the same
    /// API as the engine under test.
    pub fn reference() -> Self {
        EngineConfig {
            backend: Backend::Reference,
            ..Self::new()
        }
    }

    /// [`EngineConfig::new`] on [`Backend::Remote`] with `peers` worker
    /// processes (`threads` set to match, as validation requires).
    pub fn remote(peers: usize) -> Self {
        EngineConfig {
            backend: Backend::Remote { peers },
            threads: peers,
            ..Self::new()
        }
    }

    /// Sets the backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Switches to the synchronous mode.
    pub fn sync(mut self) -> Self {
        self.mode = Mode::Sync;
        self
    }

    /// Switches to an asynchronous schedule: a central [`Daemon`] executed
    /// in uniform chunks of `batch` simultaneous activations.
    pub fn asynchronous(mut self, daemon: Daemon, batch: usize) -> Self {
        self.mode = Mode::Async(DaemonConfig::Central { daemon, batch });
        self
    }

    /// Switches to an asynchronous schedule under **any** [`BatchDaemon`]
    /// (e.g. the adversarial batch daemons of `smst-adversary`).
    pub fn batch_daemon(mut self, daemon: Box<dyn BatchDaemon>) -> Self {
        self.mode = Mode::Async(DaemonConfig::Batch(daemon));
        self
    }

    /// Sets the worker-thread count. `0` is **not** clamped — it fails
    /// [`validate`](Self::validate) with [`ConfigError::ZeroThreads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the layout policy (RCM renumbering before sharding).
    pub fn layout(mut self, layout: LayoutPolicy) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the worker pin policy (best-effort core affinity).
    pub fn pin(mut self, pin: PinPolicy) -> Self {
        self.pin = pin;
        self
    }

    /// Switches the halo-exchange execution mode on or off (synchronous
    /// sharded schedules only — anything else fails
    /// [`validate`](Self::validate)).
    pub fn halo(mut self, halo: bool) -> Self {
        self.halo = halo;
        self
    }

    /// Sets the envelope seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the [`RecoveryPolicy`] (sharded backend only).
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Arms a one-shot chaos [`InjectionSpec`] (sharded backend only).
    pub fn inject(mut self, injection: InjectionSpec) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Checks the envelope for consistency. Every constructor consuming an
    /// `EngineConfig` validates first, so invalid knob combinations
    /// surface here as typed [`ConfigError`]s instead of panics (or silent
    /// clamps) deep in dispatch.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.halo && self.mode.is_async() {
            return Err(ConfigError::HaloRequiresSync);
        }
        // a watchdog lives in the synchronous sharded round barrier and the
        // remote coordinator's reply deadline; every other schedule would
        // silently ignore it — reject instead (see ROADMAP PR 7 follow-up)
        if self.recovery.watchdog_timeout.is_some() {
            match (self.backend, &self.mode) {
                (Backend::Sharded, Mode::Async(_)) => {
                    return Err(ConfigError::InertWatchdog(
                        "the asynchronous sharded backend",
                    ));
                }
                (Backend::Remote { .. }, _) | (Backend::Sharded, Mode::Sync) => {}
                (Backend::Reference, _) => {} // rejected below with every recovery knob
            }
        }
        if let Backend::Remote { peers } = self.backend {
            if peers == 0 {
                return Err(ConfigError::RemoteKnob("an empty peer set"));
            }
            if self.mode.is_async() {
                return Err(ConfigError::RemoteKnob("asynchronous schedules"));
            }
            if self.pin != PinPolicy::None {
                return Err(ConfigError::RemoteKnob("worker pinning"));
            }
            if self.threads != peers {
                return Err(ConfigError::RemotePeerMismatch {
                    peers,
                    threads: self.threads,
                });
            }
        }
        if self.backend == Backend::Reference {
            if self.threads > 1 {
                return Err(ConfigError::ReferenceKnob("threads > 1"));
            }
            if self.layout != LayoutPolicy::Identity {
                return Err(ConfigError::ReferenceKnob("a layout policy"));
            }
            if self.pin != PinPolicy::None {
                return Err(ConfigError::ReferenceKnob("worker pinning"));
            }
            if self.halo {
                return Err(ConfigError::ReferenceKnob("halo exchange"));
            }
            if !self.recovery.is_none() {
                return Err(ConfigError::ReferenceKnob("a recovery policy"));
            }
            if self.injection.is_some() {
                return Err(ConfigError::ReferenceKnob("chaos injection"));
            }
            if let Mode::Async(daemon) = &self.mode {
                match daemon {
                    DaemonConfig::Central { batch: 1, .. } => {}
                    _ => return Err(ConfigError::ReferenceNeedsCentralDaemon),
                }
            }
        }
        Ok(())
    }

    /// A short, stable descriptor of the envelope (for labels, bench meta
    /// and artifacts), e.g. `sharded-sync(threads=4,layout=Rcm,halo)`.
    pub fn describe(&self) -> String {
        let backend = match self.backend {
            Backend::Reference => "reference",
            Backend::Sharded => "sharded",
            Backend::Remote { .. } => "remote",
        };
        let mut knobs = format!("threads={}", self.threads);
        if self.layout != LayoutPolicy::Identity {
            knobs.push_str(&format!(",layout={:?}", self.layout));
        }
        if self.pin != PinPolicy::None {
            knobs.push_str(",pin");
        }
        if self.halo {
            knobs.push_str(",halo");
        }
        if self.seed != 0 {
            knobs.push_str(&format!(",seed={}", self.seed));
        }
        format!("{backend}-{}({knobs})", self.mode.describe())
    }

    /// Builds the execution path this envelope describes over `graph`,
    /// with every register initialized by `program.init` — any of the four
    /// runners, behind one object-safe [`Runner`].
    ///
    /// Fails with the [`ConfigError`] of [`validate`](Self::validate) on
    /// an inconsistent envelope; never panics on configuration problems.
    pub fn instantiate<'p, P>(
        &self,
        program: &'p P,
        graph: WeightedGraph,
    ) -> Result<Box<dyn Runner<P> + 'p>, ConfigError>
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
    {
        self.validate()?;
        Ok(match (self.backend, &self.mode) {
            (Backend::Sharded, Mode::Sync) => {
                Box::new(ParallelSyncRunner::from_config(program, graph, self)?)
            }
            (Backend::Sharded, Mode::Async(_)) => {
                Box::new(ShardedAsyncRunner::from_config(program, graph, self)?)
            }
            (Backend::Remote { .. }, Mode::Sync) => {
                let factory =
                    remote_factory::<P>().ok_or_else(|| ConfigError::RemoteUnavailable {
                        program: program.name().to_string(),
                    })?;
                factory(program, graph, self)?
            }
            (Backend::Remote { .. }, Mode::Async(_)) => {
                unreachable!("validate rejects asynchronous remote envelopes")
            }
            (Backend::Reference, Mode::Sync) => {
                Box::new(SyncRunner::new(program, Network::new(program, graph)))
            }
            (Backend::Reference, Mode::Async(daemon)) => {
                let DaemonConfig::Central { daemon, .. } = daemon else {
                    unreachable!("validate rejects non-central reference daemons");
                };
                Box::new(AsyncRunner::new(
                    program,
                    Network::new(program, graph),
                    daemon.clone(),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::MinIdFlood;
    use crate::runner::StopCondition;
    use smst_graph::generators::{expander_graph, path_graph};

    #[test]
    fn invalid_configs_are_typed_errors_not_panics() {
        assert_eq!(
            EngineConfig::new().threads(0).validate(),
            Err(ConfigError::ZeroThreads)
        );
        assert_eq!(
            EngineConfig::new()
                .asynchronous(Daemon::RoundRobin, 4)
                .halo(true)
                .validate(),
            Err(ConfigError::HaloRequiresSync)
        );
        assert_eq!(
            EngineConfig::reference().threads(2).validate(),
            Err(ConfigError::ReferenceKnob("threads > 1"))
        );
        assert_eq!(
            EngineConfig::reference()
                .layout(LayoutPolicy::Rcm)
                .validate(),
            Err(ConfigError::ReferenceKnob("a layout policy"))
        );
        assert_eq!(
            EngineConfig::reference().halo(true).validate(),
            Err(ConfigError::ReferenceKnob("halo exchange"))
        );
        assert_eq!(
            EngineConfig::reference()
                .asynchronous(Daemon::RoundRobin, 2)
                .validate(),
            Err(ConfigError::ReferenceNeedsCentralDaemon)
        );
        assert_eq!(
            EngineConfig::reference()
                .recovery(RecoveryPolicy::retries(2))
                .validate(),
            Err(ConfigError::ReferenceKnob("a recovery policy"))
        );
        assert_eq!(
            EngineConfig::reference()
                .inject(InjectionSpec::panic_at(3, 0))
                .validate(),
            Err(ConfigError::ReferenceKnob("chaos injection"))
        );
        assert_eq!(
            EngineConfig::reference()
                .batch_daemon(Box::new(ChunkedDaemon::new(Daemon::RoundRobin, 1)))
                .validate(),
            Err(ConfigError::ReferenceNeedsCentralDaemon)
        );
        // errors surface through instantiate too, not as panics
        let program = MinIdFlood::new(0);
        let err = EngineConfig::new()
            .threads(0)
            .instantiate(&program, path_graph(4, 0))
            .err()
            .expect("zero threads must not instantiate");
        assert_eq!(err, ConfigError::ZeroThreads);
        assert!(err.to_string().contains("threads"));
    }

    #[test]
    fn valid_envelopes_validate() {
        assert_eq!(EngineConfig::new().validate(), Ok(()));
        assert_eq!(
            EngineConfig::new()
                .threads(8)
                .layout(LayoutPolicy::Rcm)
                .pin(PinPolicy::Cores)
                .halo(true)
                .validate(),
            Ok(())
        );
        assert_eq!(EngineConfig::reference().validate(), Ok(()));
        assert_eq!(
            EngineConfig::reference()
                .asynchronous(Daemon::RoundRobin, 1)
                .validate(),
            Ok(())
        );
        assert_eq!(
            EngineConfig::new()
                .threads(4)
                .recovery(
                    RecoveryPolicy::retries(3)
                        .backoff(Duration::from_millis(1))
                        .watchdog(Duration::from_secs(5))
                )
                .inject(InjectionSpec::stall_at(2, 1, 10))
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn remote_envelopes_validate_the_wire_contract() {
        assert_eq!(EngineConfig::remote(4).validate(), Ok(()));
        assert_eq!(
            EngineConfig::remote(0).validate(),
            Err(ConfigError::ZeroThreads),
            "remote(0) sets threads = peers = 0"
        );
        assert_eq!(
            EngineConfig::new()
                .backend(Backend::Remote { peers: 0 })
                .validate(),
            Err(ConfigError::RemoteKnob("an empty peer set"))
        );
        assert_eq!(
            EngineConfig::remote(2)
                .asynchronous(Daemon::RoundRobin, 4)
                .validate(),
            Err(ConfigError::RemoteKnob("asynchronous schedules"))
        );
        assert_eq!(
            EngineConfig::remote(2).pin(PinPolicy::Cores).validate(),
            Err(ConfigError::RemoteKnob("worker pinning"))
        );
        assert_eq!(
            EngineConfig::remote(2).threads(3).validate(),
            Err(ConfigError::RemotePeerMismatch {
                peers: 2,
                threads: 3
            })
        );
        // halo, layout, recovery (watchdog included) and injection are all
        // wire-honorable knobs
        assert_eq!(
            EngineConfig::remote(2)
                .halo(true)
                .layout(LayoutPolicy::Rcm)
                .recovery(
                    RecoveryPolicy::retries(1)
                        .backoff(Duration::from_millis(1))
                        .watchdog(Duration::from_secs(1))
                )
                .inject(InjectionSpec::panic_at(1, 0))
                .validate(),
            Ok(())
        );
        assert_eq!(EngineConfig::remote(3).describe(), "remote-sync(threads=3)");
        // without a registered factory, instantiate is a typed error
        let program = MinIdFlood::new(0);
        let err = EngineConfig::remote(2)
            .instantiate(&program, path_graph(4, 0))
            .err()
            .expect("no remote factory is registered in this crate");
        assert_eq!(
            err,
            ConfigError::RemoteUnavailable {
                program: "min-id-flood".to_string()
            }
        );
        assert!(err.to_string().contains("min-id-flood"));
    }

    #[test]
    fn watchdog_on_an_ignoring_backend_is_rejected() {
        let watchdog = RecoveryPolicy::none().watchdog(Duration::from_secs(1));
        assert_eq!(
            EngineConfig::new()
                .threads(2)
                .asynchronous(Daemon::RoundRobin, 4)
                .recovery(watchdog)
                .validate(),
            Err(ConfigError::InertWatchdog(
                "the asynchronous sharded backend"
            ))
        );
        // the synchronous sharded barrier and the remote reply deadline
        // both honor the watchdog
        assert_eq!(
            EngineConfig::new().threads(2).recovery(watchdog).validate(),
            Ok(())
        );
        assert_eq!(
            EngineConfig::remote(2).recovery(watchdog).validate(),
            Ok(())
        );
    }

    #[test]
    fn recovery_policy_backoff_doubles_and_saturates() {
        let policy = RecoveryPolicy::retries(4).backoff(Duration::from_millis(10));
        assert_eq!(policy.backoff_before(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_before(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_before(3), Duration::from_millis(40));
        assert!(RecoveryPolicy::none().is_none());
        assert!(!policy.is_none());
        // recovery and injection are label-invariant: describe() is stable
        let described = EngineConfig::new()
            .threads(4)
            .recovery(policy)
            .inject(InjectionSpec::panic_at(1, 0))
            .describe();
        assert_eq!(described, "sharded-sync(threads=4)");
    }

    #[test]
    fn armed_injection_fires_exactly_once() {
        let armed = ArmedInjection::new(InjectionSpec::panic_at(2, 1));
        armed.maybe_fire(0, 1); // wrong step: inert
        armed.maybe_fire(2, 0); // wrong part: inert
        let hit = std::panic::catch_unwind(|| armed.maybe_fire(2, 1));
        assert!(hit.is_err(), "matching (step, part) must fire");
        // disarmed after firing: the retried epoch runs clean
        armed.maybe_fire(2, 1);
    }

    #[test]
    fn all_four_execution_paths_instantiate() {
        let program = MinIdFlood::new(0);
        let g = expander_graph(40, 4, 3);
        let configs = [
            ("reference-sync", EngineConfig::reference()),
            (
                "reference-async",
                EngineConfig::reference().asynchronous(Daemon::RoundRobin, 1),
            ),
            ("parallel-sync", EngineConfig::new().threads(3).halo(true)),
            (
                "sharded-async",
                EngineConfig::new()
                    .threads(3)
                    .asynchronous(Daemon::RoundRobin, 8),
            ),
        ];
        let mut finals = Vec::new();
        for (expected, config) in configs {
            let mut runner = config
                .instantiate(&program, g.clone())
                .expect("valid config");
            assert!(runner.report().engine.starts_with(expected), "{expected}");
            runner
                .run_until(StopCondition::AllAccept, 500)
                .expect("the flood converges on every path");
            finals.push(runner.into_network().states().to_vec());
        }
        // all four paths agree on the final configuration
        for states in &finals[1..] {
            assert_eq!(states, &finals[0]);
        }
    }

    #[test]
    fn describe_names_the_envelope() {
        assert_eq!(
            EngineConfig::new().threads(4).describe(),
            "sharded-sync(threads=4)"
        );
        let described = EngineConfig::new()
            .threads(2)
            .layout(LayoutPolicy::Rcm)
            .halo(true)
            .describe();
        assert!(described.contains("layout=Rcm") && described.contains("halo"));
        assert!(EngineConfig::reference()
            .asynchronous(Daemon::RoundRobin, 1)
            .describe()
            .starts_with("reference-async[round-robin@batch=1]"));
    }
}
