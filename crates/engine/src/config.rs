//! One engine configuration: the full execution envelope behind every
//! runner, validated up front.
//!
//! [`EngineConfig`] captures everything that selects *how* a program is
//! executed — [`Backend`] (sharded engine or sequential reference),
//! [`Mode`] (synchronous rounds or daemon-driven asynchrony), worker
//! threads, [`LayoutPolicy`], [`PinPolicy`], the halo-exchange flag and a
//! seed — in one builder. [`EngineConfig::validate`] rejects inconsistent
//! envelopes with a typed [`ConfigError`] (zero threads, halo outside the
//! synchronous sharded mode, sharded-only knobs on the reference backend)
//! **before** anything reaches the worker pool, and
//! [`EngineConfig::instantiate`] builds the matching execution path as a
//! `Box<dyn Runner<P>>` — all four runners behind one call.
//!
//! Before this module, every knob (threads, layout, pinning, halo, batch
//! daemons) was re-threaded by hand through `ScenarioSpec`, the adapters,
//! the bench sweeps and the adversary campaign; a new knob meant five call
//! sites. Now those layers hold an `EngineConfig` and new knobs are added
//! here once.
//!
//! Observability is deliberately **not** part of the envelope: every knob
//! here selects semantics or placement, while measurement is attached
//! after instantiation via [`Runner::set_observer`] (e.g. a
//! `RecordingObserver`, or the telemetry crate's sinks) and never changes
//! results.
//!
//! ```
//! use smst_engine::{EngineConfig, LayoutPolicy, StopCondition};
//! use smst_engine::programs::MinIdFlood;
//! use smst_graph::generators::ring_graph;
//!
//! let program = MinIdFlood::new(0);
//! let config = EngineConfig::new().threads(4).layout(LayoutPolicy::Rcm);
//! let mut runner = config
//!     .instantiate(&program, ring_graph(64, 7))
//!     .expect("a valid config");
//! runner.run_until(StopCondition::AllAccept, 1_000).unwrap();
//! assert!(runner.all_accept());
//! ```

use crate::layout::LayoutPolicy;
use crate::parallel_sync::ParallelSyncRunner;
use crate::pool::PinPolicy;
use crate::runner::Runner;
use crate::sharded_async::ShardedAsyncRunner;
use smst_graph::WeightedGraph;
use smst_sim::{AsyncRunner, BatchDaemon, ChunkedDaemon, Daemon, Network, NodeProgram, SyncRunner};

/// Which implementation family executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The sequential reference runners of `smst-sim`
    /// ([`SyncRunner`] / [`AsyncRunner`]): the semantic ground truth the
    /// sharded engine is pinned against. Single-threaded by definition —
    /// sharded-only knobs (threads > 1, layout, pinning, halo) are
    /// rejected by [`EngineConfig::validate`].
    Reference,
    /// The sharded parallel engine
    /// ([`ParallelSyncRunner`] / [`ShardedAsyncRunner`]): bit-for-bit
    /// equal to the reference at any thread count.
    Sharded,
}

/// The schedule a configuration runs under.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Lock-step synchronous rounds.
    Sync,
    /// Daemon-driven asynchrony.
    Async(DaemonConfig),
}

impl Mode {
    /// `true` for the asynchronous mode.
    pub fn is_async(&self) -> bool {
        matches!(self, Mode::Async(_))
    }

    fn describe(&self) -> String {
        match self {
            Mode::Sync => "sync".to_string(),
            Mode::Async(daemon) => format!("async[{}]", daemon.describe()),
        }
    }
}

/// The daemon of an asynchronous configuration.
#[derive(Debug, Clone)]
pub enum DaemonConfig {
    /// A central [`Daemon`] executed in uniform chunks of `batch`
    /// simultaneous activations (`batch == 1` is the sequential reference
    /// semantics).
    Central {
        /// The central daemon.
        daemon: Daemon,
        /// Simultaneous activations per batch.
        batch: usize,
    },
    /// Any [`BatchDaemon`] — the fully general distributed daemon
    /// (adversarial batch daemons included). Only the sharded backend can
    /// execute it.
    Batch(Box<dyn BatchDaemon>),
}

impl DaemonConfig {
    /// Instantiates the boxed batch daemon this configuration describes.
    pub fn build(&self) -> Box<dyn BatchDaemon> {
        match self {
            DaemonConfig::Central { daemon, batch } => {
                Box::new(ChunkedDaemon::new(daemon.clone(), *batch))
            }
            DaemonConfig::Batch(daemon) => daemon.clone(),
        }
    }

    /// A short descriptor for labels and artifacts.
    pub fn describe(&self) -> String {
        match self {
            DaemonConfig::Central { daemon, batch } => {
                format!("{}@batch={batch}", daemon.describe())
            }
            DaemonConfig::Batch(daemon) => daemon.describe(),
        }
    }
}

/// Why an [`EngineConfig`] cannot be instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads == 0`: there is no zero-worker execution. (Previously a
    /// silent clamp to 1 deep in the runner constructors.)
    ZeroThreads,
    /// The halo-exchange mode is defined only for synchronous schedules —
    /// asynchronous batches are not shard-aligned.
    HaloRequiresSync,
    /// A sharded-only knob (named in the payload) was set on the
    /// sequential [`Backend::Reference`].
    ReferenceKnob(&'static str),
    /// [`Backend::Reference`] executes only a central daemon at batch
    /// width 1 (the [`AsyncRunner`] semantics).
    ReferenceNeedsCentralDaemon,
    /// A typed constructor was handed a config for a different execution
    /// path (e.g. [`ParallelSyncRunner::from_config`] with an
    /// asynchronous config).
    WrongMode {
        /// What the constructor executes.
        expected: &'static str,
        /// What the config describes.
        got: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "threads must be >= 1 (got 0)"),
            ConfigError::HaloRequiresSync => {
                write!(f, "halo exchange requires the synchronous sharded mode")
            }
            ConfigError::ReferenceKnob(knob) => write!(
                f,
                "the sequential reference backend does not support {knob}"
            ),
            ConfigError::ReferenceNeedsCentralDaemon => write!(
                f,
                "the sequential reference backend runs only a central daemon at batch width 1"
            ),
            ConfigError::WrongMode { expected, got } => {
                write!(f, "this constructor executes {expected} configs, got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The full execution envelope of one run. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Implementation family (sharded engine or sequential reference).
    pub backend: Backend,
    /// Synchronous rounds or daemon-driven asynchrony.
    pub mode: Mode,
    /// Worker threads (validated ≥ 1; purely wall-clock).
    pub threads: usize,
    /// Node renumbering applied before sharding (wall-clock only; results
    /// are layout-invariant).
    pub layout: LayoutPolicy,
    /// Worker core pinning (wall-clock only; results are
    /// placement-invariant).
    pub pin: PinPolicy,
    /// Halo-exchange execution mode (synchronous sharded schedules only;
    /// wall-clock only).
    pub halo: bool,
    /// The workload seed the envelope carries for reproducibility
    /// bookkeeping: it names the run in [`describe`](Self::describe) /
    /// artifact labels, and the [`ScenarioSpec`](crate::ScenarioSpec)
    /// façade keeps its graph seed in sync with it. The runners themselves
    /// never read it — execution randomness lives in the daemon seeds.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineConfig {
    /// A synchronous, single-threaded sharded configuration with no layout
    /// pass, no pinning and no halo exchange.
    pub fn new() -> Self {
        EngineConfig {
            backend: Backend::Sharded,
            mode: Mode::Sync,
            threads: 1,
            layout: LayoutPolicy::Identity,
            pin: PinPolicy::None,
            halo: false,
            seed: 0,
        }
    }

    /// [`EngineConfig::new`] on the sequential [`Backend::Reference`] —
    /// the oracle configuration equivalence tests drive through the same
    /// API as the engine under test.
    pub fn reference() -> Self {
        EngineConfig {
            backend: Backend::Reference,
            ..Self::new()
        }
    }

    /// Sets the backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Switches to the synchronous mode.
    pub fn sync(mut self) -> Self {
        self.mode = Mode::Sync;
        self
    }

    /// Switches to an asynchronous schedule: a central [`Daemon`] executed
    /// in uniform chunks of `batch` simultaneous activations.
    pub fn asynchronous(mut self, daemon: Daemon, batch: usize) -> Self {
        self.mode = Mode::Async(DaemonConfig::Central { daemon, batch });
        self
    }

    /// Switches to an asynchronous schedule under **any** [`BatchDaemon`]
    /// (e.g. the adversarial batch daemons of `smst-adversary`).
    pub fn batch_daemon(mut self, daemon: Box<dyn BatchDaemon>) -> Self {
        self.mode = Mode::Async(DaemonConfig::Batch(daemon));
        self
    }

    /// Sets the worker-thread count. `0` is **not** clamped — it fails
    /// [`validate`](Self::validate) with [`ConfigError::ZeroThreads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the layout policy (RCM renumbering before sharding).
    pub fn layout(mut self, layout: LayoutPolicy) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the worker pin policy (best-effort core affinity).
    pub fn pin(mut self, pin: PinPolicy) -> Self {
        self.pin = pin;
        self
    }

    /// Switches the halo-exchange execution mode on or off (synchronous
    /// sharded schedules only — anything else fails
    /// [`validate`](Self::validate)).
    pub fn halo(mut self, halo: bool) -> Self {
        self.halo = halo;
        self
    }

    /// Sets the envelope seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the envelope for consistency. Every constructor consuming an
    /// `EngineConfig` validates first, so invalid knob combinations
    /// surface here as typed [`ConfigError`]s instead of panics (or silent
    /// clamps) deep in dispatch.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.halo && self.mode.is_async() {
            return Err(ConfigError::HaloRequiresSync);
        }
        if self.backend == Backend::Reference {
            if self.threads > 1 {
                return Err(ConfigError::ReferenceKnob("threads > 1"));
            }
            if self.layout != LayoutPolicy::Identity {
                return Err(ConfigError::ReferenceKnob("a layout policy"));
            }
            if self.pin != PinPolicy::None {
                return Err(ConfigError::ReferenceKnob("worker pinning"));
            }
            if self.halo {
                return Err(ConfigError::ReferenceKnob("halo exchange"));
            }
            if let Mode::Async(daemon) = &self.mode {
                match daemon {
                    DaemonConfig::Central { batch: 1, .. } => {}
                    _ => return Err(ConfigError::ReferenceNeedsCentralDaemon),
                }
            }
        }
        Ok(())
    }

    /// A short, stable descriptor of the envelope (for labels, bench meta
    /// and artifacts), e.g. `sharded-sync(threads=4,layout=Rcm,halo)`.
    pub fn describe(&self) -> String {
        let backend = match self.backend {
            Backend::Reference => "reference",
            Backend::Sharded => "sharded",
        };
        let mut knobs = format!("threads={}", self.threads);
        if self.layout != LayoutPolicy::Identity {
            knobs.push_str(&format!(",layout={:?}", self.layout));
        }
        if self.pin != PinPolicy::None {
            knobs.push_str(",pin");
        }
        if self.halo {
            knobs.push_str(",halo");
        }
        if self.seed != 0 {
            knobs.push_str(&format!(",seed={}", self.seed));
        }
        format!("{backend}-{}({knobs})", self.mode.describe())
    }

    /// Builds the execution path this envelope describes over `graph`,
    /// with every register initialized by `program.init` — any of the four
    /// runners, behind one object-safe [`Runner`].
    ///
    /// Fails with the [`ConfigError`] of [`validate`](Self::validate) on
    /// an inconsistent envelope; never panics on configuration problems.
    pub fn instantiate<'p, P>(
        &self,
        program: &'p P,
        graph: WeightedGraph,
    ) -> Result<Box<dyn Runner<P> + 'p>, ConfigError>
    where
        P: NodeProgram + Sync,
        P::State: Send + Sync,
    {
        self.validate()?;
        Ok(match (self.backend, &self.mode) {
            (Backend::Sharded, Mode::Sync) => {
                Box::new(ParallelSyncRunner::from_config(program, graph, self)?)
            }
            (Backend::Sharded, Mode::Async(_)) => {
                Box::new(ShardedAsyncRunner::from_config(program, graph, self)?)
            }
            (Backend::Reference, Mode::Sync) => {
                Box::new(SyncRunner::new(program, Network::new(program, graph)))
            }
            (Backend::Reference, Mode::Async(daemon)) => {
                let DaemonConfig::Central { daemon, .. } = daemon else {
                    unreachable!("validate rejects non-central reference daemons");
                };
                Box::new(AsyncRunner::new(
                    program,
                    Network::new(program, graph),
                    daemon.clone(),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::MinIdFlood;
    use crate::runner::StopCondition;
    use smst_graph::generators::{expander_graph, path_graph};

    #[test]
    fn invalid_configs_are_typed_errors_not_panics() {
        assert_eq!(
            EngineConfig::new().threads(0).validate(),
            Err(ConfigError::ZeroThreads)
        );
        assert_eq!(
            EngineConfig::new()
                .asynchronous(Daemon::RoundRobin, 4)
                .halo(true)
                .validate(),
            Err(ConfigError::HaloRequiresSync)
        );
        assert_eq!(
            EngineConfig::reference().threads(2).validate(),
            Err(ConfigError::ReferenceKnob("threads > 1"))
        );
        assert_eq!(
            EngineConfig::reference()
                .layout(LayoutPolicy::Rcm)
                .validate(),
            Err(ConfigError::ReferenceKnob("a layout policy"))
        );
        assert_eq!(
            EngineConfig::reference().halo(true).validate(),
            Err(ConfigError::ReferenceKnob("halo exchange"))
        );
        assert_eq!(
            EngineConfig::reference()
                .asynchronous(Daemon::RoundRobin, 2)
                .validate(),
            Err(ConfigError::ReferenceNeedsCentralDaemon)
        );
        assert_eq!(
            EngineConfig::reference()
                .batch_daemon(Box::new(ChunkedDaemon::new(Daemon::RoundRobin, 1)))
                .validate(),
            Err(ConfigError::ReferenceNeedsCentralDaemon)
        );
        // errors surface through instantiate too, not as panics
        let program = MinIdFlood::new(0);
        let err = EngineConfig::new()
            .threads(0)
            .instantiate(&program, path_graph(4, 0))
            .err()
            .expect("zero threads must not instantiate");
        assert_eq!(err, ConfigError::ZeroThreads);
        assert!(err.to_string().contains("threads"));
    }

    #[test]
    fn valid_envelopes_validate() {
        assert_eq!(EngineConfig::new().validate(), Ok(()));
        assert_eq!(
            EngineConfig::new()
                .threads(8)
                .layout(LayoutPolicy::Rcm)
                .pin(PinPolicy::Cores)
                .halo(true)
                .validate(),
            Ok(())
        );
        assert_eq!(EngineConfig::reference().validate(), Ok(()));
        assert_eq!(
            EngineConfig::reference()
                .asynchronous(Daemon::RoundRobin, 1)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn all_four_execution_paths_instantiate() {
        let program = MinIdFlood::new(0);
        let g = expander_graph(40, 4, 3);
        let configs = [
            ("reference-sync", EngineConfig::reference()),
            (
                "reference-async",
                EngineConfig::reference().asynchronous(Daemon::RoundRobin, 1),
            ),
            ("parallel-sync", EngineConfig::new().threads(3).halo(true)),
            (
                "sharded-async",
                EngineConfig::new()
                    .threads(3)
                    .asynchronous(Daemon::RoundRobin, 8),
            ),
        ];
        let mut finals = Vec::new();
        for (expected, config) in configs {
            let mut runner = config
                .instantiate(&program, g.clone())
                .expect("valid config");
            assert!(runner.report().engine.starts_with(expected), "{expected}");
            runner
                .run_until(StopCondition::AllAccept, 500)
                .expect("the flood converges on every path");
            finals.push(runner.into_network().states().to_vec());
        }
        // all four paths agree on the final configuration
        for states in &finals[1..] {
            assert_eq!(states, &finals[0]);
        }
    }

    #[test]
    fn describe_names_the_envelope() {
        assert_eq!(
            EngineConfig::new().threads(4).describe(),
            "sharded-sync(threads=4)"
        );
        let described = EngineConfig::new()
            .threads(2)
            .layout(LayoutPolicy::Rcm)
            .halo(true)
            .describe();
        assert!(described.contains("layout=Rcm") && described.contains("halo"));
        assert!(EngineConfig::reference()
            .asynchronous(Daemon::RoundRobin, 1)
            .describe()
            .starts_with("reference-async[round-robin@batch=1]"));
    }
}
