//! The one runner API: an object-safe [`Runner`] trait implemented by all
//! four execution paths.
//!
//! The workspace grew four runner entry points — the sequential references
//! [`SyncRunner`] / [`AsyncRunner`] in `smst-sim` and the sharded
//! [`ParallelSyncRunner`](crate::ParallelSyncRunner) /
//! [`ShardedAsyncRunner`](crate::ShardedAsyncRunner) in this crate — each
//! with its own constructors and its own copy of the alarm / accept /
//! stop-condition driving loops. [`Runner`] unifies them: callers hold a
//! `Box<dyn Runner<P>>` built by
//! [`EngineConfig::instantiate`](crate::EngineConfig::instantiate) and
//! drive it through `step` / [`run_until`](Runner::run_until) /
//! [`state`](Runner::state) / [`report`](Runner::report) without knowing
//! which execution path is underneath. The shared [`StopCondition`] is
//! consumed by the trait's single `run_until` loop — the per-runner
//! alarm/accept loops are gone.
//!
//! Every runner also accepts a [`RoundObserver`]
//! ([`set_observer`](Runner::set_observer)): a per-round measurement hook
//! (round index, alarm count, halo bytes exchanged, and the
//! dispatch/compute/barrier/exchange phase split) shared by benches,
//! figures, the telemetry sinks and KMW-style per-round accounting.
//! Attaching an observer never changes results — only the wall-clock
//! `*_ns` fields vary between runs — and an unobserved runner never
//! reads the clock at all.

use crate::config::EngineError;
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{
    AsyncRunner, FaultPlan, Network, NodeContext, NodeProgram, RoundObserver, SyncRunner,
};

/// When a driven run ends (always bounded by the caller's step budget).
///
/// Shared by the [`Runner`] trait's [`run_until`](Runner::run_until) and
/// the [`ScenarioSpec`](crate::ScenarioSpec) façade — one stop-condition
/// vocabulary for every execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Run the full step budget.
    Steps,
    /// Stop at the first alarm ([`smst_sim::Verdict::Reject`]).
    FirstAlarm,
    /// Stop once every node accepts.
    AllAccept,
}

/// A summary of what a [`Runner`] has executed so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Nodes in the executed graph.
    pub node_count: usize,
    /// Steps (synchronous rounds or asynchronous time units) executed.
    pub steps: usize,
    /// Raw single-node activations executed (`node_count × steps` for
    /// synchronous runners; the daemon's schedule lengths for
    /// asynchronous ones).
    pub activations: usize,
    /// Worker threads the runner dispatches on (1 for the sequential
    /// reference runners).
    pub threads: usize,
    /// A short, stable descriptor of the execution path (for labels and
    /// artifact meta), e.g. `parallel-sync(threads=4,halo)`.
    pub engine: String,
}

/// One execution path of the engine, driven step by step.
///
/// Object safe: [`EngineConfig::instantiate`](crate::EngineConfig::instantiate)
/// hands callers a `Box<dyn Runner<P>>` over any of the four execution
/// paths. A *step* is one synchronous round or one normalized
/// asynchronous time unit, whichever the path executes.
///
/// All node-addressed methods speak **original node ids** regardless of
/// the layout policy underneath.
pub trait Runner<P: NodeProgram> {
    /// Executes exactly one step.
    ///
    /// The panicking convenience surface: a sharded runner whose pooled
    /// execution fails (worker panic past its
    /// [`RecoveryPolicy`](crate::RecoveryPolicy), barrier watchdog
    /// timeout) panics with the [`EngineError`] message. Callers that need
    /// graceful degradation use [`try_step`](Runner::try_step).
    fn step(&mut self);

    /// Executes exactly one step, surfacing pooled-execution failures as a
    /// typed [`EngineError`] instead of unwinding.
    ///
    /// The sequential reference runners never fail (their default body
    /// wraps [`step`](Runner::step)); the sharded runners override this
    /// with supervised recovery — a worker panic is retried under the
    /// configured [`RecoveryPolicy`](crate::RecoveryPolicy) and only
    /// surfaces as `Err` once retries are exhausted (or immediately for a
    /// [`PoolError::BarrierTimeout`](crate::PoolError::BarrierTimeout)).
    /// After an `Err` the runner's registers are unspecified; the run is
    /// over.
    fn try_step(&mut self) -> Result<(), EngineError> {
        self.step();
        Ok(())
    }

    /// Steps executed so far.
    fn steps(&self) -> usize;

    /// Raw single-node activations executed so far.
    fn activations(&self) -> usize;

    /// The graph being executed.
    fn graph(&self) -> &WeightedGraph;

    /// The register of one node (original id).
    fn state(&self, v: NodeId) -> &P::State;

    /// Mutable access to one register (fault injection; original id).
    fn state_mut(&mut self, v: NodeId) -> &mut P::State;

    /// The registers in original node-id order (clones;
    /// layout-independent).
    fn states_snapshot(&self) -> Vec<P::State>;

    /// The static context of a node (original id).
    fn context(&self, v: NodeId) -> NodeContext;

    /// `true` if at least one node raises an alarm.
    fn any_alarm(&self) -> bool;

    /// `true` if every node accepts.
    fn all_accept(&self) -> bool;

    /// The nodes currently raising an alarm (original ids, ascending).
    fn alarming_nodes(&self) -> Vec<NodeId>;

    /// Applies a [`FaultPlan`] by passing every planned node's register to
    /// `mutate`.
    fn apply_faults(&mut self, plan: &FaultPlan, mutate: &mut dyn FnMut(NodeId, &mut P::State));

    /// Attaches a [`RoundObserver`] invoked after every step (replacing
    /// any previous one). Purely observational — results never change.
    fn set_observer(&mut self, observer: Box<dyn RoundObserver>);

    /// A summary of the execution so far.
    fn report(&self) -> RunReport;

    /// Consumes the runner, returning a sequential [`Network`] holding the
    /// final registers in original node-id order.
    fn into_network(self: Box<Self>) -> Network<P>;

    /// Runs until `until` holds (checked after every step, and once before
    /// the first) or until `max_steps` additional steps have elapsed.
    /// Returns the number of steps executed by this call if the condition
    /// was met (`Some(max_steps)` for [`StopCondition::Steps`]), `None` on
    /// timeout.
    ///
    /// The default body ([`drive_until`]) is the **single** implementation
    /// of the alarm/accept driving loops that used to be duplicated per
    /// runner; implementations may override only to substitute a faster
    /// equivalent execution (e.g. chunked dispatch for
    /// [`StopCondition::Steps`]), never to change results.
    fn run_until(&mut self, until: StopCondition, max_steps: usize) -> Option<usize> {
        drive_until(self, until, max_steps)
    }

    /// [`run_until`](Runner::run_until) over the fallible
    /// [`try_step`](Runner::try_step) surface: `Ok(Some(steps))` when the
    /// condition was met, `Ok(None)` on timeout, `Err` when pooled
    /// execution failed mid-run.
    fn try_run_until(
        &mut self,
        until: StopCondition,
        max_steps: usize,
    ) -> Result<Option<usize>, EngineError> {
        try_drive_until(self, until, max_steps)
    }
}

/// The shared driving loop behind [`Runner::run_until`], callable from
/// impls that override the trait method for one condition and fall back to
/// the common loop for the rest.
pub fn drive_until<P, R>(runner: &mut R, until: StopCondition, max_steps: usize) -> Option<usize>
where
    P: NodeProgram,
    R: Runner<P> + ?Sized,
{
    let met = |runner: &R| match until {
        StopCondition::Steps => false,
        StopCondition::FirstAlarm => runner.any_alarm(),
        StopCondition::AllAccept => runner.all_accept(),
    };
    if !matches!(until, StopCondition::Steps) && met(runner) {
        return Some(0);
    }
    for executed in 1..=max_steps {
        runner.step();
        if met(runner) {
            return Some(executed);
        }
    }
    match until {
        StopCondition::Steps => Some(max_steps),
        _ => None,
    }
}

/// The shared fallible driving loop behind [`Runner::try_run_until`]:
/// [`drive_until`] over [`Runner::try_step`], stopping at the first
/// [`EngineError`].
pub fn try_drive_until<P, R>(
    runner: &mut R,
    until: StopCondition,
    max_steps: usize,
) -> Result<Option<usize>, EngineError>
where
    P: NodeProgram,
    R: Runner<P> + ?Sized,
{
    let met = |runner: &R| match until {
        StopCondition::Steps => false,
        StopCondition::FirstAlarm => runner.any_alarm(),
        StopCondition::AllAccept => runner.all_accept(),
    };
    if !matches!(until, StopCondition::Steps) && met(runner) {
        return Ok(Some(0));
    }
    for executed in 1..=max_steps {
        runner.try_step()?;
        if met(runner) {
            return Ok(Some(executed));
        }
    }
    Ok(match until {
        StopCondition::Steps => Some(max_steps),
        _ => None,
    })
}

impl<'p, P> Runner<P> for SyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    fn step(&mut self) {
        self.step_round();
    }

    fn steps(&self) -> usize {
        self.rounds()
    }

    fn activations(&self) -> usize {
        self.rounds() * self.network().node_count()
    }

    fn graph(&self) -> &WeightedGraph {
        self.network().graph()
    }

    fn state(&self, v: NodeId) -> &P::State {
        self.network().state(v)
    }

    fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        self.network_mut().state_mut(v)
    }

    fn states_snapshot(&self) -> Vec<P::State> {
        self.network().states().to_vec()
    }

    fn context(&self, v: NodeId) -> NodeContext {
        self.network().context(v).clone()
    }

    fn any_alarm(&self) -> bool {
        self.network().any_alarm(self.program())
    }

    fn all_accept(&self) -> bool {
        self.network().all_accept(self.program())
    }

    fn alarming_nodes(&self) -> Vec<NodeId> {
        self.network().alarming_nodes(self.program())
    }

    fn apply_faults(&mut self, plan: &FaultPlan, mutate: &mut dyn FnMut(NodeId, &mut P::State)) {
        for &v in plan.nodes() {
            mutate(v, self.network_mut().state_mut(v));
        }
    }

    fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        SyncRunner::set_observer(self, observer);
    }

    fn report(&self) -> RunReport {
        RunReport {
            node_count: self.network().node_count(),
            steps: self.rounds(),
            activations: Runner::activations(self),
            threads: 1,
            engine: "reference-sync".to_string(),
        }
    }

    fn into_network(self: Box<Self>) -> Network<P> {
        SyncRunner::into_network(*self)
    }
}

impl<'p, P> Runner<P> for AsyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    fn step(&mut self) {
        self.step_time_unit();
    }

    fn steps(&self) -> usize {
        self.time_units()
    }

    fn activations(&self) -> usize {
        AsyncRunner::activations(self)
    }

    fn graph(&self) -> &WeightedGraph {
        self.network().graph()
    }

    fn state(&self, v: NodeId) -> &P::State {
        self.network().state(v)
    }

    fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        self.network_mut().state_mut(v)
    }

    fn states_snapshot(&self) -> Vec<P::State> {
        self.network().states().to_vec()
    }

    fn context(&self, v: NodeId) -> NodeContext {
        self.network().context(v).clone()
    }

    fn any_alarm(&self) -> bool {
        self.network().any_alarm(self.program())
    }

    fn all_accept(&self) -> bool {
        self.network().all_accept(self.program())
    }

    fn alarming_nodes(&self) -> Vec<NodeId> {
        self.network().alarming_nodes(self.program())
    }

    fn apply_faults(&mut self, plan: &FaultPlan, mutate: &mut dyn FnMut(NodeId, &mut P::State)) {
        for &v in plan.nodes() {
            mutate(v, self.network_mut().state_mut(v));
        }
    }

    fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        AsyncRunner::set_observer(self, observer);
    }

    fn report(&self) -> RunReport {
        RunReport {
            node_count: self.network().node_count(),
            steps: self.time_units(),
            activations: AsyncRunner::activations(self),
            threads: 1,
            engine: "reference-async".to_string(),
        }
    }

    fn into_network(self: Box<Self>) -> Network<P> {
        AsyncRunner::into_network(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::MinIdFlood;
    use smst_graph::generators::path_graph;
    use smst_sim::{Daemon, RecordingObserver};

    #[test]
    fn reference_runners_drive_through_the_trait() {
        let g = path_graph(6, 0);
        let program = MinIdFlood::new(0);
        let mut sync: Box<dyn Runner<MinIdFlood>> =
            Box::new(SyncRunner::new(&program, Network::new(&program, g.clone())));
        let steps = sync
            .run_until(StopCondition::AllAccept, 100)
            .expect("the flood converges");
        assert_eq!(steps, g.diameter().unwrap());
        assert_eq!(sync.steps(), steps);
        assert_eq!(sync.activations(), steps * 6);
        assert!(sync.all_accept());
        assert!(!sync.any_alarm());
        assert!(sync.alarming_nodes().is_empty());
        assert_eq!(sync.report().engine, "reference-sync");
        assert_eq!(sync.context(NodeId(3)).degree, 2);
        let network = sync.into_network();
        assert!(network.states().iter().all(|&s| s == 0));

        let mut asynch: Box<dyn Runner<MinIdFlood>> = Box::new(AsyncRunner::new(
            &program,
            Network::new(&program, g),
            Daemon::RoundRobin,
        ));
        asynch.step();
        assert_eq!(asynch.steps(), 1);
        assert_eq!(asynch.report().engine, "reference-async");
    }

    #[test]
    fn reference_runners_invoke_observers() {
        let g = path_graph(5, 0);
        let program = MinIdFlood::new(0);
        let recording = RecordingObserver::new();
        let mut runner: Box<dyn Runner<MinIdFlood>> =
            Box::new(SyncRunner::new(&program, Network::new(&program, g)));
        runner.set_observer(Box::new(recording.clone()));
        runner.run_until(StopCondition::Steps, 3);
        assert_eq!(recording.rounds_observed(), 3);
        let trace = recording.deterministic_trace();
        assert_eq!(trace[0].0, 0, "step indices start at 0");
        assert_eq!(trace[2].0, 2);
        assert!(trace.iter().all(|t| t.2 == 5), "n activations per round");
    }

    #[test]
    fn run_until_semantics() {
        let g = path_graph(4, 0);
        let program = MinIdFlood::new(0);
        let mut runner: Box<dyn Runner<MinIdFlood>> =
            Box::new(SyncRunner::new(&program, Network::new(&program, g)));
        // Steps runs the full budget and reports it
        assert_eq!(runner.run_until(StopCondition::Steps, 2), Some(2));
        // AllAccept met immediately costs zero steps
        runner.run_until(StopCondition::AllAccept, 100);
        assert_eq!(runner.run_until(StopCondition::AllAccept, 5), Some(0));
        // FirstAlarm never fires on this program: timeout
        assert_eq!(runner.run_until(StopCondition::FirstAlarm, 2), None);
    }

    #[test]
    fn try_surface_mirrors_the_panicking_surface_on_reference_runners() {
        let g = path_graph(5, 0);
        let program = MinIdFlood::new(0);
        let mut runner: Box<dyn Runner<MinIdFlood>> =
            Box::new(SyncRunner::new(&program, Network::new(&program, g)));
        runner.try_step().expect("reference runners never fail");
        assert_eq!(runner.steps(), 1);
        assert_eq!(
            runner.try_run_until(StopCondition::AllAccept, 100),
            Ok(Some(3))
        );
        assert_eq!(runner.try_run_until(StopCondition::FirstAlarm, 2), Ok(None));
    }
}
