//! Shards: contiguous node ranges with balanced round work.
//!
//! A synchronous round under double-buffered registers is an embarrassingly
//! parallel map, so the only scheduling question is how to split the node
//! range. Splitting by *node count* is wrong on skewed-degree graphs (one
//! shard inherits the hubs); [`partition_balanced`] instead splits by the
//! CSR **work prefix** (adjacency entries + nodes), so every shard performs
//! roughly the same number of register reads and writes per round.

use crate::topology::CsrTopology;

/// A contiguous range `[start, end)` of dense node indices owned by one
/// worker thread for the duration of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First node of the shard.
    pub start: usize,
    /// One past the last node of the shard.
    pub end: usize,
}

impl Shard {
    /// Number of nodes in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the shard owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The dense node indices of the shard.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Splits `0..n` into at most `count` non-empty shards whose per-round work
/// (register reads + writes, as measured by [`CsrTopology::work`]) is as
/// even as contiguity allows.
///
/// Returns fewer than `count` shards when the graph is too small to fill
/// them: at least one shard when the graph is non-empty, and **no shards at
/// all on the empty graph** (every returned shard is non-empty, an
/// invariant the runners' dispatch paths rely on).
pub fn partition_balanced(topo: &CsrTopology, count: usize) -> Vec<Shard> {
    let n = topo.node_count();
    let count = count.max(1);
    if n == 0 {
        return Vec::new();
    }
    let total = topo.total_work();
    let mut shards = Vec::with_capacity(count);
    let mut start = 0usize;
    for k in 0..count {
        if start >= n {
            break;
        }
        // ideal cumulative work at the end of shard k, in u128 so the
        // multiply cannot overflow on huge-work graphs (the quotient is
        // at most `total`, so the cast back is lossless)
        let target = (total as u128 * (k as u128 + 1) / count as u128) as usize;
        let mut end = if k + 1 == count { n } else { start + 1 };
        while end < n && topo.work_prefix(end) < target {
            end += 1;
        }
        shards.push(Shard { start, end });
        start = end;
    }
    if let Some(last) = shards.last_mut() {
        last.end = n;
    }
    shards
}

/// The halo analysis of a shard partition: which neighbour indices of each
/// shard fall **outside** its slice, and everything needed to execute
/// rounds on shard-local arenas of `interior registers + halo copies`.
///
/// The arena is one flat buffer, the per-shard regions concatenated:
/// region `s` is `arena_offsets[s] .. arena_offsets[s + 1]`, its first
/// `shards[s].len()` slots holding the shard's interior registers (in node
/// order) and the remaining slots holding copies of the shard's halo — the
/// external neighbours, ascending. A per-shard CSR remapped into **arena
/// coordinates** lets a round read nothing but the arena; after each round
/// every shard refreshes its halo slots by *pulling* the just-written
/// interior values from the owning shards' regions ([`HaloPlan::exchange`]),
/// which is the engine's only cross-shard traffic.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    shards: Vec<Shard>,
    /// `arena_offsets[s]..arena_offsets[s + 1]` is shard `s`'s region.
    arena_offsets: Vec<usize>,
    /// Per shard: the external (internal-order) node indices it reads,
    /// ascending — halo slot `h` of shard `s` mirrors node `halos[s][h]`.
    halos: Vec<Vec<u32>>,
    /// Per shard: CSR offsets over the interior (`len == interior + 1`).
    csr_offsets: Vec<Vec<usize>>,
    /// Per shard: neighbour indices in arena coordinates, port order.
    csr_neighbors: Vec<Vec<u32>>,
    /// Per shard: `(src, dst)` arena-coordinate copies that refresh the
    /// shard's halo slots from the owners' interiors (the pull exchange).
    exchange: Vec<Vec<(u32, u32)>>,
}

impl HaloPlan {
    /// Builds the halo plan of a partition over `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the shards are not a contiguous cover of the topology's
    /// node range, or if the arena would exceed `u32::MAX` slots (arena
    /// coordinates are packed into 32 bits like the CSR's).
    pub fn build(topo: &CsrTopology, shards: &[Shard]) -> Self {
        let n = topo.node_count();
        assert_eq!(
            shards.first().map_or(0, |s| s.start),
            0,
            "shards must start at node 0"
        );
        assert_eq!(
            shards.last().map_or(0, |s| s.end),
            n,
            "shards must cover the node range"
        );
        assert!(
            shards.windows(2).all(|w| w[0].end == w[1].start),
            "shards must be contiguous"
        );
        // owner[v]: which shard's interior holds node v
        let mut owner = vec![0u32; n];
        for (s, sh) in shards.iter().enumerate() {
            for v in sh.nodes() {
                owner[v] = s as u32;
            }
        }
        let mut halos: Vec<Vec<u32>> = Vec::with_capacity(shards.len());
        for sh in shards {
            let mut ext: Vec<u32> = sh
                .nodes()
                .flat_map(|v| topo.neighbors_of(v).iter().copied())
                .filter(|&u| (u as usize) < sh.start || (u as usize) >= sh.end)
                .collect();
            ext.sort_unstable();
            ext.dedup();
            halos.push(ext);
        }
        let mut arena_offsets = Vec::with_capacity(shards.len() + 1);
        arena_offsets.push(0usize);
        for (sh, halo) in shards.iter().zip(&halos) {
            arena_offsets.push(arena_offsets.last().unwrap() + sh.len() + halo.len());
        }
        assert!(
            u32::try_from(*arena_offsets.last().unwrap()).is_ok(),
            "halo arena exceeds 2^32 - 1 slots"
        );
        let mut csr_offsets = Vec::with_capacity(shards.len());
        let mut csr_neighbors = Vec::with_capacity(shards.len());
        let mut exchange = Vec::with_capacity(shards.len());
        for (s, sh) in shards.iter().enumerate() {
            let base = arena_offsets[s];
            let halo_base = base + sh.len();
            let mut offsets = Vec::with_capacity(sh.len() + 1);
            let mut neighbors = Vec::new();
            offsets.push(0usize);
            for v in sh.nodes() {
                neighbors.extend(topo.neighbors_of(v).iter().map(|&u| {
                    let ui = u as usize;
                    if ui >= sh.start && ui < sh.end {
                        (base + (ui - sh.start)) as u32
                    } else {
                        let slot = halos[s].binary_search(&u).expect("halo holds u");
                        (halo_base + slot) as u32
                    }
                }));
                offsets.push(neighbors.len());
            }
            csr_offsets.push(offsets);
            csr_neighbors.push(neighbors);
            exchange.push(
                halos[s]
                    .iter()
                    .enumerate()
                    .map(|(h, &u)| {
                        let o = owner[u as usize] as usize;
                        let src = arena_offsets[o] + (u as usize - shards[o].start);
                        (src as u32, (halo_base + h) as u32)
                    })
                    .collect(),
            );
        }
        HaloPlan {
            shards: shards.to_vec(),
            arena_offsets,
            halos,
            csr_offsets,
            csr_neighbors,
            exchange,
        }
    }

    /// Number of shards (== worker parts).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard behind region `s`.
    pub fn shard(&self, s: usize) -> Shard {
        self.shards[s]
    }

    /// Total arena slots (interiors + halo copies).
    pub fn arena_len(&self) -> usize {
        *self.arena_offsets.last().unwrap_or(&0)
    }

    /// Where shard `s`'s region starts in the arena.
    pub fn arena_offset(&self, s: usize) -> usize {
        self.arena_offsets[s]
    }

    /// Number of halo slots of shard `s` — how many external registers the
    /// shard reads (and must re-pull every round).
    pub fn halo_size(&self, s: usize) -> usize {
        self.halos[s].len()
    }

    /// The external node indices shard `s` mirrors, ascending.
    pub fn halo_nodes(&self, s: usize) -> &[u32] {
        &self.halos[s]
    }

    /// Total halo slots over all shards — the number of registers crossing
    /// shard boundaries in each exchange step.
    pub fn total_halo(&self) -> usize {
        self.halos.iter().map(Vec::len).sum()
    }

    /// Bytes copied per exchange step for a register of `state_size` bytes.
    pub fn exchanged_bytes_per_round(&self, state_size: usize) -> usize {
        self.total_halo() * state_size
    }

    /// Shard `s`'s CSR in arena coordinates: `(offsets, neighbors)` with
    /// `neighbors[offsets[i]..offsets[i + 1]]` the arena indices of interior
    /// node `i`'s neighbours, in port order.
    pub fn local_csr(&self, s: usize) -> (&[usize], &[u32]) {
        (&self.csr_offsets[s], &self.csr_neighbors[s])
    }

    /// The interior write range of every shard, in arena coordinates (the
    /// `regions` argument of
    /// [`WorkerPool::run_rounds_halo`](crate::pool::WorkerPool::run_rounds_halo)).
    pub fn regions(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, sh)| (self.arena_offsets[s], self.arena_offsets[s] + sh.len()))
            .collect()
    }

    /// The per-shard pull-exchange copies, in arena coordinates.
    pub fn exchange(&self) -> &[Vec<(u32, u32)>] {
        &self.exchange
    }

    /// Fills `arena` from a node-indexed register vector: each region's
    /// interior slots from the shard's slice, its halo slots from the
    /// mirrored nodes.
    pub fn gather_into<T: Clone>(&self, states: &[T], arena: &mut Vec<T>) {
        arena.clear();
        arena.reserve(self.arena_len());
        for (sh, halo) in self.shards.iter().zip(&self.halos) {
            arena.extend(states[sh.start..sh.end].iter().cloned());
            arena.extend(halo.iter().map(|&u| states[u as usize].clone()));
        }
    }

    /// Copies every region's interior slots back into the node-indexed
    /// register vector (halo copies are discarded — they duplicate another
    /// region's interior).
    pub fn scatter_interiors<T: Clone>(&self, arena: &[T], states: &mut [T]) {
        for (s, sh) in self.shards.iter().enumerate() {
            let base = self.arena_offsets[s];
            states[sh.start..sh.end].clone_from_slice(&arena[base..base + sh.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{random_connected_graph, star_graph};

    fn work_of(topo: &CsrTopology, s: &Shard) -> usize {
        s.nodes().map(|v| topo.work(v)).sum()
    }

    #[test]
    fn shards_cover_the_range_exactly_once() {
        let g = random_connected_graph(101, 300, 3);
        let topo = CsrTopology::build(&g);
        for count in [1, 2, 3, 7, 16, 200] {
            let shards = partition_balanced(&topo, count);
            assert!(shards.len() <= count.max(1));
            assert_eq!(shards.first().unwrap().start, 0);
            assert_eq!(shards.last().unwrap().end, 101);
            for w in shards.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert!(shards.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn work_is_roughly_balanced() {
        let g = random_connected_graph(4000, 12000, 5);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 8);
        assert_eq!(shards.len(), 8);
        let works: Vec<usize> = shards.iter().map(|s| work_of(&topo, s)).collect();
        let avg = topo.total_work() / 8;
        for w in &works {
            assert!(
                *w > avg / 2 && *w < avg * 2,
                "shard work {w} too far from average {avg}"
            );
        }
    }

    #[test]
    fn hub_graph_does_not_collapse_into_one_shard() {
        // star: node 0 carries half the work; remaining shards still split
        // the leaves
        let g = star_graph(1000, 2);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 4);
        assert!(shards.len() >= 2);
        assert_eq!(shards.first().unwrap().start, 0);
        assert_eq!(shards.last().unwrap().end, 1000);
    }

    #[test]
    fn more_shards_than_nodes() {
        let g = random_connected_graph(3, 3, 1);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 64);
        assert_eq!(shards.iter().map(Shard::len).sum::<usize>(), 3);
        assert!(shards.len() <= 3);
    }

    #[test]
    fn empty_graph_yields_no_shards() {
        // regression: this used to return `vec![Shard { 0, 0 }]`, violating
        // the all-shards-non-empty invariant the other tests pin
        let topo = CsrTopology::build(&smst_graph::WeightedGraph::new());
        for count in [1, 4, 100] {
            assert!(partition_balanced(&topo, count).is_empty(), "{count}");
        }
    }

    #[test]
    fn halo_plan_mirrors_exactly_the_cross_shard_reads() {
        let g = random_connected_graph(300, 900, 17);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 6);
        let plan = HaloPlan::build(&topo, &shards);
        assert_eq!(plan.shard_count(), shards.len());
        assert_eq!(
            plan.arena_len(),
            300 + plan.total_halo(),
            "arena = interiors + halo copies"
        );
        for (s, sh) in shards.iter().enumerate() {
            // the halo is precisely the set of external neighbours
            let mut expected: Vec<u32> = sh
                .nodes()
                .flat_map(|v| topo.neighbors_of(v).iter().copied())
                .filter(|&u| (u as usize) < sh.start || (u as usize) >= sh.end)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(plan.halo_nodes(s), expected.as_slice(), "shard {s}");
            assert_eq!(plan.halo_size(s), expected.len());
            // every exchange copy pulls the mirrored node's interior slot
            for (&(src, dst), &u) in plan.exchange()[s].iter().zip(plan.halo_nodes(s)) {
                let o = shards
                    .iter()
                    .position(|t| t.nodes().contains(&(u as usize)))
                    .unwrap();
                assert_eq!(
                    src as usize,
                    plan.arena_offset(o) + (u as usize - shards[o].start)
                );
                assert!(dst as usize >= plan.arena_offset(s) + sh.len());
                assert!((dst as usize) < plan.arena_offset(s) + sh.len() + plan.halo_size(s));
            }
        }
        assert_eq!(plan.exchanged_bytes_per_round(8), 8 * plan.total_halo());
    }

    #[test]
    fn halo_local_csr_resolves_to_the_same_registers() {
        // reading `arena[local_csr]` out of a gathered arena must observe
        // exactly the registers `states[global_csr]` would
        let g = random_connected_graph(120, 360, 23);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 5);
        let plan = HaloPlan::build(&topo, &shards);
        let states: Vec<u64> = (0..120u64).map(|x| x * 31 + 7).collect();
        let mut arena = Vec::new();
        plan.gather_into(&states, &mut arena);
        assert_eq!(arena.len(), plan.arena_len());
        for (s, sh) in shards.iter().enumerate() {
            let (offsets, neighbors) = plan.local_csr(s);
            assert_eq!(offsets.len(), sh.len() + 1);
            for (i, v) in sh.nodes().enumerate() {
                assert_eq!(arena[plan.arena_offset(s) + i], states[v], "interior");
                let via_arena: Vec<u64> = neighbors[offsets[i]..offsets[i + 1]]
                    .iter()
                    .map(|&a| arena[a as usize])
                    .collect();
                let via_states: Vec<u64> = topo
                    .neighbors_of(v)
                    .iter()
                    .map(|&u| states[u as usize])
                    .collect();
                assert_eq!(via_arena, via_states, "node {v} port order");
            }
        }
        // scatter restores the interiors (and only reads them)
        let mut restored = vec![0u64; 120];
        plan.scatter_interiors(&arena, &mut restored);
        assert_eq!(restored, states);
    }
}
