//! Shards: contiguous node ranges with balanced round work.
//!
//! A synchronous round under double-buffered registers is an embarrassingly
//! parallel map, so the only scheduling question is how to split the node
//! range. Splitting by *node count* is wrong on skewed-degree graphs (one
//! shard inherits the hubs); [`partition_balanced`] instead splits by the
//! CSR **work prefix** (adjacency entries + nodes), so every shard performs
//! roughly the same number of register reads and writes per round.

use crate::topology::CsrTopology;

/// A contiguous range `[start, end)` of dense node indices owned by one
/// worker thread for the duration of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First node of the shard.
    pub start: usize,
    /// One past the last node of the shard.
    pub end: usize,
}

impl Shard {
    /// Number of nodes in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the shard owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The dense node indices of the shard.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Splits `0..n` into at most `count` non-empty shards whose per-round work
/// (register reads + writes, as measured by [`CsrTopology::work`]) is as
/// even as contiguity allows.
///
/// Returns fewer than `count` shards when the graph is too small to fill
/// them. Always returns at least one shard when the graph is non-empty.
pub fn partition_balanced(topo: &CsrTopology, count: usize) -> Vec<Shard> {
    let n = topo.node_count();
    let count = count.max(1);
    if n == 0 {
        return vec![Shard { start: 0, end: 0 }];
    }
    let total = topo.total_work();
    let mut shards = Vec::with_capacity(count);
    let mut start = 0usize;
    for k in 0..count {
        if start >= n {
            break;
        }
        // ideal cumulative work at the end of shard k
        let target = total * (k + 1) / count;
        let mut end = if k + 1 == count { n } else { start + 1 };
        while end < n && topo.work_prefix(end) < target {
            end += 1;
        }
        shards.push(Shard { start, end });
        start = end;
    }
    if let Some(last) = shards.last_mut() {
        last.end = n;
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{random_connected_graph, star_graph};

    fn work_of(topo: &CsrTopology, s: &Shard) -> usize {
        s.nodes().map(|v| topo.work(v)).sum()
    }

    #[test]
    fn shards_cover_the_range_exactly_once() {
        let g = random_connected_graph(101, 300, 3);
        let topo = CsrTopology::build(&g);
        for count in [1, 2, 3, 7, 16, 200] {
            let shards = partition_balanced(&topo, count);
            assert!(shards.len() <= count.max(1));
            assert_eq!(shards.first().unwrap().start, 0);
            assert_eq!(shards.last().unwrap().end, 101);
            for w in shards.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert!(shards.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn work_is_roughly_balanced() {
        let g = random_connected_graph(4000, 12000, 5);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 8);
        assert_eq!(shards.len(), 8);
        let works: Vec<usize> = shards.iter().map(|s| work_of(&topo, s)).collect();
        let avg = topo.total_work() / 8;
        for w in &works {
            assert!(
                *w > avg / 2 && *w < avg * 2,
                "shard work {w} too far from average {avg}"
            );
        }
    }

    #[test]
    fn hub_graph_does_not_collapse_into_one_shard() {
        // star: node 0 carries half the work; remaining shards still split
        // the leaves
        let g = star_graph(1000, 2);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 4);
        assert!(shards.len() >= 2);
        assert_eq!(shards.first().unwrap().start, 0);
        assert_eq!(shards.last().unwrap().end, 1000);
    }

    #[test]
    fn more_shards_than_nodes() {
        let g = random_connected_graph(3, 3, 1);
        let topo = CsrTopology::build(&g);
        let shards = partition_balanced(&topo, 64);
        assert_eq!(shards.iter().map(Shard::len).sum::<usize>(), 3);
        assert!(shards.len() <= 3);
    }
}
