//! Adapters: the paper's verifier and the self-stabilizing transformer on
//! the engine.
//!
//! [`smst_core::CoreVerifier`] already implements
//! [`NodeProgram`], so the engine runs it *unchanged*
//! — these drivers only mirror the sequential experiment harnesses of
//! [`smst_core::scheme`] and [`smst_selfstab`] on top of whatever execution
//! path an [`EngineConfig`] describes, producing the same outcome types so
//! downstream tables and figures accept either engine.
//!
//! Since the one-engine-API refactor there is a **single** fault-experiment
//! driver, [`run_engine_fault_experiment`]: the synchronous and
//! asynchronous variants differ only in the envelope's [`Mode`](crate::config::Mode) (and hence
//! in the warm-up budget), not in code path. The old per-runner entry
//! points shipped as `#[deprecated]` shims for one release and are gone.
//!
//! Because the engine's rounds are bit-for-bit identical to the sequential
//! ones, every number these functions return (warm-up rounds, detection
//! times, alarming nodes, memory) **equals** the sequential harness's
//! output; the adapter tests pin that equality.

use crate::config::{ConfigError, EngineConfig};
use crate::runner::{Runner, StopCondition};
use smst_core::faults::{corrupt, FaultKind};
use smst_core::scheme::FaultExperimentOutcome;
use smst_core::{CoreLabel, CoreVerifier, Marker, MstVerificationScheme};
use smst_graph::mst::kruskal;
use smst_graph::{ComponentMap, NodeId, WeightedGraph};
use smst_labeling::Instance;
use smst_selfstab::baselines::DetectionCost;
use smst_selfstab::{SelfStabilizingMst, StabilizationOutcome, Variant};
use smst_sim::{DetectionReport, FaultPlan, MemoryUsage, NodeProgram};

/// Per-node register sizes of a run, as reported by the program.
fn memory_bits(runner: &dyn Runner<CoreVerifier>, verifier: &CoreVerifier, n: usize) -> Vec<u64> {
    (0..n)
        .map(|v| verifier.state_bits(&runner.context(NodeId(v)), runner.state(NodeId(v))))
        .collect()
}

/// **The** engine fault experiment: warm the paper's verifier up on a
/// correct, marker-labelled instance, inject the planned faults, and
/// measure detection — on whatever execution path `engine` describes
/// (sequential reference, sharded synchronous with any layout/halo/pinning,
/// or any batch daemon). The warm-up budget is the scheme's synchronous
/// budget for synchronous envelopes and its asynchronous budget otherwise.
///
/// # Panics
///
/// Panics if the instance is not a correct MST instance (the experiment's
/// precondition); invalid envelopes return [`ConfigError`] instead.
pub fn run_engine_fault_experiment(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    seed: u64,
    engine: &EngineConfig,
) -> Result<FaultExperimentOutcome, ConfigError> {
    engine.validate()?;
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(instance)
        .expect("fault experiments start from a correct instance");
    let verifier = scheme.verifier(instance, labels);
    let n = instance.node_count();
    let budget = if engine.mode.is_async() {
        MstVerificationScheme::async_budget(n, instance.graph.max_degree())
    } else {
        MstVerificationScheme::sync_budget(n)
    };

    let mut runner = engine.instantiate(&verifier, instance.graph.clone())?;
    runner.run_until(StopCondition::Steps, budget);
    let warmup_rounds = runner.steps();
    assert!(
        !runner.any_alarm(),
        "a correct instance must not raise alarms during warm-up"
    );
    let memory = MemoryUsage::from_bits(memory_bits(runner.as_ref(), &verifier, n));

    let mut i = 0u64;
    runner.apply_faults(plan, &mut |_v, state| {
        corrupt(state, kind, seed.wrapping_add(i));
        i += 1;
    });

    let report = match runner.run_until(StopCondition::FirstAlarm, 4 * budget) {
        Some(t) => {
            DetectionReport::from_alarms(&instance.graph, t, runner.alarming_nodes(), plan.nodes())
        }
        None => DetectionReport::not_detected(),
    };
    Ok(FaultExperimentOutcome {
        warmup_rounds,
        report,
        memory,
    })
}

/// Engine mirror of [`smst_core::scheme::rounds_until_rejection`]: runs
/// the verifier on a (non-MST) instance with the given labels until the
/// first alarm, on whatever execution path `engine` describes.
pub fn rounds_until_rejection_engine(
    instance: &Instance,
    labels: Vec<CoreLabel>,
    max_rounds: usize,
    engine: &EngineConfig,
) -> Result<Option<usize>, ConfigError> {
    let verifier = MstVerificationScheme::new().verifier(instance, labels);
    let mut runner = engine.instantiate(&verifier, instance.graph.clone())?;
    Ok(runner.run_until(StopCondition::FirstAlarm, max_rounds))
}

/// Stale labels of the graph's correct MST (what an adversarially corrupted
/// configuration still carries); mirrors the transformer's baseline.
fn stale_core_labels(graph: &WeightedGraph) -> Option<Vec<CoreLabel>> {
    let tree = kruskal(graph).rooted_at(graph, NodeId(0)).ok()?;
    let correct = Instance::from_tree(graph.clone(), &tree);
    Marker.label(&correct).ok().map(|(labels, _)| labels)
}

/// One stabilization episode of the transformer with its **detection phase
/// executed on the engine** (the construction and marking phases are the
/// centralized reference algorithms, exactly as in
/// [`smst_selfstab::SelfStabilizingMst::stabilize`]).
///
/// Only [`Variant::Paper`] has a per-round distributed verifier to
/// parallelize; the baseline variants fall back to the sequential
/// transformer unchanged.
pub fn stabilize_with_engine(
    variant: Variant,
    graph: &WeightedGraph,
    initial_components: &ComponentMap,
    engine: &EngineConfig,
) -> Result<StabilizationOutcome, ConfigError> {
    engine.validate()?;
    let transformer = SelfStabilizingMst::new(variant);
    if variant != Variant::Paper {
        return Ok(transformer.stabilize(graph, initial_components));
    }
    let instance = Instance::new(graph.clone(), initial_components.clone());
    let already_correct = instance.satisfies_mst();

    // 1. detection, on the engine (mirrors the sequential baseline's
    //    stale-labels protocol, executed by whatever runner the envelope
    //    describes)
    let detection = if already_correct {
        DetectionCost {
            rounds: 0,
            detected: false,
        }
    } else {
        let budget = MstVerificationScheme::sync_budget(graph.node_count()) * 4;
        match stale_core_labels(graph) {
            Some(labels) => match rounds_until_rejection_engine(&instance, labels, budget, engine)?
            {
                Some(rounds) => DetectionCost {
                    rounds: rounds as u64,
                    detected: true,
                },
                None => DetectionCost {
                    rounds: budget as u64,
                    detected: false,
                },
            },
            None => DetectionCost {
                rounds: 1,
                detected: true,
            },
        }
    };

    // 2.–4. reset, reconstruction, memory and correctness accounting: the
    // transformer's own episode completion, shared with the sequential path
    Ok(transformer.complete_episode(graph, initial_components, already_correct, detection))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutPolicy;
    use smst_core::scheme::run_sync_fault_experiment;
    use smst_graph::generators::random_connected_graph;
    use smst_selfstab::transformer::garbage_components;
    use smst_selfstab::SelfStabilizingMst;
    use smst_sim::Daemon;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn engine_fault_experiment_equals_sequential_on_every_path() {
        let inst = mst_instance(16, 40, 3);
        let plan = FaultPlan::single(NodeId(7));
        let seq = run_sync_fault_experiment(&inst, &plan, FaultKind::SpDistance, 1);
        let envelopes = [
            EngineConfig::reference(),
            EngineConfig::new().threads(4),
            EngineConfig::new().threads(4).layout(LayoutPolicy::Rcm),
            EngineConfig::new()
                .threads(4)
                .layout(LayoutPolicy::Rcm)
                .halo(true),
        ];
        for engine in envelopes {
            let label = engine.describe();
            let par = run_engine_fault_experiment(&inst, &plan, FaultKind::SpDistance, 1, &engine)
                .expect("valid envelope");
            assert_eq!(par.warmup_rounds, seq.warmup_rounds, "{label}");
            assert_eq!(par.report.detected, seq.report.detected, "{label}");
            assert_eq!(
                par.report.detection_time, seq.report.detection_time,
                "{label}"
            );
            assert_eq!(par.report.alarm_nodes, seq.report.alarm_nodes, "{label}");
            assert_eq!(par.memory.max_bits(), seq.memory.max_bits(), "{label}");
        }
    }

    #[test]
    fn invalid_envelope_is_an_error_not_a_panic() {
        let inst = mst_instance(12, 30, 2);
        let plan = FaultPlan::single(NodeId(3));
        let err = run_engine_fault_experiment(
            &inst,
            &plan,
            FaultKind::SpDistance,
            1,
            &EngineConfig::new().threads(0),
        )
        .expect_err("zero threads must be rejected");
        assert_eq!(err, ConfigError::ZeroThreads);
    }

    #[test]
    fn transformer_stabilizes_on_the_engine_and_matches_sequential() {
        let g = random_connected_graph(18, 45, 5);
        let components = garbage_components(&g, 7);
        let seq = SelfStabilizingMst::new(Variant::Paper).stabilize(&g, &components);
        let par = stabilize_with_engine(
            Variant::Paper,
            &g,
            &components,
            &EngineConfig::new().threads(3),
        )
        .expect("valid envelope");
        assert!(par.output_correct);
        assert_eq!(par.detection_rounds, seq.detection_rounds);
        assert_eq!(par.construction_rounds, seq.construction_rounds);
        assert_eq!(par.memory_bits_per_node, seq.memory_bits_per_node);
    }

    #[test]
    fn baseline_variants_fall_back_to_the_sequential_transformer() {
        let g = random_connected_graph(14, 35, 2);
        let components = garbage_components(&g, 4);
        let outcome = stabilize_with_engine(
            Variant::Recompute,
            &g,
            &components,
            &EngineConfig::new().threads(2),
        )
        .expect("valid envelope");
        assert!(outcome.output_correct);
    }

    #[test]
    fn async_envelope_detects_injected_faults() {
        // path graph: Δ = 2 keeps the async warm-up budget small
        let g = smst_graph::generators::path_graph(8, 9);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g, &tree);
        let plan = FaultPlan::single(NodeId(5));
        let outcome = run_engine_fault_experiment(
            &inst,
            &plan,
            FaultKind::SpDistance,
            2,
            &EngineConfig::new()
                .threads(2)
                .asynchronous(Daemon::RoundRobin, 4),
        )
        .expect("valid envelope");
        assert!(outcome.report.detected);
    }
}
