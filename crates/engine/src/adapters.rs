//! Adapters: the paper's verifier and the self-stabilizing transformer on
//! the engine.
//!
//! [`smst_core::CoreVerifier`] already implements
//! [`NodeProgram`](smst_sim::NodeProgram), so the engine runs it *unchanged*
//! — these drivers only mirror the sequential experiment harnesses of
//! [`smst_core::scheme`] and [`smst_selfstab`] on top of
//! [`ParallelSyncRunner`] / [`ShardedAsyncRunner`], producing the same
//! outcome types so downstream tables and figures accept either engine.
//!
//! Because the parallel synchronous rounds are bit-for-bit identical to the
//! sequential ones, every number these functions return (warm-up rounds,
//! detection times, alarming nodes, memory) **equals** the sequential
//! harness's output; the adapter tests pin that equality.

use crate::layout::LayoutPolicy;
use crate::parallel_sync::ParallelSyncRunner;
use crate::sharded_async::ShardedAsyncRunner;
use smst_core::faults::{corrupt, FaultKind};
use smst_core::scheme::FaultExperimentOutcome;
use smst_core::{CoreLabel, CoreVerifier, Marker, MstVerificationScheme};
use smst_graph::mst::kruskal;
use smst_graph::{ComponentMap, NodeId, WeightedGraph};
use smst_labeling::Instance;
use smst_selfstab::baselines::DetectionCost;
use smst_selfstab::{SelfStabilizingMst, StabilizationOutcome, Variant};
use smst_sim::{
    BatchDaemon, ChunkedDaemon, Daemon, DetectionReport, FaultPlan, MemoryUsage, NodeProgram,
};

/// Per-node register sizes of a parallel run, as reported by the program.
fn memory_bits(runner: &ParallelSyncRunner<'_, CoreVerifier>) -> Vec<u64> {
    (0..runner.graph().node_count())
        .map(|v| {
            runner
                .program()
                .state_bits(runner.context(NodeId(v)), runner.state(NodeId(v)))
        })
        .collect()
}

/// Parallel mirror of [`smst_core::scheme::run_sync_fault_experiment`]:
/// warm the verifier up on a correct, marker-labelled instance, inject the
/// planned faults, and measure synchronous detection — over `threads`
/// shards.
///
/// # Panics
///
/// Panics if the instance is not a correct MST instance.
pub fn run_parallel_sync_fault_experiment(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    seed: u64,
    threads: usize,
) -> FaultExperimentOutcome {
    run_parallel_sync_fault_experiment_with_layout(
        instance,
        plan,
        kind,
        seed,
        threads,
        LayoutPolicy::Identity,
    )
}

/// [`run_parallel_sync_fault_experiment`] with an explicit [`LayoutPolicy`]
/// (RCM renumbering before sharding; the outcome is layout-invariant, only
/// wall-clock changes).
pub fn run_parallel_sync_fault_experiment_with_layout(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    seed: u64,
    threads: usize,
    layout: LayoutPolicy,
) -> FaultExperimentOutcome {
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(instance)
        .expect("fault experiments start from a correct instance");
    let verifier = scheme.verifier(instance, labels);
    let n = instance.node_count();
    let budget = MstVerificationScheme::sync_budget(n);

    let mut runner =
        ParallelSyncRunner::with_layout(&verifier, instance.graph.clone(), threads, layout);
    runner.run_rounds(budget);
    let warmup_rounds = runner.rounds();
    assert!(
        runner.alarming_nodes().is_empty(),
        "a correct instance must not raise alarms during warm-up"
    );
    let memory = MemoryUsage::from_bits(memory_bits(&runner));

    let mut i = 0u64;
    runner.apply_faults(plan, |_v, state| {
        corrupt(state, kind, seed.wrapping_add(i));
        i += 1;
    });

    let report = match runner.run_until_alarm(4 * budget) {
        Some(t) => {
            DetectionReport::from_alarms(&instance.graph, t, runner.alarming_nodes(), plan.nodes())
        }
        None => DetectionReport::not_detected(),
    };
    FaultExperimentOutcome {
        warmup_rounds,
        report,
        memory,
    }
}

/// Sharded-daemon mirror of
/// [`smst_core::scheme::run_async_fault_experiment`]: the same experiment
/// under a central asynchronous daemon executed in parallel batches of
/// `batch` simultaneous activations.
pub fn run_sharded_async_fault_experiment(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    daemon: Daemon,
    seed: u64,
    batch: usize,
    threads: usize,
) -> FaultExperimentOutcome {
    run_batch_daemon_fault_experiment(
        instance,
        plan,
        kind,
        Box::new(ChunkedDaemon::new(daemon, batch)),
        seed,
        threads,
    )
}

/// The fully general asynchronous fault experiment: the paper's verifier
/// under **any** [`BatchDaemon`] (chunked central daemons and the
/// adversarial batch daemons of `smst-adversary` alike).
pub fn run_batch_daemon_fault_experiment(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    daemon: Box<dyn BatchDaemon>,
    seed: u64,
    threads: usize,
) -> FaultExperimentOutcome {
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(instance)
        .expect("fault experiments start from a correct instance");
    let verifier = scheme.verifier(instance, labels);
    let n = instance.node_count();
    let budget = MstVerificationScheme::async_budget(n, instance.graph.max_degree());

    let mut runner = ShardedAsyncRunner::with_batch_daemon(
        &verifier,
        instance.graph.clone(),
        daemon,
        threads,
        LayoutPolicy::Identity,
    );
    runner.run_time_units(budget);
    let warmup_rounds = runner.time_units();
    assert!(
        !runner.any_alarm(),
        "a correct instance must not raise alarms during warm-up"
    );
    let memory = {
        let bits: Vec<u64> = (0..n)
            .map(|v| verifier.state_bits(runner.context(NodeId(v)), runner.state(NodeId(v))))
            .collect();
        MemoryUsage::from_bits(bits)
    };

    let mut i = 0u64;
    runner.apply_faults(plan, |_v, state| {
        corrupt(state, kind, seed.wrapping_add(i));
        i += 1;
    });

    let report = match runner.run_until_alarm(4 * budget) {
        Some(t) => {
            DetectionReport::from_alarms(&instance.graph, t, runner.alarming_nodes(), plan.nodes())
        }
        None => DetectionReport::not_detected(),
    };
    FaultExperimentOutcome {
        warmup_rounds,
        report,
        memory,
    }
}

/// Parallel mirror of [`smst_core::scheme::rounds_until_rejection`]: runs
/// the verifier on a (non-MST) instance with the given labels until the
/// first alarm.
pub fn rounds_until_rejection_parallel(
    instance: &Instance,
    labels: Vec<CoreLabel>,
    max_rounds: usize,
    threads: usize,
) -> Option<usize> {
    let verifier = MstVerificationScheme::new().verifier(instance, labels);
    let mut runner = ParallelSyncRunner::new(&verifier, instance.graph.clone(), threads);
    runner.run_until_alarm(max_rounds)
}

/// Stale labels of the graph's correct MST (what an adversarially corrupted
/// configuration still carries); mirrors the transformer's baseline.
fn stale_core_labels(graph: &WeightedGraph) -> Option<Vec<CoreLabel>> {
    let tree = kruskal(graph).rooted_at(graph, NodeId(0)).ok()?;
    let correct = Instance::from_tree(graph.clone(), &tree);
    Marker.label(&correct).ok().map(|(labels, _)| labels)
}

/// One stabilization episode of the transformer with its **detection phase
/// executed on the engine** (the construction and marking phases are the
/// centralized reference algorithms, exactly as in
/// [`smst_selfstab::SelfStabilizingMst::stabilize`]).
///
/// Only [`Variant::Paper`] has a per-round distributed verifier to
/// parallelize; the baseline variants fall back to the sequential
/// transformer unchanged.
pub fn stabilize_with_engine(
    variant: Variant,
    graph: &WeightedGraph,
    initial_components: &ComponentMap,
    threads: usize,
) -> StabilizationOutcome {
    let transformer = SelfStabilizingMst::new(variant);
    if variant != Variant::Paper {
        return transformer.stabilize(graph, initial_components);
    }
    let instance = Instance::new(graph.clone(), initial_components.clone());
    let already_correct = instance.satisfies_mst();

    // 1. detection, on the parallel engine (mirrors the sequential
    //    baseline's stale-labels protocol, executed by the sharded runner)
    let detection = if already_correct {
        DetectionCost {
            rounds: 0,
            detected: false,
        }
    } else {
        let budget = MstVerificationScheme::sync_budget(graph.node_count()) * 4;
        match stale_core_labels(graph) {
            Some(labels) => {
                match rounds_until_rejection_parallel(&instance, labels, budget, threads) {
                    Some(rounds) => DetectionCost {
                        rounds: rounds as u64,
                        detected: true,
                    },
                    None => DetectionCost {
                        rounds: budget as u64,
                        detected: false,
                    },
                }
            }
            None => DetectionCost {
                rounds: 1,
                detected: true,
            },
        }
    };

    // 2.–4. reset, reconstruction, memory and correctness accounting: the
    // transformer's own episode completion, shared with the sequential path
    transformer.complete_episode(graph, initial_components, already_correct, detection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_core::scheme::run_sync_fault_experiment;
    use smst_graph::generators::random_connected_graph;
    use smst_selfstab::transformer::garbage_components;
    use smst_selfstab::SelfStabilizingMst;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn parallel_fault_experiment_equals_sequential() {
        let inst = mst_instance(16, 40, 3);
        let plan = FaultPlan::single(NodeId(7));
        let seq = run_sync_fault_experiment(&inst, &plan, FaultKind::SpDistance, 1);
        for layout in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
            let par = run_parallel_sync_fault_experiment_with_layout(
                &inst,
                &plan,
                FaultKind::SpDistance,
                1,
                4,
                layout,
            );
            assert_eq!(par.warmup_rounds, seq.warmup_rounds, "{layout:?}");
            assert_eq!(par.report.detected, seq.report.detected, "{layout:?}");
            assert_eq!(
                par.report.detection_time, seq.report.detection_time,
                "{layout:?}"
            );
            assert_eq!(par.report.alarm_nodes, seq.report.alarm_nodes, "{layout:?}");
            assert_eq!(par.memory.max_bits(), seq.memory.max_bits(), "{layout:?}");
        }
    }

    #[test]
    fn transformer_stabilizes_on_the_engine_and_matches_sequential() {
        let g = random_connected_graph(18, 45, 5);
        let components = garbage_components(&g, 7);
        let seq = SelfStabilizingMst::new(Variant::Paper).stabilize(&g, &components);
        let par = stabilize_with_engine(Variant::Paper, &g, &components, 3);
        assert!(par.output_correct);
        assert_eq!(par.detection_rounds, seq.detection_rounds);
        assert_eq!(par.construction_rounds, seq.construction_rounds);
        assert_eq!(par.memory_bits_per_node, seq.memory_bits_per_node);
    }

    #[test]
    fn baseline_variants_fall_back_to_the_sequential_transformer() {
        let g = random_connected_graph(14, 35, 2);
        let components = garbage_components(&g, 4);
        let outcome = stabilize_with_engine(Variant::Recompute, &g, &components, 2);
        assert!(outcome.output_correct);
    }

    #[test]
    fn async_adapter_detects_injected_faults() {
        // path graph: Δ = 2 keeps the async warm-up budget small
        let g = smst_graph::generators::path_graph(8, 9);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g, &tree);
        let plan = FaultPlan::single(NodeId(5));
        let outcome = run_sharded_async_fault_experiment(
            &inst,
            &plan,
            FaultKind::SpDistance,
            Daemon::RoundRobin,
            2,
            4,
            2,
        );
        assert!(outcome.report.detected);
    }
}
