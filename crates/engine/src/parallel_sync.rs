//! The sharded, parallel synchronous executor.
//!
//! [`ParallelSyncRunner`] executes the same lock-step rounds as
//! [`smst_sim::SyncRunner`], but over shards: the register vector is
//! **double-buffered**, every round is a pure function of the previous
//! round's registers, and each worker thread computes the next registers of
//! one contiguous [`Shard`](crate::shard::Shard) into its disjoint slice of
//! the scratch buffer. The buffers are swapped at the end of the round —
//! no locks, no atomics, no `unsafe`.
//!
//! # Determinism
//!
//! A synchronous round is deterministic by construction ([`NodeProgram`]
//! implementations are required to be deterministic functions of the read
//! registers), and sharding only changes *who computes* a register, never
//! *what it reads*. Final states are therefore **bit-for-bit identical** to
//! the sequential [`SyncRunner`](smst_sim::SyncRunner) at every thread
//! count; `tests/` pins this with a per-round differential test.

use crate::shard::{partition_balanced, Shard};
use crate::topology::CsrTopology;
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{FaultPlan, Network, NodeContext, NodeProgram, Verdict};

/// Runs a [`NodeProgram`] in lock-step synchronous rounds, one shard per
/// worker thread.
#[derive(Debug)]
pub struct ParallelSyncRunner<'p, P: NodeProgram> {
    program: &'p P,
    graph: WeightedGraph,
    topo: CsrTopology,
    contexts: Vec<NodeContext>,
    states: Vec<P::State>,
    scratch: Vec<P::State>,
    shards: Vec<Shard>,
    threads: usize,
    rounds: usize,
}

impl<'p, P> ParallelSyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    /// Creates a runner over `graph` with every register initialized by
    /// `program.init`, using `threads` worker threads.
    pub fn new(program: &'p P, graph: WeightedGraph, threads: usize) -> Self {
        let contexts: Vec<NodeContext> = graph
            .nodes()
            .map(|v| NodeContext::for_node(&graph, v))
            .collect();
        let states: Vec<P::State> = contexts.iter().map(|ctx| program.init(ctx)).collect();
        Self::from_parts(program, graph, contexts, states, threads)
    }

    /// Creates a runner with explicitly provided initial registers
    /// (arbitrary / adversarial initialization).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn with_states(
        program: &'p P,
        graph: WeightedGraph,
        states: Vec<P::State>,
        threads: usize,
    ) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "one initial state per node is required"
        );
        let contexts: Vec<NodeContext> = graph
            .nodes()
            .map(|v| NodeContext::for_node(&graph, v))
            .collect();
        Self::from_parts(program, graph, contexts, states, threads)
    }

    /// Adopts the graph and current registers of a sequential [`Network`],
    /// so existing programs migrate without changes.
    pub fn from_network(program: &'p P, network: &Network<P>, threads: usize) -> Self {
        Self::with_states(
            program,
            network.graph().clone(),
            network.states().to_vec(),
            threads,
        )
    }

    fn from_parts(
        program: &'p P,
        graph: WeightedGraph,
        contexts: Vec<NodeContext>,
        states: Vec<P::State>,
        threads: usize,
    ) -> Self {
        let topo = CsrTopology::build(&graph);
        let threads = threads.max(1);
        let shards = partition_balanced(&topo, threads);
        let scratch = states.clone();
        ParallelSyncRunner {
            program,
            graph,
            topo,
            contexts,
            states,
            scratch,
            shards,
            threads,
            rounds: 0,
        }
    }

    /// The number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The worker-thread count the runner was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shard layout (one entry per worker).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The graph being executed.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// The program being executed.
    pub fn program(&self) -> &P {
        self.program
    }

    /// All registers, indexed by dense node id.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The register of one node.
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[v.index()]
    }

    /// Mutable access to one register (fault injection).
    pub fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        &mut self.states[v.index()]
    }

    /// The static context of a node.
    pub fn context(&self, v: NodeId) -> &NodeContext {
        &self.contexts[v.index()]
    }

    /// Applies a [`FaultPlan`] by passing every planned node's register to
    /// `mutate` (mirrors [`FaultPlan::apply`] for the sequential runner).
    pub fn apply_faults<F>(&mut self, plan: &FaultPlan, mut mutate: F)
    where
        F: FnMut(NodeId, &mut P::State),
    {
        for &v in plan.nodes() {
            mutate(v, &mut self.states[v.index()]);
        }
    }

    /// Consumes the runner, returning a sequential [`Network`] holding the
    /// final registers (interop with the rest of the workspace).
    pub fn into_network(self) -> Network<P> {
        Network::with_states(self.graph, self.states)
    }

    /// Executes exactly one synchronous round.
    pub fn step_round(&mut self) {
        let program = self.program;
        let topo = &self.topo;
        let contexts = &self.contexts;
        let states = &self.states;
        if self.shards.len() == 1 {
            // no thread launch on the single-shard path
            compute_shard(
                program,
                topo,
                contexts,
                states,
                self.shards[0],
                &mut self.scratch,
            );
        } else {
            // hand each worker its disjoint slice of the scratch buffer
            let mut slices: Vec<(Shard, &mut [P::State])> = Vec::with_capacity(self.shards.len());
            let mut rest: &mut [P::State] = &mut self.scratch;
            for &shard in &self.shards {
                let (chunk, tail) = rest.split_at_mut(shard.len());
                slices.push((shard, chunk));
                rest = tail;
            }
            std::thread::scope(|scope| {
                for (shard, out) in slices {
                    scope.spawn(move || {
                        compute_shard(program, topo, contexts, states, shard, out);
                    });
                }
            });
        }
        std::mem::swap(&mut self.states, &mut self.scratch);
        self.rounds += 1;
    }

    /// Executes `count` rounds.
    pub fn run_rounds(&mut self, count: usize) {
        for _ in 0..count {
            self.step_round();
        }
    }

    /// Runs until `stop` returns `true` (checked after each round) or until
    /// `max_rounds` additional rounds have elapsed. Returns the number of
    /// rounds executed by this call if the condition was met.
    pub fn run_until<F>(&mut self, max_rounds: usize, mut stop: F) -> Option<usize>
    where
        F: FnMut(&[P::State]) -> bool,
    {
        if stop(&self.states) {
            return Some(0);
        }
        for executed in 1..=max_rounds {
            self.step_round();
            if stop(&self.states) {
                return Some(executed);
            }
        }
        None
    }

    /// The verdicts of all nodes under the current configuration.
    pub fn verdicts(&self) -> Vec<Verdict> {
        self.contexts
            .iter()
            .zip(&self.states)
            .map(|(ctx, s)| self.program.verdict(ctx, s))
            .collect()
    }

    /// The nodes currently raising an alarm.
    pub fn alarming_nodes(&self) -> Vec<NodeId> {
        self.contexts
            .iter()
            .zip(&self.states)
            .enumerate()
            .filter(|(_, (ctx, s))| self.program.verdict(ctx, s) == Verdict::Reject)
            .map(|(v, _)| NodeId(v))
            .collect()
    }

    /// `true` if at least one node raises an alarm.
    pub fn any_alarm(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .any(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Reject)
    }

    /// `true` if every node accepts.
    pub fn all_accept(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .all(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Accept)
    }

    /// Runs until some node raises an alarm, for at most `max_rounds`
    /// rounds. Returns the detection time in rounds.
    pub fn run_until_alarm(&mut self, max_rounds: usize) -> Option<usize> {
        if self.any_alarm() {
            return Some(0);
        }
        for executed in 1..=max_rounds {
            self.step_round();
            if self.any_alarm() {
                return Some(executed);
            }
        }
        None
    }

    /// Runs until every node accepts, for at most `max_rounds` rounds.
    pub fn run_until_all_accept(&mut self, max_rounds: usize) -> Option<usize> {
        if self.all_accept() {
            return Some(0);
        }
        for executed in 1..=max_rounds {
            self.step_round();
            if self.all_accept() {
                return Some(executed);
            }
        }
        None
    }
}

impl<'p, P> ParallelSyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync + PartialEq,
{
    /// Runs until a fixpoint (no register changed in a round), for at most
    /// `max_rounds` rounds. Returns the number of rounds until the first
    /// unchanged round.
    pub fn run_to_fixpoint(&mut self, max_rounds: usize) -> Option<usize> {
        for executed in 1..=max_rounds {
            self.step_round();
            // after the swap, `scratch` holds the previous round's registers
            if self.states == self.scratch {
                return Some(executed);
            }
        }
        None
    }
}

/// Computes the next registers of one shard into `out`
/// (`out[i]` ↔ node `shard.start + i`).
fn compute_shard<P: NodeProgram>(
    program: &P,
    topo: &CsrTopology,
    contexts: &[NodeContext],
    states: &[P::State],
    shard: Shard,
    out: &mut [P::State],
) {
    debug_assert_eq!(out.len(), shard.len());
    let mut neighbor_buf: Vec<&P::State> = Vec::with_capacity(16);
    for (slot, v) in out.iter_mut().zip(shard.nodes()) {
        neighbor_buf.clear();
        neighbor_buf.extend(topo.neighbors_of(v).iter().map(|&u| &states[u as usize]));
        *slot = program.step(&contexts[v], &states[v], &neighbor_buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{path_graph, random_connected_graph};
    use smst_sim::SyncRunner;

    /// Propagates the minimum identity (same toy program as the sim tests).
    struct MinId;

    impl NodeProgram for MinId {
        type State = u64;
        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }
        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }
        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }
    }

    #[test]
    fn matches_sequential_runner_every_round() {
        let g = random_connected_graph(60, 150, 11);
        for threads in [1, 2, 4, 7] {
            let mut par = ParallelSyncRunner::new(&MinId, g.clone(), threads);
            let mut seq = SyncRunner::new(&MinId, Network::new(&MinId, g.clone()));
            for round in 0..12 {
                assert_eq!(
                    par.states(),
                    seq.network().states(),
                    "round {round}, {threads} threads"
                );
                par.step_round();
                seq.step_round();
            }
        }
    }

    #[test]
    fn converges_like_the_sequential_runner() {
        let g = path_graph(10, 0);
        let d = g.diameter().unwrap();
        let mut runner = ParallelSyncRunner::new(&MinId, g, 3);
        let t = runner.run_until_all_accept(100).unwrap();
        assert_eq!(t, d);
        assert_eq!(runner.rounds(), d);
    }

    #[test]
    fn fixpoint_detection() {
        let g = random_connected_graph(12, 20, 1);
        let mut runner = ParallelSyncRunner::new(&MinId, g, 4);
        let t = runner.run_to_fixpoint(100).unwrap();
        assert!(t <= 13);
        assert!(runner.all_accept());
    }

    #[test]
    fn fault_injection_and_healing() {
        let g = random_connected_graph(30, 80, 2);
        let mut runner = ParallelSyncRunner::new(&MinId, g, 4);
        runner.run_to_fixpoint(100).unwrap();
        let plan = FaultPlan::random(30, 5, 9);
        runner.apply_faults(&plan, |_v, s| *s = u64::MAX);
        assert!(!runner.all_accept());
        runner.run_until_all_accept(100).unwrap();
        assert!(runner.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn from_network_adopts_registers() {
        let g = path_graph(5, 0);
        let mut net = Network::new(&MinId, g);
        net.set_state(NodeId(4), 99);
        let runner = ParallelSyncRunner::from_network(&MinId, &net, 2);
        assert_eq!(runner.state(NodeId(4)), &99);
        let back = runner.into_network();
        assert_eq!(back.state(NodeId(4)), &99);
    }

    #[test]
    fn run_until_counts_and_times_out() {
        let g = path_graph(6, 0);
        let mut runner = ParallelSyncRunner::new(&MinId, g, 2);
        assert_eq!(runner.run_until(2, |_| false), None);
        assert_eq!(runner.rounds(), 2);
        assert_eq!(runner.run_until(10, |_| true), Some(0));
    }
}
