//! The sharded, parallel synchronous executor.
//!
//! [`ParallelSyncRunner`] executes the same lock-step rounds as
//! [`smst_sim::SyncRunner`], but over shards: the register vector is
//! **double-buffered**, every round is a pure function of the previous
//! round's registers, and each worker computes the next registers of one
//! contiguous [`Shard`] into its disjoint slice of the
//! scratch buffer — a shard-local state arena. Workers come from a
//! persistent [`WorkerPool`](crate::pool::WorkerPool): rounds are
//! dispatched by bumping an epoch on parked threads (no per-round thread
//! spawns), and [`run_rounds`](ParallelSyncRunner::run_rounds) hands the
//! pool a whole chunk of rounds at once, so workers synchronize on a
//! lightweight round barrier between rounds instead of returning to the
//! dispatcher.
//!
//! An optional [`LayoutPolicy`] renumbers nodes (RCM) before sharding so
//! that neighbour reads stay inside the shard's arena; see
//! [`crate::layout`]. All public APIs speak original node ids regardless.
//!
//! # Determinism
//!
//! A synchronous round is deterministic by construction ([`NodeProgram`]
//! implementations are required to be deterministic functions of the read
//! registers), sharding only changes *who computes* a register, never *what
//! it reads*, and the layout pass preserves each node's port order exactly.
//! Final states are therefore **bit-for-bit identical** to the sequential
//! [`SyncRunner`](smst_sim::SyncRunner) at every thread count, with the
//! layout pass on or off; `tests/` pins this with per-round differential
//! and property tests.
//!
//! # Recovery
//!
//! Under a [`RecoveryPolicy`] with retries, every step chunk is guarded:
//! the runner snapshots its registers before dispatch, catches a worker
//! panic (the pool has already respawned the dead worker), restores the
//! snapshot, sleeps the backoff and replays the chunk. A successful replay
//! starts from the exact pre-chunk registers, so recovery is invisible in
//! the deterministic trace. Exhausted retries (and barrier-watchdog
//! timeouts, which are never retried) surface as typed [`PoolError`]s
//! through [`try_step_round`](ParallelSyncRunner::try_step_round) /
//! [`Runner::try_step`].

use crate::config::{
    ArmedInjection, Backend, ConfigError, EngineConfig, EngineError, InjectionSpec, RecoveryPolicy,
};
use crate::layout::{Layout, LayoutPolicy};
use crate::pool::{
    panic_message, BarrierTimeoutPanic, PhaseTimes, PinPolicy, PoolError, PoolHandle,
};
use crate::runner::{RunReport, Runner, StopCondition};
use crate::shard::{partition_balanced, HaloPlan, Shard};
use crate::topology::CsrTopology;
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{FaultPlan, Network, NodeContext, NodeProgram, RoundObserver, RoundStats, Verdict};

/// The halo-exchange machinery of a runner: the boundary analysis plus the
/// double-buffered shard-local arenas (kept across calls so repeated
/// `run_rounds` reuse the allocations).
#[derive(Debug)]
struct HaloState<S> {
    plan: HaloPlan,
    front: Vec<S>,
    back: Vec<S>,
}

/// Runs a [`NodeProgram`] in lock-step synchronous rounds, one shard per
/// pool worker.
#[derive(Debug)]
pub struct ParallelSyncRunner<'p, P: NodeProgram> {
    program: &'p P,
    graph: WeightedGraph,
    /// CSR in internal (layout) order.
    topo: CsrTopology,
    layout: Layout,
    /// Contexts and registers in internal (layout) order.
    contexts: Vec<NodeContext>,
    states: Vec<P::State>,
    scratch: Vec<P::State>,
    shards: Vec<Shard>,
    /// Shard boundaries as pool-dispatch bounds (`len == shards.len() + 1`).
    bounds: Vec<usize>,
    /// `Some` when the runner executes rounds in halo-exchange mode.
    halo: Option<HaloState<P::State>>,
    pool: PoolHandle,
    pin: PinPolicy,
    threads: usize,
    rounds: usize,
    /// Supervised recovery for panicked chunks + the barrier watchdog.
    recovery: RecoveryPolicy,
    /// A one-shot chaos injection, armed until it fires.
    injection: Option<ArmedInjection>,
    /// Per-round measurement hook; while attached, multi-round chunks run
    /// round-granular so every boundary is observed.
    observer: Option<Box<dyn RoundObserver>>,
    /// Phase accumulators for observed rounds (compute / barrier / halo
    /// exchange); drained into each [`RoundStats`]. Only written while an
    /// observer is attached — unobserved runs never read the clock.
    phases: PhaseTimes,
}

impl<'p, P> ParallelSyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    /// Creates a runner over `graph` with every register initialized by
    /// `program.init`, using `threads` worker threads and no layout pass.
    pub fn new(program: &'p P, graph: WeightedGraph, threads: usize) -> Self {
        Self::init_and_build(program, graph, threads, LayoutPolicy::Identity)
    }

    /// Builds the runner an [`EngineConfig`] describes (a synchronous
    /// sharded envelope): threads, layout, halo mode and pinning all come
    /// from the one validated config — the typed-constructor twin of
    /// [`EngineConfig::instantiate`] for callers that need the concrete
    /// runner (e.g. to inspect [`halo_plan`](Self::halo_plan) or
    /// [`shards`](Self::shards)).
    pub fn from_config(
        program: &'p P,
        graph: WeightedGraph,
        config: &EngineConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.backend != Backend::Sharded || config.mode.is_async() {
            return Err(ConfigError::WrongMode {
                expected: "sharded synchronous",
                got: config.describe(),
            });
        }
        Ok(
            Self::init_and_build(program, graph, config.threads, config.layout)
                .halo_exchange(config.halo)
                .pinning(config.pin)
                .apply_chaos_knobs(config),
        )
    }

    /// [`from_config`](Self::from_config) with explicitly provided initial
    /// registers (arbitrary / adversarial initialization), indexed by
    /// original node id — the config-validated twin of
    /// [`with_states`](Self::with_states).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn from_config_with_states(
        program: &'p P,
        graph: WeightedGraph,
        states: Vec<P::State>,
        config: &EngineConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.backend != Backend::Sharded || config.mode.is_async() {
            return Err(ConfigError::WrongMode {
                expected: "sharded synchronous",
                got: config.describe(),
            });
        }
        Ok(
            Self::states_and_build(program, graph, states, config.threads, config.layout)
                .halo_exchange(config.halo)
                .pinning(config.pin)
                .apply_chaos_knobs(config),
        )
    }

    fn apply_chaos_knobs(mut self, config: &EngineConfig) -> Self {
        self.recovery = config.recovery;
        self.injection = config.injection.map(ArmedInjection::new);
        self
    }

    fn init_and_build(
        program: &'p P,
        graph: WeightedGraph,
        threads: usize,
        policy: LayoutPolicy,
    ) -> Self {
        let states: Vec<P::State> = graph
            .nodes()
            .map(|v| program.init(&NodeContext::for_node(&graph, v)))
            .collect();
        Self::from_parts(program, graph, states, threads, policy)
    }

    /// Creates a runner with explicitly provided initial registers
    /// (arbitrary / adversarial initialization), indexed by original node
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn with_states(
        program: &'p P,
        graph: WeightedGraph,
        states: Vec<P::State>,
        threads: usize,
    ) -> Self {
        Self::states_and_build(program, graph, states, threads, LayoutPolicy::Identity)
    }

    fn states_and_build(
        program: &'p P,
        graph: WeightedGraph,
        states: Vec<P::State>,
        threads: usize,
        policy: LayoutPolicy,
    ) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "one initial state per node is required"
        );
        Self::from_parts(program, graph, states, threads, policy)
    }

    /// Adopts the graph and current registers of a sequential [`Network`],
    /// so existing programs migrate without changes.
    pub fn from_network(program: &'p P, network: &Network<P>, threads: usize) -> Self {
        Self::with_states(
            program,
            network.graph().clone(),
            network.states().to_vec(),
            threads,
        )
    }

    fn from_parts(
        program: &'p P,
        graph: WeightedGraph,
        states: Vec<P::State>,
        threads: usize,
        policy: LayoutPolicy,
    ) -> Self {
        let base_topo = CsrTopology::build(&graph);
        let layout = policy.build(&base_topo);
        let topo = layout.apply(&base_topo);
        let contexts: Vec<NodeContext> = (0..graph.node_count())
            .map(|internal| NodeContext::for_node(&graph, NodeId(layout.original(internal))))
            .collect();
        let states = layout.permute(states);
        let threads = threads.max(1);
        let shards = partition_balanced(&topo, threads);
        let mut bounds: Vec<usize> = shards.iter().map(|s| s.start).collect();
        bounds.push(shards.last().map_or(0, |s| s.end));
        let scratch = states.clone();
        let pool = PoolHandle::for_threads(threads);
        ParallelSyncRunner {
            program,
            graph,
            topo,
            layout,
            contexts,
            states,
            scratch,
            shards,
            bounds,
            halo: None,
            pool,
            pin: PinPolicy::None,
            threads,
            rounds: 0,
            recovery: RecoveryPolicy::default(),
            injection: None,
            observer: None,
            phases: PhaseTimes::new(),
        }
    }

    /// Sets the [`RecoveryPolicy`] guarding every step chunk (retries,
    /// backoff, barrier watchdog). Results are recovery-invariant: a
    /// successful retry replays from the pre-chunk registers.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Arms a one-shot chaos [`InjectionSpec`] (tests and campaigns): the
    /// matching `(round, shard)` compute misbehaves exactly once.
    pub fn inject(mut self, spec: InjectionSpec) -> Self {
        self.injection = Some(ArmedInjection::new(spec));
        self
    }

    /// Attaches a [`RoundObserver`] invoked after every round (replacing
    /// any previous one). While observed, multi-round chunks run
    /// round-granular (an epoch dispatch per round instead of one per
    /// chunk) so every round boundary is measurable — results never
    /// change, only wall-clock.
    pub fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn RoundObserver>> {
        self.observer.take()
    }

    /// Switches the halo-exchange execution mode on or off (off by
    /// default). In halo mode every worker computes on a **shard-local
    /// arena** of interior registers plus halo copies of its external
    /// neighbours, and rounds end with an explicit pull exchange that
    /// refreshes the halos — cross-shard traffic becomes one measurable
    /// step per round instead of incidental cache misses. Results are
    /// bit-for-bit identical to the direct mode (and to the sequential
    /// [`SyncRunner`](smst_sim::SyncRunner)): the halo copies are refreshed
    /// exactly at round boundaries, matching double-buffer semantics.
    pub fn halo_exchange(mut self, enabled: bool) -> Self {
        if enabled {
            if self.halo.is_none() {
                self.halo = Some(Self::build_halo_state(&self.topo, &self.shards));
            }
        } else {
            self.halo = None;
        }
        self
    }

    fn build_halo_state(topo: &CsrTopology, shards: &[Shard]) -> HaloState<P::State> {
        HaloState {
            plan: HaloPlan::build(topo, shards),
            front: Vec::new(),
            back: Vec::new(),
        }
    }

    /// Sets the worker [`PinPolicy`], re-acquiring a pool whose workers
    /// were spawned under it (pinning is a property of the spawned
    /// threads). Purely a wall-clock knob — results never change.
    pub fn pinning(mut self, pin: PinPolicy) -> Self {
        if pin != self.pin {
            self.pin = pin;
            self.pool = PoolHandle::for_threads_with(self.threads, pin);
        }
        self
    }

    /// The halo plan when halo-exchange mode is enabled (per-shard halo
    /// sizes, exchange volume).
    pub fn halo_plan(&self) -> Option<&HaloPlan> {
        self.halo.as_ref().map(|h| &h.plan)
    }

    /// The worker pin policy the runner dispatches under.
    pub fn pin_policy(&self) -> PinPolicy {
        self.pin
    }

    /// The number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The worker-thread count the runner was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shard layout (one entry per worker), in internal node indices.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The node layout (identity unless built with
    /// [`LayoutPolicy::Rcm`]).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The pool handle the runner dispatches rounds on.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The CSR topology the rounds sweep, in internal (post-layout) node
    /// order — e.g. for inspecting what the layout pass did
    /// ([`layout::mean_bandwidth`](crate::layout::mean_bandwidth)).
    pub fn topology(&self) -> &CsrTopology {
        &self.topo
    }

    /// The graph being executed.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// The program being executed.
    pub fn program(&self) -> &P {
        self.program
    }

    /// All registers in the engine's **internal storage order** — original
    /// node-id order exactly when [`layout`](Self::layout)
    /// `.is_identity()`. Use [`states_snapshot`](Self::states_snapshot) for
    /// an order-independent view.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The registers in original node-id order (clones; layout-independent).
    pub fn states_snapshot(&self) -> Vec<P::State> {
        (0..self.states.len())
            .map(|v| self.states[self.layout.internal(v)].clone())
            .collect()
    }

    /// One shard's slice of the register arena (internal order).
    pub fn shard_states(&self, shard: usize) -> &[P::State] {
        let s = self.shards[shard];
        &self.states[s.start..s.end]
    }

    /// The register of one node (original id).
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[self.layout.internal(v.index())]
    }

    /// Mutable access to one register (fault injection; original id).
    pub fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        &mut self.states[self.layout.internal(v.index())]
    }

    /// The static context of a node (original id).
    pub fn context(&self, v: NodeId) -> &NodeContext {
        &self.contexts[self.layout.internal(v.index())]
    }

    /// Applies a [`FaultPlan`] by passing every planned node's register to
    /// `mutate` (mirrors [`FaultPlan::apply`] for the sequential runner).
    pub fn apply_faults<F>(&mut self, plan: &FaultPlan, mut mutate: F)
    where
        F: FnMut(NodeId, &mut P::State),
    {
        for &v in plan.nodes() {
            mutate(v, &mut self.states[self.layout.internal(v.index())]);
        }
    }

    /// Consumes the runner, returning a sequential [`Network`] holding the
    /// final registers in original node-id order (interop with the rest of
    /// the workspace).
    pub fn into_network(self) -> Network<P> {
        let states = self.layout.unpermute(self.states);
        Network::with_states(self.graph, states)
    }

    /// Executes exactly one synchronous round.
    pub fn step_round(&mut self) {
        self.run_rounds(1);
    }

    /// [`step_round`](Self::step_round) surfacing pooled-execution
    /// failures as a typed [`PoolError`] instead of unwinding (supervised
    /// recovery has already been attempted under the configured
    /// [`RecoveryPolicy`]). After an `Err` the registers are unspecified.
    pub fn try_step_round(&mut self) -> Result<(), PoolError> {
        self.try_run_rounds(1)
    }

    /// Executes `count` rounds in a single chunked pool dispatch: the
    /// parked workers run all `count` rounds back to back, synchronizing on
    /// a round barrier, and only then return to the caller. While an
    /// observer is attached, the chunk runs round-granular instead so the
    /// observer sees every round boundary (results are identical).
    pub fn run_rounds(&mut self, count: usize) {
        self.try_run_rounds(count)
            .unwrap_or_else(|err| panic!("{err}"));
    }

    /// The fallible core of [`run_rounds`](Self::run_rounds): every chunk
    /// runs under the [`RecoveryPolicy`] guard.
    pub fn try_run_rounds(&mut self, count: usize) -> Result<(), PoolError> {
        if self.observer.is_none() {
            return self.run_chunk_recovering(count, false);
        }
        for _ in 0..count {
            // smst-lint: allow(clock, reason = "observed-path round timing; only reached when an observer is attached")
            let start = std::time::Instant::now();
            self.run_chunk_recovering(1, true)?;
            self.observe_round(start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Runs one chunk under the [`RecoveryPolicy`]: catch a worker panic
    /// (the pool respawns the dead worker on its own), restore the
    /// pre-chunk snapshot, back off and replay. Barrier-watchdog timeouts
    /// are never retried. With the default policy this still converts the
    /// unwind into `Err` — the panicking surface re-raises it.
    fn run_chunk_recovering(&mut self, count: usize, timed: bool) -> Result<(), PoolError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let snapshot = (self.recovery.max_retries > 0)
            .then(|| (self.states.clone(), self.scratch.clone(), self.rounds));
        let had_halo = self.halo.is_some();
        let mut attempts = 0u32;
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.run_rounds_unobserved(count, timed)
            }));
            let payload = match outcome {
                Ok(()) => return Ok(()),
                Err(payload) => payload,
            };
            // discard any partial phase accumulation of the failed chunk
            let _ = self.phases.take();
            attempts += 1;
            if let Some(timeout) = payload.downcast_ref::<BarrierTimeoutPanic>() {
                // a hung worker is a liveness bug, not a transient fault
                return Err(PoolError::BarrierTimeout { timeout: timeout.0 });
            }
            let Some((states, scratch, rounds)) = snapshot.as_ref() else {
                return Err(PoolError::WorkerPanic {
                    attempts,
                    message: panic_message(&payload),
                });
            };
            if attempts > self.recovery.max_retries {
                return Err(PoolError::WorkerPanic {
                    attempts,
                    message: panic_message(&payload),
                });
            }
            self.states.clone_from(states);
            self.scratch.clone_from(scratch);
            self.rounds = *rounds;
            // the unwind may have dropped the halo arenas mid-take
            if had_halo && self.halo.is_none() {
                self.halo = Some(Self::build_halo_state(&self.topo, &self.shards));
            }
            let backoff = self.recovery.backoff_before(attempts);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
    }

    /// Reports the just-completed round to the attached observer, draining
    /// the [`PhaseTimes`] accumulators into the stats. `dispatch_ns` is
    /// the residual of the measured round total after the three named
    /// phases, so gather/scatter and pool wake-up land there and the four
    /// timing fields sum to the round total exactly.
    fn observe_round(&mut self, total_ns: u64) {
        let Some(mut observer) = self.observer.take() else {
            return;
        };
        let (compute_ns, barrier_ns, exchange_ns) = self.phases.take();
        let halo_bytes = match &self.halo {
            Some(halo) if self.shards.len() > 1 => {
                (halo.plan.total_halo() * std::mem::size_of::<P::State>()) as u64
            }
            _ => 0,
        };
        observer.on_round(&RoundStats {
            round: self.rounds - 1,
            alarms: self.alarming_nodes().len(),
            activations: self.states.len(),
            halo_bytes,
            dispatch_ns: total_ns.saturating_sub(compute_ns + barrier_ns + exchange_ns),
            compute_ns,
            barrier_ns,
            exchange_ns,
        });
        self.observer = Some(observer);
    }

    /// The chunked dispatch core of [`run_rounds`](Self::run_rounds).
    /// `timed` routes the pool's per-phase clocks into [`Self::phases`]
    /// (observed rounds only — the unobserved path stays clock-free).
    fn run_rounds_unobserved(&mut self, count: usize, timed: bool) {
        if count == 0 {
            return;
        }
        if self.shards.is_empty() {
            // the empty graph: no registers, every round is a no-op (the
            // pool must not be dispatched with zero parts)
            self.rounds += count;
            return;
        }
        if self.halo.is_some() && self.shards.len() > 1 {
            self.run_rounds_halo(count, timed);
            self.rounds += count;
            return;
        }
        let program = self.program;
        let topo = &self.topo;
        let contexts = &self.contexts;
        let shards = &self.shards;
        let injection = self.injection.as_ref();
        let base = self.rounds;
        if shards.len() == 1 {
            // single-shard path: no dispatch, no synchronization at all
            let shard = shards[0];
            for round in 0..count {
                if let Some(inj) = injection {
                    inj.maybe_fire(base + round, 0);
                }
                // smst-lint: allow(clock, reason = "observer-gated phase timing; wall time never feeds round state")
                let start = timed.then(std::time::Instant::now);
                compute_shard(
                    program,
                    topo,
                    contexts,
                    &self.states,
                    shard,
                    &mut self.scratch,
                );
                if let Some(t) = start {
                    self.phases.add_compute_ns(t.elapsed().as_nanos() as u64);
                }
                std::mem::swap(&mut self.states, &mut self.scratch);
            }
        } else {
            self.pool.pool().run_rounds_double_buffered_phased(
                &self.bounds,
                count,
                &mut self.states,
                &mut self.scratch,
                |part, round, prev, out| {
                    if let Some(inj) = injection {
                        inj.maybe_fire(base + round, part);
                    }
                    compute_shard(program, topo, contexts, prev, shards[part], out);
                },
                timed.then_some(&self.phases),
                self.recovery.watchdog_timeout,
            );
        }
        self.rounds += count;
    }

    /// The halo-mode round loop: gather the registers into the shard-local
    /// arenas (interiors + fresh halo copies), run `count` rounds on the
    /// pool's phased halo primitive, scatter the interiors back.
    ///
    /// `scratch` is refreshed with the previous round's registers on the
    /// way out, so [`run_to_fixpoint`](Self::run_to_fixpoint)'s
    /// states-vs-scratch comparison keeps working in halo mode.
    fn run_rounds_halo(&mut self, count: usize, timed: bool) {
        let mut halo = self.halo.take().expect("halo mode checked by caller");
        {
            let plan = &halo.plan;
            plan.gather_into(&self.states, &mut halo.front);
            // `back` only needs matching length: round 0 overwrites every
            // slot (interiors in compute, halos in exchange) before any
            // read, so after the first call its stale contents are free
            if halo.back.len() != halo.front.len() {
                halo.back = halo.front.clone();
            }
            let regions = plan.regions();
            let program = self.program;
            let contexts = &self.contexts;
            let injection = self.injection.as_ref();
            let base = self.rounds;
            self.pool.pool().run_rounds_halo_phased(
                &regions,
                plan.exchange(),
                count,
                &mut halo.front,
                &mut halo.back,
                |part, round, prev, out| {
                    if let Some(inj) = injection {
                        inj.maybe_fire(base + round, part);
                    }
                    compute_shard_halo(program, plan, part, contexts, prev, out);
                },
                timed.then_some(&self.phases),
                self.recovery.watchdog_timeout,
            );
            plan.scatter_interiors(&halo.front, &mut self.states);
            plan.scatter_interiors(&halo.back, &mut self.scratch);
        }
        self.halo = Some(halo);
    }

    /// Runs until `stop` returns `true` (checked after each round) or until
    /// `max_rounds` additional rounds have elapsed. Returns the number of
    /// rounds executed by this call if the condition was met.
    ///
    /// `stop` observes the registers in internal storage order (original
    /// order under the identity layout).
    pub fn run_until<F>(&mut self, max_rounds: usize, mut stop: F) -> Option<usize>
    where
        F: FnMut(&[P::State]) -> bool,
    {
        if stop(&self.states) {
            return Some(0);
        }
        for executed in 1..=max_rounds {
            self.step_round();
            if stop(&self.states) {
                return Some(executed);
            }
        }
        None
    }

    /// The verdicts of all nodes under the current configuration, in
    /// original node-id order.
    pub fn verdicts(&self) -> Vec<Verdict> {
        (0..self.states.len())
            .map(|v| {
                let i = self.layout.internal(v);
                self.program.verdict(&self.contexts[i], &self.states[i])
            })
            .collect()
    }

    /// The nodes currently raising an alarm (original ids, ascending).
    pub fn alarming_nodes(&self) -> Vec<NodeId> {
        (0..self.states.len())
            .map(NodeId)
            .filter(|v| {
                let i = self.layout.internal(v.index());
                self.program.verdict(&self.contexts[i], &self.states[i]) == Verdict::Reject
            })
            .collect()
    }

    /// `true` if at least one node raises an alarm.
    pub fn any_alarm(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .any(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Reject)
    }

    /// `true` if every node accepts.
    pub fn all_accept(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .all(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Accept)
    }

    /// Runs until some node raises an alarm, for at most `max_rounds`
    /// rounds. Returns the detection time in rounds. (Delegates to the
    /// shared [`Runner::run_until`] loop.)
    pub fn run_until_alarm(&mut self, max_rounds: usize) -> Option<usize> {
        Runner::run_until(self, StopCondition::FirstAlarm, max_rounds)
    }

    /// Runs until every node accepts, for at most `max_rounds` rounds.
    /// (Delegates to the shared [`Runner::run_until`] loop.)
    pub fn run_until_all_accept(&mut self, max_rounds: usize) -> Option<usize> {
        Runner::run_until(self, StopCondition::AllAccept, max_rounds)
    }
}

impl<'p, P> Runner<P> for ParallelSyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    fn step(&mut self) {
        self.step_round();
    }

    fn try_step(&mut self) -> Result<(), EngineError> {
        self.try_step_round().map_err(EngineError::from)
    }

    fn steps(&self) -> usize {
        self.rounds
    }

    fn activations(&self) -> usize {
        self.rounds * self.states.len()
    }

    fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    fn state(&self, v: NodeId) -> &P::State {
        ParallelSyncRunner::state(self, v)
    }

    fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        ParallelSyncRunner::state_mut(self, v)
    }

    fn states_snapshot(&self) -> Vec<P::State> {
        ParallelSyncRunner::states_snapshot(self)
    }

    fn context(&self, v: NodeId) -> NodeContext {
        ParallelSyncRunner::context(self, v).clone()
    }

    fn any_alarm(&self) -> bool {
        ParallelSyncRunner::any_alarm(self)
    }

    fn all_accept(&self) -> bool {
        ParallelSyncRunner::all_accept(self)
    }

    fn alarming_nodes(&self) -> Vec<NodeId> {
        ParallelSyncRunner::alarming_nodes(self)
    }

    fn apply_faults(&mut self, plan: &FaultPlan, mutate: &mut dyn FnMut(NodeId, &mut P::State)) {
        ParallelSyncRunner::apply_faults(self, plan, mutate);
    }

    fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        ParallelSyncRunner::set_observer(self, observer);
    }

    fn run_until(&mut self, until: StopCondition, max_steps: usize) -> Option<usize> {
        // a fixed-step run needs no per-round condition checks: use the
        // chunked pool dispatch (one epoch bump for the whole budget)
        // instead of the shared step-by-step loop — results are identical
        if matches!(until, StopCondition::Steps) {
            self.run_rounds(max_steps);
            return Some(max_steps);
        }
        crate::runner::drive_until(self, until, max_steps)
    }

    fn try_run_until(
        &mut self,
        until: StopCondition,
        max_steps: usize,
    ) -> Result<Option<usize>, EngineError> {
        // same chunked fast path as `run_until`, over the fallible surface
        if matches!(until, StopCondition::Steps) {
            self.try_run_rounds(max_steps)?;
            return Ok(Some(max_steps));
        }
        crate::runner::try_drive_until(self, until, max_steps)
    }

    fn report(&self) -> RunReport {
        let mut engine = format!("parallel-sync(threads={}", self.threads);
        if !self.layout.is_identity() {
            engine.push_str(",layout");
        }
        if self.halo.is_some() {
            engine.push_str(",halo");
        }
        engine.push(')');
        RunReport {
            node_count: self.states.len(),
            steps: self.rounds,
            activations: Runner::activations(self),
            threads: self.threads,
            engine,
        }
    }

    fn into_network(self: Box<Self>) -> Network<P> {
        ParallelSyncRunner::into_network(*self)
    }
}

impl<'p, P> ParallelSyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync + PartialEq,
{
    /// Runs until a fixpoint (no register changed in a round), for at most
    /// `max_rounds` rounds. Returns the number of rounds until the first
    /// unchanged round.
    pub fn run_to_fixpoint(&mut self, max_rounds: usize) -> Option<usize> {
        for executed in 1..=max_rounds {
            self.step_round();
            // after the swap, `scratch` holds the previous round's registers
            if self.states == self.scratch {
                return Some(executed);
            }
        }
        None
    }
}

/// Computes the next registers of one shard into `out`
/// (`out[i]` ↔ internal node `shard.start + i`).
fn compute_shard<P: NodeProgram>(
    program: &P,
    topo: &CsrTopology,
    contexts: &[NodeContext],
    states: &[P::State],
    shard: Shard,
    out: &mut [P::State],
) {
    debug_assert_eq!(out.len(), shard.len());
    let mut neighbor_buf: Vec<&P::State> = Vec::with_capacity(16);
    for (slot, v) in out.iter_mut().zip(shard.nodes()) {
        neighbor_buf.clear();
        neighbor_buf.extend(topo.neighbors_of(v).iter().map(|&u| &states[u as usize]));
        *slot = program.step(&contexts[v], &states[v], &neighbor_buf);
    }
}

/// Halo-mode twin of [`compute_shard`]: computes the next interior
/// registers of one shard into `out`, reading **only the arena** `prev`
/// through the shard's arena-coordinate CSR (`out[i]` ↔ interior node
/// `shard.start + i` ↔ arena slot `arena_offset + i`).
fn compute_shard_halo<P: NodeProgram>(
    program: &P,
    plan: &HaloPlan,
    part: usize,
    contexts: &[NodeContext],
    prev: &[P::State],
    out: &mut [P::State],
) {
    let shard = plan.shard(part);
    let base = plan.arena_offset(part);
    let (offsets, neighbors) = plan.local_csr(part);
    debug_assert_eq!(out.len(), shard.len());
    let mut neighbor_buf: Vec<&P::State> = Vec::with_capacity(16);
    for (i, slot) in out.iter_mut().enumerate() {
        neighbor_buf.clear();
        neighbor_buf.extend(
            neighbors[offsets[i]..offsets[i + 1]]
                .iter()
                .map(|&a| &prev[a as usize]),
        );
        *slot = program.step(&contexts[shard.start + i], &prev[base + i], &neighbor_buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{expander_graph, path_graph, random_connected_graph};
    use smst_sim::{RecordingObserver, SyncRunner};
    use std::time::Duration;

    /// Propagates the minimum identity (same toy program as the sim tests).
    struct MinId;

    impl NodeProgram for MinId {
        type State = u64;
        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }
        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }
        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }
    }

    static MIN_ID: MinId = MinId;

    /// The envelope-built runner the migrated equivalence tests drive
    /// (threads + layout through one validated `EngineConfig`).
    fn with_layout(
        g: &WeightedGraph,
        threads: usize,
        policy: LayoutPolicy,
    ) -> ParallelSyncRunner<'static, MinId> {
        ParallelSyncRunner::from_config(
            &MIN_ID,
            g.clone(),
            &EngineConfig::new().threads(threads).layout(policy),
        )
        .expect("a valid test envelope")
    }

    #[test]
    fn matches_sequential_runner_every_round() {
        let g = random_connected_graph(60, 150, 11);
        for threads in [1, 2, 4, 7] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let mut par = with_layout(&g, threads, policy);
                let mut seq = SyncRunner::new(&MinId, Network::new(&MinId, g.clone()));
                for round in 0..12 {
                    assert_eq!(
                        par.states_snapshot(),
                        seq.network().states(),
                        "round {round}, {threads} threads, {policy:?}"
                    );
                    par.step_round();
                    seq.step_round();
                }
            }
        }
    }

    #[test]
    fn chunked_run_rounds_equals_stepped_rounds() {
        let g = expander_graph(64, 6, 3);
        for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
            let mut chunked = with_layout(&g, 4, policy);
            let mut stepped = with_layout(&g, 4, policy);
            chunked.run_rounds(7);
            for _ in 0..7 {
                stepped.step_round();
            }
            assert_eq!(chunked.states(), stepped.states(), "{policy:?}");
            assert_eq!(chunked.rounds(), 7);
        }
    }

    #[test]
    fn converges_like_the_sequential_runner() {
        let g = path_graph(10, 0);
        let d = g.diameter().unwrap();
        let mut runner = ParallelSyncRunner::new(&MinId, g, 3);
        let t = runner.run_until_all_accept(100).unwrap();
        assert_eq!(t, d);
        assert_eq!(runner.rounds(), d);
    }

    #[test]
    fn fixpoint_detection() {
        let g = random_connected_graph(12, 20, 1);
        let mut runner = ParallelSyncRunner::new(&MinId, g, 4);
        let t = runner.run_to_fixpoint(100).unwrap();
        assert!(t <= 13);
        assert!(runner.all_accept());
    }

    #[test]
    fn fault_injection_and_healing_with_layout() {
        let g = random_connected_graph(30, 80, 2);
        let mut runner = with_layout(&g, 4, LayoutPolicy::Rcm);
        runner.run_to_fixpoint(100).unwrap();
        let plan = FaultPlan::random(30, 5, 9);
        runner.apply_faults(&plan, |_v, s| *s = u64::MAX);
        assert!(!runner.all_accept());
        runner.run_until_all_accept(100).unwrap();
        assert!(runner.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn from_network_adopts_registers() {
        let g = path_graph(5, 0);
        let mut net = Network::new(&MinId, g);
        net.set_state(NodeId(4), 99);
        let runner = ParallelSyncRunner::from_network(&MinId, &net, 2);
        assert_eq!(runner.state(NodeId(4)), &99);
        let back = runner.into_network();
        assert_eq!(back.state(NodeId(4)), &99);
    }

    #[test]
    fn layout_round_trips_through_network_interop() {
        let g = random_connected_graph(25, 60, 8);
        let mut net = Network::new(&MinId, g);
        net.set_state(NodeId(17), 1234);
        let runner = ParallelSyncRunner::from_config_with_states(
            &MinId,
            net.graph().clone(),
            net.states().to_vec(),
            &EngineConfig::new().threads(3).layout(LayoutPolicy::Rcm),
        )
        .expect("a valid test envelope");
        assert_eq!(runner.state(NodeId(17)), &1234);
        let back = runner.into_network();
        assert_eq!(back.states(), net.states());
    }

    #[test]
    fn run_until_counts_and_times_out() {
        let g = path_graph(6, 0);
        let mut runner = ParallelSyncRunner::new(&MinId, g, 2);
        assert_eq!(runner.run_until(2, |_| false), None);
        assert_eq!(runner.rounds(), 2);
        assert_eq!(runner.run_until(10, |_| true), Some(0));
    }

    #[test]
    fn halo_mode_matches_direct_mode_every_round() {
        let g = random_connected_graph(80, 220, 19);
        for threads in [1, 2, 4, 7] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let mut halo = with_layout(&g, threads, policy).halo_exchange(true);
                let mut direct = with_layout(&g, threads, policy);
                for round in 0..10 {
                    assert_eq!(
                        halo.states_snapshot(),
                        direct.states_snapshot(),
                        "round {round}, {threads} threads, {policy:?}"
                    );
                    halo.step_round();
                    direct.step_round();
                }
                assert_eq!(halo.rounds(), 10);
            }
        }
    }

    #[test]
    fn halo_mode_survives_faults_and_fixpoints() {
        // fixpoint detection relies on the scratch refresh of the halo
        // path; faults mutate `states` between chunked halo runs
        let g = random_connected_graph(40, 100, 3);
        let mut halo = with_layout(&g, 4, LayoutPolicy::Rcm).halo_exchange(true);
        let mut direct = with_layout(&g, 4, LayoutPolicy::Rcm);
        assert_eq!(
            halo.run_to_fixpoint(100).unwrap(),
            direct.run_to_fixpoint(100).unwrap()
        );
        let plan = FaultPlan::random(40, 6, 21);
        halo.apply_faults(&plan, |_v, s| *s = u64::MAX);
        direct.apply_faults(&plan, |_v, s| *s = u64::MAX);
        halo.run_rounds(5);
        direct.run_rounds(5);
        assert_eq!(halo.states_snapshot(), direct.states_snapshot());
    }

    #[test]
    fn halo_plan_is_exposed_and_sized_sanely() {
        let g = expander_graph(200, 6, 4);
        let runner = ParallelSyncRunner::new(&MinId, g.clone(), 4).halo_exchange(true);
        let plan = runner.halo_plan().expect("halo mode on");
        assert_eq!(plan.shard_count(), runner.shards().len());
        assert!(plan.total_halo() > 0, "an expander has cross-shard edges");
        // toggling off drops the plan
        let runner = runner.halo_exchange(false);
        assert!(runner.halo_plan().is_none());
        // single-threaded halo mode degenerates gracefully (no external
        // neighbours at all)
        let one = ParallelSyncRunner::new(&MinId, g, 1).halo_exchange(true);
        assert_eq!(one.halo_plan().unwrap().total_halo(), 0);
    }

    #[test]
    fn empty_graph_runs_without_panicking() {
        // regression: partition_balanced now returns no shards for n == 0,
        // and the dispatch path must tolerate that
        let g = smst_graph::WeightedGraph::new();
        for halo in [false, true] {
            let mut runner = ParallelSyncRunner::new(&MinId, g.clone(), 4).halo_exchange(halo);
            runner.run_rounds(3);
            assert_eq!(runner.rounds(), 3);
            assert!(runner.states().is_empty());
            assert!(runner.all_accept(), "vacuously true on no nodes");
            assert!(runner.alarming_nodes().is_empty());
        }
    }

    #[test]
    fn pinned_runner_matches_unpinned() {
        let g = random_connected_graph(50, 130, 9);
        let mut pinned = ParallelSyncRunner::new(&MinId, g.clone(), 4)
            .pinning(crate::pool::PinPolicy::Cores)
            .halo_exchange(true);
        let mut plain = ParallelSyncRunner::new(&MinId, g, 4);
        assert_eq!(pinned.pin_policy(), crate::pool::PinPolicy::Cores);
        assert!(!pinned.pool().shares_pool_with(plain.pool()));
        pinned.run_rounds(8);
        plain.run_rounds(8);
        assert_eq!(pinned.states_snapshot(), plain.states_snapshot());
    }

    #[test]
    fn runners_share_the_registered_pool() {
        // 33 threads: no other test requests a pool this large, so the
        // registry must hand the second runner the first runner's pool
        // (a smaller request may legitimately land in a concurrently
        // registered pool, which would make the assertion racy)
        let g = path_graph(8, 0);
        let a = ParallelSyncRunner::new(&MinId, g.clone(), 33);
        let b = ParallelSyncRunner::new(&MinId, g, 33);
        assert!(
            a.pool().shares_pool_with(b.pool()),
            "equal-sized runners must reuse the registered pool"
        );
        assert!(a.pool().pool().threads() >= 33);
    }

    #[test]
    fn injected_panic_recovers_invisibly_at_every_thread_count() {
        let g = random_connected_graph(60, 150, 31);
        for threads in [1, 2, 8] {
            for halo in [false, true] {
                let mut clean = with_layout(&g, threads, LayoutPolicy::Rcm).halo_exchange(halo);
                let mut chaos = with_layout(&g, threads, LayoutPolicy::Rcm)
                    .halo_exchange(halo)
                    .recovery(RecoveryPolicy::retries(2))
                    .inject(InjectionSpec::panic_at(3, 0));
                let clean_trace = RecordingObserver::new();
                let chaos_trace = RecordingObserver::new();
                clean.set_observer(Box::new(clean_trace.clone()));
                chaos.set_observer(Box::new(chaos_trace.clone()));
                clean.run_rounds(8);
                chaos
                    .try_run_rounds(8)
                    .expect("the injected panic is retried away");
                assert_eq!(
                    chaos_trace.deterministic_trace(),
                    clean_trace.deterministic_trace(),
                    "recovery must be invisible ({threads} threads, halo={halo})"
                );
                assert_eq!(chaos.states_snapshot(), clean.states_snapshot());
                assert_eq!(chaos.rounds(), 8);
            }
        }
    }

    #[test]
    fn exhausted_retries_surface_a_typed_worker_panic() {
        let g = random_connected_graph(40, 100, 5);
        // default policy: no retries, the first panic is the error
        let mut runner =
            with_layout(&g, 4, LayoutPolicy::Identity).inject(InjectionSpec::panic_at(0, 0));
        match runner.try_step_round() {
            Err(PoolError::WorkerPanic { attempts, message }) => {
                assert_eq!(attempts, 1);
                assert!(message.contains("injected chaos panic"), "{message}");
            }
            other => panic!("expected a typed worker panic, got {other:?}"),
        }
        // the pool healed: a fresh runner on the same registry pool works
        let mut fresh = with_layout(&g, 4, LayoutPolicy::Identity);
        fresh.run_rounds(3);
        assert_eq!(fresh.rounds(), 3);
    }

    #[test]
    fn stall_injection_trips_the_watchdog_as_a_typed_timeout() {
        let g = random_connected_graph(40, 100, 7);
        let mut runner = with_layout(&g, 2, LayoutPolicy::Identity)
            .recovery(RecoveryPolicy::retries(3).watchdog(Duration::from_millis(40)))
            .inject(InjectionSpec::stall_at(0, 1, 400));
        // smst-lint: allow(clock, reason = "test asserts the watchdog's wall-time bound, not round state")
        let started = std::time::Instant::now();
        match runner.try_run_rounds(5) {
            Err(PoolError::BarrierTimeout { timeout }) => {
                assert_eq!(timeout, Duration::from_millis(40));
            }
            other => panic!("expected a barrier timeout, got {other:?}"),
        }
        // never retried, and detected well before the stall finished
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
