//! The chaos plane: recurring fault schedules driven through the one
//! [`Runner`] loop.
//!
//! A single-burst fault experiment measures one detection; the paper's
//! verifier is *perpetual*, so the interesting workload is an unbounded
//! stream of fault waves. This module drives a
//! [`FaultSchedule`] through the same
//! object-safe [`Runner`] loop every other workload uses: between steps it
//! asks the schedule whether a wave fires, applies the wave's
//! [`FaultPlan`](smst_sim::FaultPlan) through the caller's mutator, and
//! keeps per-wave books — steps to first alarm (detection latency) and
//! steps until every node accepts again (rounds to quiescence, the
//! MTTR-style figure). A wave still open when the next one fires, or when
//! the step budget runs out, keeps `None` in the censored fields rather
//! than a fabricated number.
//!
//! Worker failures surface through [`Runner::try_step`]: under a
//! [`RecoveryPolicy`](crate::config::RecoveryPolicy) the runner retries
//! panicked steps invisibly; past the policy the campaign stops with a
//! typed [`EngineError`]. The engine stays telemetry-free — the chaos
//! artifacts in `smst-telemetry` are filled from [`ChaosReport`] by the
//! bench/bin layer.

use crate::config::EngineError;
use crate::runner::Runner;
use crate::scenario::ScenarioSpec;
use smst_graph::NodeId;
use smst_sim::{FaultSchedule, Network, NodeProgram, WaveStats};

/// What a chaos campaign observed: every wave with its latencies, plus
/// run-level totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Steps actually executed.
    pub steps_run: usize,
    /// Per-wave accounting, in firing order.
    pub waves: Vec<WaveStats>,
    /// Total registers corrupted across all waves.
    pub injected_faults: usize,
}

impl ChaosReport {
    /// Waves whose corruption was detected (an alarm rose before the next
    /// wave or the end of the run).
    pub fn detected_waves(&self) -> usize {
        self.waves
            .iter()
            .filter(|w| w.detection_latency.is_some())
            .count()
    }

    /// Waves the system fully digested (every node accepting again before
    /// the next wave or the end of the run).
    pub fn quiesced_waves(&self) -> usize {
        self.waves.iter().filter(|w| w.quiescence.is_some()).count()
    }

    /// Mean detection latency over the detected waves, in steps.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        mean(self.waves.iter().filter_map(|w| w.detection_latency))
    }

    /// Mean rounds-to-quiescence over the quiesced waves, in steps.
    pub fn mean_quiescence(&self) -> Option<f64> {
        mean(self.waves.iter().filter_map(|w| w.quiescence))
    }
}

fn mean(values: impl Iterator<Item = usize>) -> Option<f64> {
    let (mut sum, mut count) = (0usize, 0usize);
    for v in values {
        sum += v;
        count += 1;
    }
    (count > 0).then(|| sum as f64 / count as f64)
}

/// Final registers plus the campaign report.
#[derive(Debug)]
pub struct ChaosOutcome<P: NodeProgram> {
    /// The campaign report.
    pub report: ChaosReport,
    /// The final configuration.
    pub network: Network<P>,
}

/// Drives `schedule` through `runner` for `max_steps` steps — **the**
/// chaos loop, shared by tests, benches and the smoke bins. Waves fire at
/// the *start* of their step (the corrupted registers are what that step's
/// reads observe), mirroring [`ScenarioSpec`]'s burst semantics.
pub fn run_chaos<P, F>(
    runner: &mut dyn Runner<P>,
    schedule: &FaultSchedule,
    max_steps: usize,
    corrupt: &mut F,
) -> Result<ChaosReport, EngineError>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
    F: FnMut(NodeId, &mut P::State),
{
    let n = runner.graph().node_count();
    let mut waves: Vec<WaveStats> = Vec::new();
    let mut injected = 0usize;
    let mut steps_run = 0usize;
    for step in 0..max_steps {
        if let Some((wave, plan)) = schedule.wave_at(step, n) {
            runner.apply_faults(&plan, corrupt);
            injected += plan.len();
            waves.push(WaveStats {
                wave,
                step,
                faults: plan.len(),
                detection_latency: None,
                quiescence: None,
            });
        }
        runner.try_step()?;
        steps_run = step + 1;
        if let Some(open) = waves.last_mut().filter(|w| w.quiescence.is_none()) {
            let since = step + 1 - open.step;
            if open.detection_latency.is_none() && runner.any_alarm() {
                open.detection_latency = Some(since);
            }
            if runner.all_accept() {
                open.quiescence = Some(since);
            }
        }
    }
    Ok(ChaosReport {
        steps_run,
        waves,
        injected_faults: injected,
    })
}

/// [`run_chaos`] over a [`ScenarioSpec`]'s graph and execution envelope:
/// instantiates whatever runner the spec's [`EngineConfig`](crate::config::EngineConfig)
/// describes (including its recovery and injection knobs) and runs the
/// campaign on it.
pub fn run_chaos_scenario<P, F>(
    spec: &ScenarioSpec,
    program: &P,
    schedule: &FaultSchedule,
    max_steps: usize,
    mut corrupt: F,
) -> Result<ChaosOutcome<P>, EngineError>
where
    P: NodeProgram + Sync + 'static,
    P::State: Send + Sync,
    F: FnMut(NodeId, &mut P::State),
{
    let graph = spec.build_graph();
    let mut runner = spec.engine.instantiate(program, graph)?;
    let report = run_chaos(runner.as_mut(), schedule, max_steps, &mut corrupt)?;
    Ok(ChaosOutcome {
        report,
        network: runner.into_network(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, InjectionSpec, RecoveryPolicy};
    use crate::pool::PoolError;
    use crate::programs::MinIdFlood;
    use crate::scenario::GraphFamily;

    fn spec(threads: usize) -> ScenarioSpec {
        ScenarioSpec::new(GraphFamily::Expander { n: 60, degree: 4 })
            .seed(5)
            .threads(threads)
    }

    #[test]
    fn periodic_waves_are_detected_and_digested() {
        // period 12 leaves the 60-node flood plenty of room to re-converge
        let schedule = FaultSchedule::periodic(12, 6, 42).offset(4);
        let outcome = run_chaos_scenario(&spec(3), &MinIdFlood::new(0), &schedule, 40, |_v, s| {
            *s = u64::MAX
        })
        .expect("valid envelope");
        assert_eq!(outcome.report.waves.len(), 3, "waves at 4, 16, 28");
        assert_eq!(outcome.report.injected_faults, 18);
        for w in &outcome.report.waves {
            assert!(w.quiescence.is_some(), "wave {} never quiesced", w.wave);
        }
        assert!(outcome.report.mean_quiescence().unwrap() >= 1.0);
        assert!(outcome.network.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn back_to_back_waves_censor_the_open_wave() {
        // every step a full-corruption wave: nothing can quiesce before
        // the next wave fires, so every wave but the last stays censored
        let schedule = FaultSchedule::periodic(1, 60, 3);
        let outcome = run_chaos_scenario(&spec(2), &MinIdFlood::new(0), &schedule, 10, |_v, s| {
            *s = u64::MAX
        })
        .expect("valid envelope");
        assert_eq!(outcome.report.waves.len(), 10);
        let censored = outcome
            .report
            .waves
            .iter()
            .take(9)
            .filter(|w| w.quiescence.is_none())
            .count();
        assert_eq!(censored, 9, "open waves stay None, not fabricated");
    }

    #[test]
    fn chaos_campaigns_replay_bit_for_bit() {
        let schedule = FaultSchedule::poisson(0.2, 4, 17);
        let run = |threads| {
            run_chaos_scenario(
                &spec(threads),
                &MinIdFlood::new(0),
                &schedule,
                60,
                |v, s| *s = v.0 as u64 + 100,
            )
            .expect("valid envelope")
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.report, b.report, "thread count is a wall-clock knob");
        assert_eq!(a.network.states(), b.network.states());
    }

    #[test]
    fn worker_failure_stops_the_campaign_with_a_typed_error() {
        let base = spec(2).inject(InjectionSpec::panic_at(5, 0));
        let schedule = FaultSchedule::periodic(4, 3, 8);
        let err = run_chaos_scenario(&base, &MinIdFlood::new(0), &schedule, 30, |_v, s| {
            *s = u64::MAX
        })
        .expect_err("no recovery policy, the panic must surface");
        assert!(matches!(
            err,
            EngineError::Pool(PoolError::WorkerPanic { .. })
        ));
    }

    #[test]
    fn recovery_makes_the_same_campaign_succeed_identically() {
        let schedule = FaultSchedule::periodic(6, 5, 21);
        let clean = run_chaos_scenario(&spec(2), &MinIdFlood::new(0), &schedule, 30, |_v, s| {
            *s = u64::MAX
        })
        .expect("valid envelope");
        let chaotic = run_chaos_scenario(
            &spec(2)
                .recovery(RecoveryPolicy::retries(2))
                .inject(InjectionSpec::panic_at(5, 0)),
            &MinIdFlood::new(0),
            &schedule,
            30,
            |_v, s| *s = u64::MAX,
        )
        .expect("the injected panic is retried away");
        assert_eq!(chaotic.report, clean.report);
        assert_eq!(chaotic.network.states(), clean.network.states());
    }

    #[test]
    fn reference_backend_agrees_with_the_engine() {
        let schedule = FaultSchedule::periodic(9, 4, 13);
        let sharded = run_chaos_scenario(&spec(4), &MinIdFlood::new(0), &schedule, 40, |_v, s| {
            *s = u64::MAX
        })
        .expect("valid envelope");
        let reference = run_chaos_scenario(
            &spec(1).engine(EngineConfig::reference()),
            &MinIdFlood::new(0),
            &schedule,
            40,
            |_v, s| *s = u64::MAX,
        )
        .expect("valid envelope");
        assert_eq!(sharded.report, reference.report);
        assert_eq!(sharded.network.states(), reference.network.states());
    }
}
