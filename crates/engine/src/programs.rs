//! Lightweight demo / benchmark workloads for the engine.
//!
//! The paper's full verifier ([`smst_core::CoreVerifier`]) carries a
//! realistic register (labels, trains, comparison machinery) and is the
//! right workload for *verification* runs, but its polylogarithmic warm-up
//! budget makes it impractical as a million-node smoke-test. The programs
//! here are compact, self-stabilizing state machines with the same trait
//! surface, used by `examples/million_nodes.rs` and the throughput bench.

use smst_sim::{NodeContext, NodeProgram, Verdict};

/// Self-stabilizing minimum-identity flood.
///
/// Every register holds the smallest identity the node has heard of; a node
/// accepts once it holds the known leader identity (the global minimum —
/// with the workspace generators, identity `0`). Transient corruption of
/// any subset of registers heals in at most `diameter` rounds, making this
/// the canonical "inject, watch the wave, verify recovery" workload.
#[derive(Debug, Clone, Copy)]
pub struct MinIdFlood {
    leader: u64,
}

impl MinIdFlood {
    /// A flood whose accept condition is holding `leader` (the global
    /// minimum identity of the graph).
    pub fn new(leader: u64) -> Self {
        MinIdFlood { leader }
    }

    /// The identity every register converges to.
    pub fn leader(&self) -> u64 {
        self.leader
    }
}

impl NodeProgram for MinIdFlood {
    type State = u64;

    fn init(&self, ctx: &NodeContext) -> u64 {
        ctx.id
    }

    fn step(&self, ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
        // self-stabilizing guard: never adopt a value below the leader
        // (corrupted registers may carry arbitrary garbage, including values
        // smaller than any real identity)
        let candidate = neighbors.iter().fold((*own).max(self.leader), |acc, &&x| {
            acc.min(x.max(self.leader))
        });
        let _ = ctx;
        candidate
    }

    fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
        if *state == self.leader {
            Verdict::Accept
        } else {
            Verdict::Working
        }
    }

    fn state_bits(&self, _ctx: &NodeContext, _state: &u64) -> u64 {
        64
    }

    fn name(&self) -> &str {
        "min-id-flood"
    }
}

/// Maximum-identity flood with a single **monitor** node that raises the
/// alarm.
///
/// Every register holds the largest identity the node has heard of; the
/// network converges to `ceiling` (the true global maximum). A corrupted
/// register carrying a bogus identity above `ceiling` spreads through the
/// flood, but only the node whose identity is `monitor` ever *rejects* —
/// when the bogus value reaches it. Detection time is therefore exactly the
/// daemon-dependent propagation time from the fault to the monitor, which
/// makes this the canonical cheap workload for adversarial-schedule
/// campaigns (`smst-adversary`): a schedule that stalls information flow
/// towards the monitor provably delays detection.
#[derive(Debug, Clone, Copy)]
pub struct MonitorFlood {
    monitor: u64,
    ceiling: u64,
}

impl MonitorFlood {
    /// A flood whose alarm is raised by the node with identity `monitor`
    /// once it hears an identity above `ceiling` (the graph's true maximum
    /// identity — with the workspace generators, `n − 1`).
    pub fn new(monitor: u64, ceiling: u64) -> Self {
        MonitorFlood { monitor, ceiling }
    }

    /// The monitor's identity.
    pub fn monitor(&self) -> u64 {
        self.monitor
    }

    /// The largest legitimate identity.
    pub fn ceiling(&self) -> u64 {
        self.ceiling
    }

    /// A register value no legitimate identity can reach — the canonical
    /// corruption for this workload.
    pub const BOGUS: u64 = 1 << 40;
}

impl NodeProgram for MonitorFlood {
    type State = u64;

    fn init(&self, ctx: &NodeContext) -> u64 {
        ctx.id
    }

    fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
        neighbors.iter().fold(*own, |acc, &&x| acc.max(x))
    }

    fn verdict(&self, ctx: &NodeContext, state: &u64) -> Verdict {
        if ctx.id == self.monitor && *state > self.ceiling {
            Verdict::Reject
        } else if *state == self.ceiling {
            Verdict::Accept
        } else {
            Verdict::Working
        }
    }

    fn state_bits(&self, _ctx: &NodeContext, _state: &u64) -> u64 {
        64
    }

    fn name(&self) -> &str {
        "monitor-flood"
    }
}

/// Maximum-identity flood with **decaying** garbage and a monitor — the
/// canonical **chaos** workload.
///
/// [`MinIdFlood`] heals but never alarms (the min guard silently washes
/// garbage out in one step); [`MonitorFlood`] alarms but never heals (a
/// bogus maximum spreads forever). A verify-forever campaign needs both:
/// every wave must be *detected* (an alarm) and then *digested* (all nodes
/// accepting again). Here a register above `ceiling` (the largest
/// legitimate identity) still spreads through the max flood — so the
/// `monitor` node's detection latency is the true propagation distance
/// from the fault — but every out-of-range value **halves each step**, so
/// the global maximum decays monotonically, drops below `ceiling` within
/// `log2(BOGUS / ceiling)` steps, and the flood then re-converges to
/// `ceiling`. Detection latency and rounds-to-quiescence are both
/// well-defined (and wave-dependent) for every wave the schedule leaves
/// room for.
#[derive(Debug, Clone, Copy)]
pub struct AlarmedFlood {
    monitor: u64,
    ceiling: u64,
}

impl AlarmedFlood {
    /// A flood converging to `ceiling` (the graph's true maximum identity
    /// — with the workspace generators, `n − 1`), with the node whose
    /// identity is `monitor` raising the alarm while it holds a value
    /// above `ceiling`.
    pub fn new(monitor: u64, ceiling: u64) -> Self {
        AlarmedFlood { monitor, ceiling }
    }

    /// The monitor's identity.
    pub fn monitor(&self) -> u64 {
        self.monitor
    }

    /// The largest legitimate identity.
    pub fn ceiling(&self) -> u64 {
        self.ceiling
    }

    /// A register value no legitimate identity can reach (ids up to a
    /// million stay well below it), small enough that its decay — one
    /// halving per step — completes within a few dozen steps.
    pub const BOGUS: u64 = 1 << 20;
}

impl NodeProgram for AlarmedFlood {
    type State = u64;

    fn init(&self, ctx: &NodeContext) -> u64 {
        ctx.id
    }

    fn step(&self, ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
        // the node's own identity is re-injected every step, so the true
        // maximum survives even when a garbage flood overwrites every
        // register
        let raw = neighbors
            .iter()
            .fold((*own).max(ctx.id), |acc, &&x| acc.max(x));
        // out-of-range values keep flooding but decay geometrically: the
        // global maximum halves every step, so corruption provably dies out
        if raw > self.ceiling {
            raw >> 1
        } else {
            raw
        }
    }

    fn verdict(&self, ctx: &NodeContext, state: &u64) -> Verdict {
        if ctx.id == self.monitor && *state > self.ceiling {
            Verdict::Reject
        } else if *state == self.ceiling {
            Verdict::Accept
        } else {
            Verdict::Working
        }
    }

    fn state_bits(&self, _ctx: &NodeContext, _state: &u64) -> u64 {
        64
    }

    fn name(&self) -> &str {
        "alarmed-flood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_sync::ParallelSyncRunner;
    use smst_graph::generators::random_connected_graph;

    #[test]
    fn flood_heals_even_from_below_leader_garbage() {
        // scrambled identities are 7i + 3, so the leader is 3 and garbage
        // below it (0) is representable
        let g = smst_graph::generators::random_graph_scrambled_ids(30, 70, 2);
        let program = MinIdFlood::new(3);
        let mut runner = ParallelSyncRunner::new(&program, g, 2);
        runner.run_until_all_accept(50).unwrap();
        // corrupt with a value *smaller* than every identity: a naive min
        // flood would adopt it forever; the guard heals it
        *runner.state_mut(smst_graph::NodeId(7)) = 0;
        runner.run_rounds(40);
        assert!(runner.all_accept());
        assert!(runner.states().iter().all(|&s| s == 3));
    }

    #[test]
    fn flood_converges_on_plain_identities() {
        let g = random_connected_graph(30, 70, 2);
        let program = MinIdFlood::new(0);
        let mut runner = ParallelSyncRunner::new(&program, g, 2);
        runner.run_until_all_accept(50).unwrap();
        assert!(runner.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn alarmed_flood_detects_and_then_heals() {
        let n = 24usize;
        let g = random_connected_graph(n, 60, 9);
        let program = AlarmedFlood::new(0, n as u64 - 1);
        let mut runner = ParallelSyncRunner::new(&program, g, 2);
        runner.run_until_all_accept(50).unwrap();
        *runner.state_mut(smst_graph::NodeId(5)) = AlarmedFlood::BOGUS;
        // the garbage floods to the monitor (node 0), which alarms...
        let t = runner.run_until_alarm(50).expect("the monitor must detect");
        assert!(t >= 1, "detection takes at least one propagation step");
        // ...and the geometric decay then clears it and the flood
        // re-converges to the true maximum
        runner.run_rounds(40);
        assert!(!runner.any_alarm());
        assert!(runner.all_accept());
        assert!(runner.states().iter().all(|&s| s == n as u64 - 1));
    }

    #[test]
    fn monitor_flood_detects_at_the_monitor_only() {
        let n = 16usize;
        let g = smst_graph::generators::path_graph(n, 1);
        let program = MonitorFlood::new(n as u64 - 1, n as u64 - 1);
        let mut runner = ParallelSyncRunner::new(&program, g, 2);
        runner.run_until_all_accept(50).unwrap();
        // corrupt the far end: the bogus value must travel the whole path
        // before the monitor (node n − 1) rejects
        *runner.state_mut(smst_graph::NodeId(0)) = MonitorFlood::BOGUS;
        let t = runner.run_until_alarm(50).expect("monitor must detect");
        assert_eq!(t, n - 1, "synchronous detection = hop distance");
        assert_eq!(
            runner.alarming_nodes(),
            vec![smst_graph::NodeId(n - 1)],
            "only the monitor rejects"
        );
    }
}
