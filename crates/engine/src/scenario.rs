//! Scenario specification: one API over graph family × fault plan ×
//! execution envelope.
//!
//! A [`ScenarioSpec`] bundles everything that defines an execution-engine
//! workload — the topology family and its size, a list of [`FaultBurst`]s
//! to inject mid-run, a [`StopCondition`], and the full execution envelope
//! as an [`EngineConfig`] — so examples, benches and tests can describe
//! diverse runs declaratively and reproducibly (the whole scenario derives
//! from explicit seeds).
//!
//! The spec is a **thin façade over [`EngineConfig`]**: every knob setter
//! (`threads`, `layout`, `pin`, `halo_exchange`, `asynchronous`,
//! `batch_daemon`) writes into the embedded config, and
//! [`ScenarioSpec::run`] drives whatever
//! [`EngineConfig::instantiate`] returns through the object-safe
//! [`Runner`](crate::runner::Runner) trait — the spec itself knows nothing about individual
//! runner types. Invalid envelopes and unrecovered worker failures surface
//! as typed [`EngineError`]s from the `try_*` variants instead of panicking
//! deep in dispatch. The chaos knobs ride along: [`ScenarioSpec::recovery`]
//! arms supervised retry of panicked steps and [`ScenarioSpec::inject`]
//! plants a one-shot worker panic or stall, so robustness scenarios are as
//! declarative as fault scenarios.

use crate::config::{EngineConfig, EngineError, InjectionSpec, RecoveryPolicy};
use crate::layout::LayoutPolicy;
use crate::pool::PinPolicy;
pub use crate::runner::StopCondition;
use smst_graph::generators::{
    caterpillar_graph, complete_graph, expander_graph, grid_graph, kmw_cluster_tree,
    kmw_cluster_tree_node_count, kmw_hybrid_graph, kmw_hybrid_node_count, path_graph,
    random_connected_graph, ring_graph, star_graph,
};
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{BatchDaemon, Daemon, FaultPlan, Network, NodeProgram, RoundObserver};

/// The topology families a scenario can run on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphFamily {
    /// A path on `n` nodes.
    Path {
        /// Node count.
        n: usize,
    },
    /// A ring on `n` nodes.
    Ring {
        /// Node count.
        n: usize,
    },
    /// A `rows × cols` grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A star with `n − 1` leaves.
    Star {
        /// Node count.
        n: usize,
    },
    /// A caterpillar with `spine` spine nodes and `legs` leaves each.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// A random connected graph with `n` nodes and ≈ `m` edges.
    RandomConnected {
        /// Node count.
        n: usize,
        /// Approximate edge count.
        m: usize,
    },
    /// A random circulant expander of the given (even) degree.
    Expander {
        /// Node count.
        n: usize,
        /// Target degree.
        degree: usize,
    },
    /// The complete graph on `n` nodes.
    Complete {
        /// Node count.
        n: usize,
    },
    /// A KMW-style cluster tree (the hard family for lower-bound
    /// accounting; a simplified realization of the `CT_k` skeleton from
    /// "A Breezing Proof of the KMW Bound").
    KmwClusterTree {
        /// Cluster-hierarchy depth (`k` in `CT_k`).
        levels: usize,
        /// Branching factor δ between adjacent cluster levels.
        delta: usize,
    },
    /// The triangle-free KMW hybrid (ring interiors + spread gadgets).
    KmwHybrid {
        /// Cluster-hierarchy depth.
        levels: usize,
        /// Branching factor δ between adjacent cluster levels.
        delta: usize,
    },
}

impl GraphFamily {
    /// Builds the graph of this family with the given seed.
    pub fn build(&self, seed: u64) -> WeightedGraph {
        match *self {
            GraphFamily::Path { n } => path_graph(n, seed),
            GraphFamily::Ring { n } => ring_graph(n, seed),
            GraphFamily::Grid { rows, cols } => grid_graph(rows, cols, seed),
            GraphFamily::Star { n } => star_graph(n, seed),
            GraphFamily::Caterpillar { spine, legs } => caterpillar_graph(spine, legs, seed),
            GraphFamily::RandomConnected { n, m } => random_connected_graph(n, m, seed),
            GraphFamily::Expander { n, degree } => expander_graph(n, degree, seed),
            GraphFamily::Complete { n } => complete_graph(n, seed),
            GraphFamily::KmwClusterTree { levels, delta } => kmw_cluster_tree(levels, delta, seed),
            GraphFamily::KmwHybrid { levels, delta } => kmw_hybrid_graph(levels, delta, seed),
        }
    }

    /// The number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphFamily::Path { n }
            | GraphFamily::Ring { n }
            | GraphFamily::Star { n }
            | GraphFamily::RandomConnected { n, .. }
            | GraphFamily::Expander { n, .. }
            | GraphFamily::Complete { n } => n,
            GraphFamily::Grid { rows, cols } => rows * cols,
            GraphFamily::Caterpillar { spine, legs } => spine * (1 + legs),
            GraphFamily::KmwClusterTree { levels, delta } => {
                kmw_cluster_tree_node_count(levels, delta)
            }
            GraphFamily::KmwHybrid { levels, delta } => kmw_hybrid_node_count(levels, delta),
        }
    }
}

/// A transient-fault burst: at the start of step `at`, corrupt `count`
/// random registers (chosen with `seed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBurst {
    /// The step (round / time unit) before which the burst fires.
    pub at: usize,
    /// How many distinct nodes are hit.
    pub count: usize,
    /// Node-selection seed.
    pub seed: u64,
}

/// A declarative description of one engine run.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Topology family.
    pub family: GraphFamily,
    /// Graph seed.
    pub seed: u64,
    /// The full execution envelope (backend, mode/daemon, threads, layout,
    /// pinning, halo) — the spec is a façade over it.
    pub engine: EngineConfig,
    /// Fault bursts, in firing order.
    pub faults: Vec<FaultBurst>,
    /// Termination condition (checked after every step).
    pub until: StopCondition,
}

impl ScenarioSpec {
    /// A synchronous, fault-free scenario on one thread.
    pub fn new(family: GraphFamily) -> Self {
        ScenarioSpec {
            family,
            seed: 0,
            engine: EngineConfig::new(),
            faults: Vec::new(),
            until: StopCondition::Steps,
        }
    }

    /// Sets the graph seed (kept in sync with the envelope seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.engine.seed = seed;
        self
    }

    /// Replaces the whole execution envelope (the graph seed stays the
    /// scenario's).
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self.engine.seed = self.seed;
        self
    }

    /// Sets the worker-thread count. `0` is **not** clamped — it surfaces
    /// as [`ConfigError::ZeroThreads`](crate::config::ConfigError::ZeroThreads)
    /// when the scenario runs.
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.threads(threads);
        self
    }

    /// Sets the layout policy (RCM renumbering before sharding).
    pub fn layout(mut self, layout: LayoutPolicy) -> Self {
        self.engine = self.engine.layout(layout);
        self
    }

    /// Sets the worker pin policy (best-effort core affinity).
    pub fn pin(mut self, pin: PinPolicy) -> Self {
        self.engine = self.engine.pin(pin);
        self
    }

    /// Switches the halo-exchange execution mode on or off. Halo exchange
    /// is defined only for synchronous schedules — an asynchronous
    /// scenario with halo set fails with
    /// [`ConfigError::HaloRequiresSync`](crate::config::ConfigError::HaloRequiresSync)
    /// when run.
    pub fn halo_exchange(mut self, halo: bool) -> Self {
        self.engine = self.engine.halo(halo);
        self
    }

    /// Sets the supervised-recovery policy for worker panics (retry count,
    /// exponential backoff, barrier watchdog).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.engine = self.engine.recovery(policy);
        self
    }

    /// Arms a one-shot chaos injection (worker panic or stall) inside the
    /// instantiated runner — the scenario-level hook for robustness tests.
    pub fn inject(mut self, injection: InjectionSpec) -> Self {
        self.engine = self.engine.inject(injection);
        self
    }

    /// Switches to an asynchronous schedule: a central [`Daemon`] executed
    /// in uniform chunks of `batch` simultaneous activations.
    pub fn asynchronous(mut self, daemon: Daemon, batch: usize) -> Self {
        self.engine = self.engine.asynchronous(daemon, batch);
        self
    }

    /// Switches to an asynchronous schedule under **any** [`BatchDaemon`]
    /// (e.g. the adversarial batch daemons of `smst-adversary`).
    pub fn batch_daemon(mut self, daemon: Box<dyn BatchDaemon>) -> Self {
        self.engine = self.engine.batch_daemon(daemon);
        self
    }

    /// Adds a fault burst.
    pub fn fault_burst(mut self, at: usize, count: usize, seed: u64) -> Self {
        self.faults.push(FaultBurst { at, count, seed });
        self
    }

    /// Sets the termination condition.
    pub fn until(mut self, until: StopCondition) -> Self {
        self.until = until;
        self
    }

    /// Builds the scenario's graph.
    pub fn build_graph(&self) -> WeightedGraph {
        self.family.build(self.seed)
    }

    /// Runs the scenario: `program` over the built graph for at most
    /// `max_steps` steps, corrupting burst-selected registers with
    /// `corrupt`.
    ///
    /// Returns the final registers (as a sequential [`Network`] for
    /// interop) plus a [`ScenarioReport`].
    ///
    /// # Panics
    ///
    /// Panics if the execution envelope is invalid or a worker failure
    /// exhausts the [`RecoveryPolicy`] (see [`ScenarioSpec::try_run`] for
    /// the non-panicking variant), or if a [`FaultBurst`] is scheduled at
    /// or after `max_steps` — such a burst could never fire, and silently
    /// dropping it would make a misconfigured fault scenario look like a
    /// passing fault-free one.
    pub fn run<P, F>(&self, program: &P, corrupt: F, max_steps: usize) -> ScenarioOutcome<P>
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
        F: FnMut(NodeId, &mut P::State),
    {
        self.try_run(program, corrupt, max_steps)
            .unwrap_or_else(|e| panic!("scenario failed: {e}"))
    }

    /// [`ScenarioSpec::run`], returning a typed [`EngineError`] instead of
    /// panicking on an invalid execution envelope or an unrecovered worker
    /// failure.
    pub fn try_run<P, F>(
        &self,
        program: &P,
        corrupt: F,
        max_steps: usize,
    ) -> Result<ScenarioOutcome<P>, EngineError>
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
        F: FnMut(NodeId, &mut P::State),
    {
        self.try_run_on(program, self.build_graph(), corrupt, max_steps, None)
    }

    /// Like [`ScenarioSpec::run`], but the program is **built from the
    /// scenario's graph** (needed whenever the program embeds per-instance
    /// data, e.g. the paper's verifier carrying proof labels). Returns the
    /// outcome together with the built program, so callers can evaluate
    /// per-node quantities (verdicts, memory bits) on the final network.
    ///
    /// # Panics
    ///
    /// As [`ScenarioSpec::run`]; see [`ScenarioSpec::try_run_with`].
    pub fn run_with<P, B, F>(
        &self,
        build: B,
        corrupt: F,
        max_steps: usize,
    ) -> (ScenarioOutcome<P>, P)
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
        B: FnOnce(&WeightedGraph) -> P,
        F: FnMut(NodeId, &mut P::State),
    {
        self.try_run_with(build, corrupt, max_steps)
            .unwrap_or_else(|e| panic!("scenario failed: {e}"))
    }

    /// [`ScenarioSpec::run_with`], returning a typed [`EngineError`]
    /// instead of panicking on an invalid execution envelope or an
    /// unrecovered worker failure.
    pub fn try_run_with<P, B, F>(
        &self,
        build: B,
        corrupt: F,
        max_steps: usize,
    ) -> Result<(ScenarioOutcome<P>, P), EngineError>
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
        B: FnOnce(&WeightedGraph) -> P,
        F: FnMut(NodeId, &mut P::State),
    {
        let graph = self.build_graph();
        let program = build(&graph);
        let outcome = self.try_run_on(&program, graph, corrupt, max_steps, None)?;
        Ok((outcome, program))
    }

    /// [`ScenarioSpec::run`] with a [`RoundObserver`] attached to the
    /// instantiated runner for the duration of the run — per-step
    /// accounting (alarm counts, halo bytes, the
    /// dispatch/compute/barrier/exchange phase split) without changing
    /// the scenario's results. For programs built from the scenario's
    /// graph (the verifier workloads), build once from
    /// [`ScenarioSpec::build_graph`] and pass the program here — the
    /// scenario rebuilds the identical graph internally.
    pub fn run_observed<P, F>(
        &self,
        program: &P,
        corrupt: F,
        max_steps: usize,
        observer: Box<dyn RoundObserver>,
    ) -> Result<ScenarioOutcome<P>, EngineError>
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
        F: FnMut(NodeId, &mut P::State),
    {
        self.try_run_on(
            program,
            self.build_graph(),
            corrupt,
            max_steps,
            Some(observer),
        )
    }

    /// The driving loop, shared by every entry point: one code path over
    /// whatever [`Runner`] the envelope instantiates.
    fn try_run_on<P, F>(
        &self,
        program: &P,
        graph: WeightedGraph,
        mut corrupt: F,
        max_steps: usize,
        observer: Option<Box<dyn RoundObserver>>,
    ) -> Result<ScenarioOutcome<P>, EngineError>
    where
        P: NodeProgram + Sync + 'static,
        P::State: Send + Sync,
        F: FnMut(NodeId, &mut P::State),
    {
        if let Some(burst) = self.faults.iter().find(|b| b.at >= max_steps) {
            panic!(
                "fault burst at step {} can never fire within the {max_steps}-step budget",
                burst.at
            );
        }
        let n = graph.node_count();
        let mut runner = self.engine.instantiate(program, graph)?;
        if let Some(observer) = observer {
            runner.set_observer(observer);
        }
        // alarms and recovery are measured from the first burst; in a
        // fault-free scenario they are measured from the start of the run
        let measure_from = self.faults.iter().map(|b| b.at).min().unwrap_or(0);
        let mut injected = 0usize;
        let mut injected_nodes: Vec<NodeId> = Vec::new();
        let mut first_alarm = None;
        let mut recovered = None;
        let mut steps_run = 0usize;

        for step in 0..max_steps {
            for burst in self.faults.iter().filter(|b| b.at == step) {
                let plan = FaultPlan::random(n, burst.count.min(n), burst.seed);
                runner.apply_faults(&plan, &mut corrupt);
                injected += plan.len();
                injected_nodes.extend_from_slice(plan.nodes());
            }
            runner.try_step()?;
            steps_run = step + 1;
            let measuring = step >= measure_from;
            if first_alarm.is_none() && measuring && runner.any_alarm() {
                first_alarm = Some(step + 1 - measure_from);
            }
            match self.until {
                StopCondition::Steps => {}
                StopCondition::FirstAlarm => {
                    if first_alarm.is_some() {
                        break;
                    }
                }
                StopCondition::AllAccept => {
                    // never stop while bursts are still scheduled:
                    // converging before the burst would otherwise
                    // silently skip the configured faults
                    let bursts_pending = self.faults.iter().any(|b| b.at > step);
                    if runner.all_accept() && !bursts_pending {
                        if measuring {
                            recovered = Some(step + 1 - measure_from);
                        }
                        break;
                    }
                }
            }
        }
        let all_accept = runner.all_accept();
        let alarm_nodes = runner.alarming_nodes();
        let network = runner.into_network();

        Ok(ScenarioOutcome {
            report: ScenarioReport {
                node_count: n,
                steps_run,
                injected_faults: injected,
                first_alarm,
                recovered,
                all_accept,
                alarm_nodes,
                injected_nodes,
            },
            network,
        })
    }
}

/// What happened during a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Node count of the built graph.
    pub node_count: usize,
    /// Steps actually executed.
    pub steps_run: usize,
    /// Total registers corrupted by bursts.
    pub injected_faults: usize,
    /// Steps from the first burst (or from the start of a fault-free run)
    /// to the first alarm, if any.
    pub first_alarm: Option<usize>,
    /// Steps from the first burst (or from the start of a fault-free run)
    /// until every node accepted (only recorded under
    /// [`StopCondition::AllAccept`]).
    pub recovered: Option<usize>,
    /// Whether every node accepted at the end of the run.
    pub all_accept: bool,
    /// The nodes raising an alarm at the end of the run (original ids,
    /// ascending) — the raw material for detection-distance metrics.
    pub alarm_nodes: Vec<NodeId>,
    /// Every register the bursts actually corrupted, in injection order —
    /// the authoritative fault set for distance metrics (no caller-side
    /// replay of the burst plans needed).
    pub injected_nodes: Vec<NodeId>,
}

/// Final registers plus the run report.
#[derive(Debug)]
pub struct ScenarioOutcome<P: NodeProgram> {
    /// The run report.
    pub report: ScenarioReport,
    /// The final configuration.
    pub network: Network<P>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backend, ConfigError};
    use crate::programs::MinIdFlood;
    use smst_sim::{RecordingObserver, Verdict};

    #[test]
    fn family_node_counts_match_built_graphs() {
        let families = [
            GraphFamily::Path { n: 9 },
            GraphFamily::Ring { n: 8 },
            GraphFamily::Grid { rows: 3, cols: 4 },
            GraphFamily::Star { n: 7 },
            GraphFamily::Caterpillar { spine: 3, legs: 2 },
            GraphFamily::RandomConnected { n: 15, m: 30 },
            GraphFamily::Expander { n: 20, degree: 4 },
            GraphFamily::Complete { n: 6 },
            GraphFamily::KmwClusterTree {
                levels: 2,
                delta: 3,
            },
            GraphFamily::KmwHybrid {
                levels: 2,
                delta: 3,
            },
        ];
        for family in families {
            let g = family.build(3);
            assert_eq!(g.node_count(), family.node_count(), "{family:?}");
            assert!(g.is_connected(), "{family:?}");
        }
    }

    #[test]
    fn sync_scenario_recovers_from_burst() {
        let spec = ScenarioSpec::new(GraphFamily::Expander { n: 60, degree: 4 })
            .seed(5)
            .threads(3)
            .fault_burst(4, 10, 99)
            .until(StopCondition::AllAccept);
        let outcome = spec.run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 500);
        assert_eq!(outcome.report.injected_faults, 10);
        assert!(outcome.report.all_accept, "flood must heal after the burst");
        assert!(outcome.report.recovered.is_some());
        assert!(outcome.network.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn burst_scheduled_after_convergence_still_fires() {
        // the flood converges in ~3 steps; the burst at step 40 must still
        // fire (the AllAccept stop waits for pending bursts) and recovery
        // must be measured from it
        let spec = ScenarioSpec::new(GraphFamily::Path { n: 5 })
            .seed(2)
            .fault_burst(40, 3, 8)
            .until(StopCondition::AllAccept);
        let outcome = spec.run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 200);
        assert_eq!(outcome.report.injected_faults, 3);
        assert!(outcome.report.all_accept);
        assert!(outcome.report.recovered.is_some());
        assert!(outcome.report.steps_run > 40);
    }

    #[test]
    #[should_panic(expected = "can never fire")]
    fn burst_beyond_the_step_budget_is_rejected() {
        let spec = ScenarioSpec::new(GraphFamily::Path { n: 4 })
            .fault_burst(40, 2, 1)
            .until(StopCondition::AllAccept);
        let _ = spec.run(&MinIdFlood::new(0), |_v, s| *s = 1, 30);
    }

    #[test]
    fn zero_threads_is_a_config_error_not_a_panic() {
        let spec = ScenarioSpec::new(GraphFamily::Path { n: 4 }).threads(0);
        let err = spec
            .try_run(&MinIdFlood::new(0), |_v, s| *s = 1, 10)
            .expect_err("zero threads must be rejected");
        assert_eq!(err, EngineError::Config(ConfigError::ZeroThreads));
        let err = spec
            .try_run_with(|_g| MinIdFlood::new(0), |_v, s| *s = 1, 10)
            .expect_err("try_run_with routes through validate too");
        assert_eq!(err, EngineError::Config(ConfigError::ZeroThreads));
    }

    #[test]
    fn async_halo_is_a_config_error() {
        let spec = ScenarioSpec::new(GraphFamily::Path { n: 6 })
            .asynchronous(Daemon::RoundRobin, 2)
            .halo_exchange(true);
        assert_eq!(
            spec.try_run(&MinIdFlood::new(0), |_v, s| *s = 1, 10)
                .expect_err("halo requires sync"),
            EngineError::Config(ConfigError::HaloRequiresSync)
        );
    }

    #[test]
    fn injected_panic_is_retried_away_inside_a_scenario() {
        let base = ScenarioSpec::new(GraphFamily::Expander { n: 60, degree: 4 })
            .seed(5)
            .threads(3)
            .fault_burst(4, 10, 99)
            .until(StopCondition::AllAccept);
        let clean = base.run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 500);
        let chaos = base
            .clone()
            .recovery(RecoveryPolicy::retries(2))
            .inject(InjectionSpec::panic_at(2, 0))
            .run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 500);
        assert_eq!(chaos.network.states(), clean.network.states());
        assert_eq!(chaos.report.steps_run, clean.report.steps_run);
        assert_eq!(chaos.report.recovered, clean.report.recovered);
    }

    #[test]
    fn unrecovered_panic_is_a_typed_pool_error() {
        let spec = ScenarioSpec::new(GraphFamily::Path { n: 8 })
            .threads(2)
            .inject(InjectionSpec::panic_at(0, 0));
        let err = spec
            .try_run(&MinIdFlood::new(0), |_v, s| *s = 1, 10)
            .expect_err("no recovery policy: the injected panic must surface");
        match err {
            EngineError::Pool(crate::pool::PoolError::WorkerPanic { attempts, message }) => {
                assert_eq!(attempts, 1);
                assert!(message.contains("injected chaos panic"), "{message}");
            }
            other => panic!("expected a pool error, got {other:?}"),
        }
    }

    #[test]
    fn async_scenario_runs_and_reports() {
        let spec = ScenarioSpec::new(GraphFamily::RandomConnected { n: 30, m: 70 })
            .seed(2)
            .threads(2)
            .asynchronous(
                Daemon::Random {
                    seed: 4,
                    extra_factor: 1,
                },
                4,
            )
            .until(StopCondition::AllAccept);
        let outcome = spec.run(&MinIdFlood::new(0), |_v, s| *s = 1, 200);
        assert!(outcome.report.all_accept);
        assert_eq!(outcome.report.injected_faults, 0);
        assert!(outcome.report.steps_run <= 200);
    }

    #[test]
    fn layout_does_not_change_outcomes() {
        let base = ScenarioSpec::new(GraphFamily::Expander { n: 80, degree: 4 })
            .seed(9)
            .threads(3)
            .fault_burst(2, 8, 5)
            .until(StopCondition::AllAccept);
        let plain = base
            .clone()
            .run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 300);
        let laid_out =
            base.layout(LayoutPolicy::Rcm)
                .run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 300);
        assert_eq!(plain.network.states(), laid_out.network.states());
        assert_eq!(plain.report.steps_run, laid_out.report.steps_run);
        assert_eq!(
            plain.report.injected_faults,
            laid_out.report.injected_faults
        );
        assert_eq!(plain.report.recovered, laid_out.report.recovered);
    }

    #[test]
    fn halo_and_pinning_do_not_change_outcomes() {
        let base = ScenarioSpec::new(GraphFamily::Expander { n: 70, degree: 4 })
            .seed(11)
            .threads(3)
            .fault_burst(3, 6, 2)
            .until(StopCondition::AllAccept);
        let plain = base
            .clone()
            .run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 300);
        let tuned = base
            .layout(LayoutPolicy::Rcm)
            .halo_exchange(true)
            .pin(PinPolicy::Cores)
            .run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 300);
        assert_eq!(plain.network.states(), tuned.network.states());
        assert_eq!(plain.report.steps_run, tuned.report.steps_run);
        assert_eq!(plain.report.recovered, tuned.report.recovered);
        assert_eq!(plain.report.alarm_nodes, tuned.report.alarm_nodes);
    }

    #[test]
    fn reference_backend_runs_the_same_scenario() {
        // the sequential reference is reachable through the same façade —
        // and agrees with the sharded engine bit for bit
        let base = ScenarioSpec::new(GraphFamily::RandomConnected { n: 40, m: 90 })
            .seed(4)
            .fault_burst(2, 5, 9)
            .until(StopCondition::AllAccept);
        let sharded = base
            .clone()
            .threads(4)
            .run(&MinIdFlood::new(0), |_v, s| *s = u64::MAX, 300);
        let reference = base.engine(EngineConfig::reference()).run(
            &MinIdFlood::new(0),
            |_v, s| *s = u64::MAX,
            300,
        );
        assert_eq!(sharded.network.states(), reference.network.states());
        assert_eq!(sharded.report.steps_run, reference.report.steps_run);
        assert_eq!(sharded.report.recovered, reference.report.recovered);
    }

    #[test]
    fn engine_setter_preserves_the_graph_seed() {
        let spec = ScenarioSpec::new(GraphFamily::Path { n: 8 })
            .seed(42)
            .engine(EngineConfig::new().threads(2).backend(Backend::Sharded));
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.engine.seed, 42, "envelope seed follows the scenario");
        assert_eq!(spec.engine.threads, 2);
    }

    #[test]
    fn run_with_builds_the_program_from_the_scenario_graph() {
        let spec = ScenarioSpec::new(GraphFamily::Ring { n: 10 }).until(StopCondition::AllAccept);
        let (outcome, program) = spec.run_with(
            |g| {
                assert_eq!(g.node_count(), 10);
                MinIdFlood::new(0)
            },
            |_v, s| *s = 1,
            100,
        );
        assert_eq!(program.leader(), 0);
        assert!(outcome.report.all_accept);
        assert!(outcome.report.alarm_nodes.is_empty());
    }

    #[test]
    fn scenarios_are_reproducible() {
        let spec = ScenarioSpec::new(GraphFamily::RandomConnected { n: 40, m: 90 })
            .seed(8)
            .threads(4)
            .fault_burst(2, 6, 3);
        let a = spec.run(&MinIdFlood::new(0), |_v, s| *s ^= 0xFFFF, 20);
        let b = spec.run(&MinIdFlood::new(0), |_v, s| *s ^= 0xFFFF, 20);
        assert_eq!(a.network.states(), b.network.states());
        assert_eq!(a.report.injected_faults, b.report.injected_faults);
    }

    #[test]
    fn observed_runs_report_per_step_stats() {
        let spec = ScenarioSpec::new(GraphFamily::Ring { n: 16 })
            .seed(3)
            .threads(2)
            .until(StopCondition::Steps);
        let recording = RecordingObserver::new();
        let outcome = spec
            .run_observed(
                &MinIdFlood::new(0),
                |_v, s| *s = 1,
                5,
                Box::new(recording.clone()),
            )
            .expect("valid config");
        assert_eq!(outcome.report.steps_run, 5);
        assert_eq!(recording.rounds_observed(), 5);
        assert!(recording
            .deterministic_trace()
            .iter()
            .enumerate()
            .all(|(i, t)| t.0 == i && t.2 == 16));
    }

    #[test]
    fn alarm_stop_condition_reports_detection() {
        // a one-node "program" that rejects as soon as its register is
        // nonzero: detection must be exactly 1 step after the burst
        struct RejectNonZero;
        impl NodeProgram for RejectNonZero {
            type State = u64;
            fn init(&self, _ctx: &smst_sim::NodeContext) -> u64 {
                0
            }
            fn step(&self, _ctx: &smst_sim::NodeContext, own: &u64, _n: &[&u64]) -> u64 {
                *own
            }
            fn verdict(&self, _ctx: &smst_sim::NodeContext, state: &u64) -> Verdict {
                if *state == 0 {
                    Verdict::Accept
                } else {
                    Verdict::Reject
                }
            }
        }
        let spec = ScenarioSpec::new(GraphFamily::Ring { n: 12 })
            .fault_burst(3, 2, 7)
            .until(StopCondition::FirstAlarm);
        let outcome = spec.run(&RejectNonZero, |_v, s| *s = 9, 50);
        assert_eq!(outcome.report.first_alarm, Some(1));
        assert_eq!(outcome.report.steps_run, 4);

        // fault-free scenario: an initial configuration that already rejects
        // must still be reported and must still stop the run
        struct RejectFromInit;
        impl NodeProgram for RejectFromInit {
            type State = u64;
            fn init(&self, ctx: &smst_sim::NodeContext) -> u64 {
                ctx.id // nonzero everywhere except the leader
            }
            fn step(&self, _ctx: &smst_sim::NodeContext, own: &u64, _n: &[&u64]) -> u64 {
                *own
            }
            fn verdict(&self, _ctx: &smst_sim::NodeContext, state: &u64) -> Verdict {
                if *state == 0 {
                    Verdict::Accept
                } else {
                    Verdict::Reject
                }
            }
        }
        let spec = ScenarioSpec::new(GraphFamily::Ring { n: 12 }).until(StopCondition::FirstAlarm);
        let mut poisoned = false;
        let outcome = spec.run(
            &RejectFromInit,
            |_v, _s| {
                poisoned = true;
            },
            50,
        );
        assert!(!poisoned, "no bursts configured, no corruption expected");
        assert_eq!(outcome.report.first_alarm, Some(1));
        assert_eq!(outcome.report.steps_run, 1);
    }
}
