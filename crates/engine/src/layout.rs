//! Cache-aware shard layout: RCM renumbering plus an inverse permutation.
//!
//! The engine stores registers densely by node index and splits rounds into
//! contiguous [`Shard`](crate::shard::Shard)s, so the cache behaviour of a
//! round is governed by how far a node's neighbours are from it in index
//! space: a neighbour outside the shard's slice is a cross-shard (and on
//! big graphs, cross-LLC) read. Graph generators hand out essentially
//! random indices, which on low-diameter graphs (the expander topologies
//! motivated by the KMW lower-bound line of work) makes almost *every*
//! neighbour read a far miss.
//!
//! [`Layout`] fixes the placement, not the graph: a **reverse Cuthill–McKee
//! (RCM)** pass renumbers nodes so that neighbours get nearby indices
//! (minimizing index bandwidth), and the engine keeps registers, contexts
//! and the CSR in the renumbered order — the per-shard slices become
//! shard-local state arenas whose round working set is mostly
//! shard-resident. The permutation is carried *with its inverse*, so every
//! public runner API (states, faults, verdicts, interop with the sequential
//! [`Network`](smst_sim::Network)) keeps speaking **original node ids**;
//! renumbering is invisible except in wall-clock.
//!
//! Renumbering never changes results: the permuted CSR lists each node's
//! neighbours in the **original port order** (only the ids are mapped), so
//! every [`NodeProgram::step`](smst_sim::NodeProgram::step) call sees
//! exactly the inputs it would see without the layout pass — bit-for-bit.

use crate::topology::CsrTopology;

/// How the engine renumbers nodes before sharding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutPolicy {
    /// Keep the graph's own numbering (the pre-layout engine behaviour).
    #[default]
    Identity,
    /// Reverse Cuthill–McKee: BFS from a minimum-degree node, neighbours
    /// visited in degree order, final order reversed. Deterministic.
    Rcm,
}

impl LayoutPolicy {
    /// Builds the layout of a topology under this policy.
    pub fn build(&self, topo: &CsrTopology) -> Layout {
        match self {
            LayoutPolicy::Identity => Layout::identity(topo.node_count()),
            LayoutPolicy::Rcm => Layout::rcm(topo),
        }
    }
}

/// A node renumbering together with its inverse.
///
/// `internal = new_of[original]` is where the engine stores a node;
/// `original = old_of[internal]` recovers the id the rest of the workspace
/// uses. Both directions are O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    new_of: Vec<u32>,
    old_of: Vec<u32>,
    identity: bool,
}

impl Layout {
    /// The identity layout on `n` nodes.
    pub fn identity(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "at most 2^32 - 1 nodes");
        let ids: Vec<u32> = (0..n as u32).collect();
        Layout {
            new_of: ids.clone(),
            old_of: ids,
            identity: true,
        }
    }

    /// The reverse Cuthill–McKee layout of a topology.
    ///
    /// Components are laid out one after another, each starting from its
    /// minimum-degree node (ties by id) with neighbours enqueued in
    /// `(degree, id)` order; the concatenated order is reversed. The result
    /// is a pure function of the topology.
    pub fn rcm(topo: &CsrTopology) -> Self {
        let n = topo.node_count();
        assert!(u32::try_from(n).is_ok(), "at most 2^32 - 1 nodes");
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // min-degree start nodes, one BFS per component
        let mut starts: Vec<u32> = (0..n as u32).collect();
        starts.sort_by_key(|&v| (topo.degree(v as usize), v));
        let mut queue = std::collections::VecDeque::new();
        let mut buf: Vec<u32> = Vec::new();
        for &start in &starts {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                buf.clear();
                buf.extend(
                    topo.neighbors_of(v as usize)
                        .iter()
                        .copied()
                        .filter(|&u| !visited[u as usize]),
                );
                buf.sort_by_key(|&u| (topo.degree(u as usize), u));
                buf.dedup();
                for &u in &buf {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        order.reverse();
        let mut new_of = vec![0u32; n];
        for (internal, &original) in order.iter().enumerate() {
            new_of[original as usize] = internal as u32;
        }
        Layout {
            new_of,
            old_of: order,
            identity: false,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.new_of.len()
    }

    /// `true` on the empty graph.
    pub fn is_empty(&self) -> bool {
        self.new_of.is_empty()
    }

    /// `true` if this layout never moved anything (built by
    /// [`Layout::identity`]); the runners use it to skip translation on the
    /// default path.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// The engine-internal index of an original node id.
    pub fn internal(&self, original: usize) -> usize {
        self.new_of[original] as usize
    }

    /// The original node id stored at an engine-internal index.
    pub fn original(&self, internal: usize) -> usize {
        self.old_of[internal] as usize
    }

    /// Reorders a node-indexed vector from original order into internal
    /// order without cloning.
    pub fn permute<T>(&self, original_order: Vec<T>) -> Vec<T> {
        assert_eq!(original_order.len(), self.len(), "one entry per node");
        if self.identity {
            return original_order;
        }
        let mut slots: Vec<Option<T>> = original_order.into_iter().map(Some).collect();
        self.old_of
            .iter()
            .map(|&old| {
                slots[old as usize]
                    .take()
                    .expect("permutation is a bijection")
            })
            .collect()
    }

    /// Reorders a node-indexed vector from internal order back into
    /// original order without cloning (the inverse of [`Layout::permute`]).
    pub fn unpermute<T>(&self, internal_order: Vec<T>) -> Vec<T> {
        assert_eq!(internal_order.len(), self.len(), "one entry per node");
        if self.identity {
            return internal_order;
        }
        let mut slots: Vec<Option<T>> = internal_order.into_iter().map(Some).collect();
        self.new_of
            .iter()
            .map(|&new| {
                slots[new as usize]
                    .take()
                    .expect("permutation is a bijection")
            })
            .collect()
    }

    /// The renumbered CSR: node `internal(v)` lists `internal(u)` for every
    /// neighbour `u` of `v`, **in `v`'s original port order** — the order
    /// [`NodeProgram::step`](smst_sim::NodeProgram::step) observes is
    /// unchanged, so executions are bit-for-bit identical.
    pub fn apply(&self, topo: &CsrTopology) -> CsrTopology {
        if self.identity {
            return topo.clone();
        }
        let n = topo.node_count();
        assert_eq!(n, self.len(), "layout and topology must agree on n");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(topo.entry_count());
        offsets.push(0);
        for internal in 0..n {
            let original = self.old_of[internal] as usize;
            neighbors.extend(
                topo.neighbors_of(original)
                    .iter()
                    .map(|&u| self.new_of[u as usize]),
            );
            offsets.push(neighbors.len());
        }
        CsrTopology::from_raw(offsets, neighbors)
    }
}

/// Mean index distance `|v − u|` over all directed adjacency entries — the
/// quantity RCM minimizes, and a proxy for how much of a round's neighbour
/// traffic stays inside a shard's slice. Lower is better.
pub fn mean_bandwidth(topo: &CsrTopology) -> f64 {
    let entries = topo.entry_count();
    if entries == 0 {
        return 0.0;
    }
    let total: u64 = (0..topo.node_count())
        .flat_map(|v| {
            topo.neighbors_of(v)
                .iter()
                .map(move |&u| (v as i64 - u as i64).unsigned_abs())
        })
        .sum();
    total as f64 / entries as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{expander_graph, random_connected_graph, star_graph};

    #[test]
    fn identity_layout_is_a_no_op() {
        let g = random_connected_graph(30, 70, 1);
        let topo = CsrTopology::build(&g);
        let layout = LayoutPolicy::Identity.build(&topo);
        assert!(layout.is_identity());
        assert_eq!(layout.apply(&topo), topo);
        for v in 0..30 {
            assert_eq!(layout.internal(v), v);
            assert_eq!(layout.original(v), v);
        }
    }

    #[test]
    fn rcm_is_a_bijection_with_inverse() {
        for g in [
            random_connected_graph(80, 200, 4),
            expander_graph(64, 6, 9),
            star_graph(33, 2),
        ] {
            let topo = CsrTopology::build(&g);
            let layout = Layout::rcm(&topo);
            assert!(!layout.is_identity());
            let n = topo.node_count();
            let mut seen = vec![false; n];
            for v in 0..n {
                assert_eq!(layout.original(layout.internal(v)), v);
                assert_eq!(layout.internal(layout.original(v)), v);
                assert!(!seen[layout.internal(v)], "index used twice");
                seen[layout.internal(v)] = true;
            }
        }
    }

    #[test]
    fn applied_topology_preserves_port_order() {
        let g = random_connected_graph(50, 140, 6);
        let topo = CsrTopology::build(&g);
        let layout = Layout::rcm(&topo);
        let permuted = layout.apply(&topo);
        assert_eq!(permuted.node_count(), topo.node_count());
        assert_eq!(permuted.entry_count(), topo.entry_count());
        for v in 0..topo.node_count() {
            let original_ports = topo.neighbors_of(v);
            let permuted_ports = permuted.neighbors_of(layout.internal(v));
            assert_eq!(original_ports.len(), permuted_ports.len());
            for (p, (&u, &pu)) in original_ports.iter().zip(permuted_ports).enumerate() {
                assert_eq!(
                    layout.internal(u as usize),
                    pu as usize,
                    "port {p} of node {v} remapped incorrectly"
                );
            }
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_on_random_graphs() {
        let g = random_connected_graph(600, 1500, 11);
        let topo = CsrTopology::build(&g);
        let before = mean_bandwidth(&topo);
        let after = mean_bandwidth(&Layout::rcm(&topo).apply(&topo));
        assert!(
            after < before,
            "RCM should reduce mean bandwidth: before {before:.1}, after {after:.1}"
        );
    }

    #[test]
    fn permute_round_trips() {
        let g = expander_graph(40, 4, 2);
        let topo = CsrTopology::build(&g);
        let layout = Layout::rcm(&topo);
        let data: Vec<u64> = (0..40u64).map(|x| x * 7 + 3).collect();
        let there = layout.permute(data.clone());
        assert_eq!(layout.unpermute(there.clone()), data);
        // placement is consistent with the index maps
        for v in 0..40 {
            assert_eq!(there[layout.internal(v)], data[v]);
        }
    }
}
