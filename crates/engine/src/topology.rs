//! A compressed-sparse-row (CSR) view of a [`WeightedGraph`].
//!
//! The simulator's [`smst_graph::WeightedGraph`] stores one incidence `Vec`
//! per node — flexible for graph construction, but cache-hostile when a
//! million-node round has to walk every adjacency list. [`CsrTopology`]
//! flattens the port-ordered neighbour indices into two arrays so a round is
//! a single linear sweep: `neighbors[offsets[v]..offsets[v + 1]]` are the
//! dense indices of `v`'s neighbours, **in port order** (port `p` of `v` is
//! entry `offsets[v] + p`), matching the `neighbors` slice order that
//! [`smst_sim::NodeProgram::step`] expects.

use smst_graph::{NodeId, WeightedGraph};

/// Flattened, port-ordered adjacency of a graph, indexed by dense node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrTopology {
    /// `offsets[v]..offsets[v + 1]` delimits `v`'s neighbour slice.
    offsets: Vec<usize>,
    /// Dense index of the neighbour behind each port, node-major, port order.
    neighbors: Vec<u32>,
}

impl CsrTopology {
    /// Builds the CSR index of a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` nodes (the engine packs
    /// neighbour indices into 32 bits to halve the index's footprint).
    pub fn build(graph: &WeightedGraph) -> Self {
        let n = graph.node_count();
        assert!(
            u32::try_from(n).is_ok(),
            "CsrTopology supports at most 2^32 - 1 nodes"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for v in graph.nodes() {
            for &e in graph.incident_edges(v) {
                neighbors.push(graph.edge(e).other(v).index() as u32);
            }
            offsets.push(neighbors.len());
        }
        CsrTopology { offsets, neighbors }
    }

    /// Assembles a topology from raw CSR arrays (used by the layout pass to
    /// build a renumbered copy without round-tripping through a graph).
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a monotone cover of `neighbors`.
    pub(crate) fn from_raw(offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain a leading 0");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            neighbors.len(),
            "offsets must cover the neighbour array"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        CsrTopology { offsets, neighbors }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The dense neighbour indices of node `v`, in port order.
    pub fn neighbors_of(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Total number of directed adjacency entries (`2·m`).
    pub fn entry_count(&self) -> usize {
        self.neighbors.len()
    }

    /// The work weight of node `v` used for shard balancing: reading all
    /// neighbour registers plus rewriting one's own.
    pub fn work(&self, v: usize) -> usize {
        self.degree(v) + 1
    }

    /// Prefix of total work up to (excluding) node `v`; used by the
    /// balanced partitioner.
    pub fn work_prefix(&self, v: usize) -> usize {
        self.offsets[v] + v
    }

    /// Total work of a full round.
    pub fn total_work(&self) -> usize {
        self.entry_count() + self.node_count()
    }
}

/// Convenience: the [`NodeId`]s of a topology.
pub fn node_ids(topo: &CsrTopology) -> impl Iterator<Item = NodeId> + '_ {
    (0..topo.node_count()).map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{path_graph, random_connected_graph, star_graph};

    #[test]
    fn csr_matches_incidence_lists() {
        let g = random_connected_graph(40, 120, 7);
        let topo = CsrTopology::build(&g);
        assert_eq!(topo.node_count(), 40);
        assert_eq!(topo.entry_count(), 2 * g.edge_count());
        for v in g.nodes() {
            assert_eq!(topo.degree(v.index()), g.degree(v));
            let expected: Vec<u32> = g
                .incident_edges(v)
                .iter()
                .map(|&e| g.edge(e).other(v).index() as u32)
                .collect();
            assert_eq!(topo.neighbors_of(v.index()), expected.as_slice());
        }
    }

    #[test]
    fn port_order_is_preserved() {
        // star: centre's ports are 0..n-1 in leaf order
        let g = star_graph(6, 1);
        let topo = CsrTopology::build(&g);
        assert_eq!(topo.neighbors_of(0), &[1, 2, 3, 4, 5]);
        for leaf in 1..6 {
            assert_eq!(topo.neighbors_of(leaf), &[0]);
        }
    }

    #[test]
    fn work_accounting() {
        let g = path_graph(4, 0);
        let topo = CsrTopology::build(&g);
        // degrees 1, 2, 2, 1 → work 2, 3, 3, 2
        assert_eq!(topo.total_work(), 10);
        assert_eq!(topo.work(0), 2);
        assert_eq!(topo.work(1), 3);
        assert_eq!(topo.work_prefix(0), 0);
        assert_eq!(topo.work_prefix(2), 5);
    }
}
