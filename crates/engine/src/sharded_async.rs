//! The sharded asynchronous executor: daemon-driven batches of activations.
//!
//! The sequential [`AsyncRunner`](smst_sim::AsyncRunner) activates one node
//! at a time. [`ShardedAsyncRunner`] executes the standard **distributed
//! daemon**: any [`BatchDaemon`] — each time unit is a sequence of batches
//! of simultaneous activations. All activations of a batch read the
//! registers as they were at the start of the batch, and a batch is
//! computed in parallel on the persistent
//! [`WorkerPool`](crate::pool::WorkerPool) (an epoch bump on parked
//! threads, not a per-batch thread spawn). [`EngineConfig::asynchronous`]
//! wraps a central [`Daemon`](smst_sim::Daemon) into a
//! [`ChunkedDaemon`](smst_sim::ChunkedDaemon) (uniform chunks of `batch`
//! activations), which was the engine's only schedule shape before the
//! trait; adversarial batch daemons live in `smst-adversary`.
//!
//! # Determinism
//!
//! The schedule is a pure function of `(daemon, n, unit_index)` — any RNG
//! is re-seeded per unit from the daemon's seed, never from wall-clock or
//! thread identity — and batch results are pure functions of the pre-batch
//! registers. Runs are therefore **bit-for-bit reproducible at any thread
//! count** and under any [`LayoutPolicy`]; only the daemon's batching (part
//! of the schedule's semantics, not of its execution) changes outcomes.
//! With batch width 1 the runner reproduces the sequential
//! [`AsyncRunner`](smst_sim::AsyncRunner) activation-for-activation, which
//! `tests/` pins differentially.
//!
//! # Recovery
//!
//! Under a [`RecoveryPolicy`] with retries, every time unit is guarded:
//! the runner snapshots its registers before the unit, catches a worker
//! panic, restores the snapshot, backs off and replays the unit. The
//! schedule is a pure function of `(daemon, n, unit_index)` and the unit
//! counter only advances on success, so the replay re-executes the exact
//! same schedule — recovery is invisible in the deterministic trace.
//! Exhausted retries surface as typed [`PoolError`]s through
//! [`try_step_time_unit`](ShardedAsyncRunner::try_step_time_unit) /
//! [`Runner::try_step`]. (There is no round barrier on this path, so the
//! watchdog knob is inert here.)

use crate::config::{
    ArmedInjection, Backend, ConfigError, EngineConfig, EngineError, InjectionSpec, Mode,
    RecoveryPolicy,
};
use crate::layout::{Layout, LayoutPolicy};
use crate::pool::{panic_message, PinPolicy, PoolError, PoolHandle};
use crate::runner::{RunReport, Runner, StopCondition};
use crate::topology::CsrTopology;
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{
    BatchDaemon, FaultPlan, Network, NodeContext, NodeProgram, RoundObserver, RoundStats, Verdict,
};

/// Runs a [`NodeProgram`] under an asynchronous daemon, executing each time
/// unit's schedule in parallel batches.
#[derive(Debug)]
pub struct ShardedAsyncRunner<'p, P: NodeProgram> {
    program: &'p P,
    graph: WeightedGraph,
    /// CSR in internal (layout) order.
    topo: CsrTopology,
    layout: Layout,
    /// Contexts and registers in internal (layout) order.
    contexts: Vec<NodeContext>,
    states: Vec<P::State>,
    /// `None` only transiently inside `unit_attempt` (the daemon is taken
    /// out so its borrowed batches can drive `&mut self`, and put back
    /// unconditionally — even across a mid-unit panic, so a retried unit
    /// replays the identical schedule).
    daemon: Option<Box<dyn BatchDaemon>>,
    pool: PoolHandle,
    pin: PinPolicy,
    threads: usize,
    time_units: usize,
    activations: usize,
    /// Supervised recovery for panicked time units (the watchdog knob is
    /// inert here — there is no round barrier on this path).
    recovery: RecoveryPolicy,
    /// A one-shot chaos injection, armed until it fires.
    injection: Option<ArmedInjection>,
    /// Per-time-unit measurement hook; stats are computed only while
    /// attached.
    observer: Option<Box<dyn RoundObserver>>,
    /// Nanoseconds the current observed time unit spent in
    /// [`activate_batch`](Self::activate_batch) (batch compute, including
    /// the pool fan-out); accumulated only while an observer is attached.
    unit_compute_ns: u64,
}

impl<'p, P> ShardedAsyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    /// Builds the runner an [`EngineConfig`] describes (an asynchronous
    /// sharded envelope): daemon, threads, layout and pinning all come
    /// from the one validated config — the typed-constructor twin of
    /// [`EngineConfig::instantiate`] for callers that need the concrete
    /// runner (e.g. to read [`activations`](Self::activations)).
    pub fn from_config(
        program: &'p P,
        graph: WeightedGraph,
        config: &EngineConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let Mode::Async(daemon) = &config.mode else {
            return Err(ConfigError::WrongMode {
                expected: "sharded asynchronous",
                got: config.describe(),
            });
        };
        if config.backend != Backend::Sharded {
            return Err(ConfigError::WrongMode {
                expected: "sharded asynchronous",
                got: config.describe(),
            });
        }
        let mut runner = Self::with_batch_daemon(
            program,
            graph,
            daemon.build(),
            config.threads,
            config.layout,
        )
        .pinning(config.pin);
        runner.recovery = config.recovery;
        runner.injection = config.injection.map(ArmedInjection::new);
        Ok(runner)
    }

    /// Creates a runner under **any** [`BatchDaemon`] — the fully general
    /// distributed daemon: every time unit executes the daemon's batches in
    /// order, each batch's activations simultaneous (pre-batch register
    /// reads), in parallel on the worker pool.
    pub fn with_batch_daemon(
        program: &'p P,
        graph: WeightedGraph,
        daemon: Box<dyn BatchDaemon>,
        threads: usize,
        policy: LayoutPolicy,
    ) -> Self {
        let base_topo = CsrTopology::build(&graph);
        let layout = policy.build(&base_topo);
        let topo = layout.apply(&base_topo);
        let contexts: Vec<NodeContext> = (0..graph.node_count())
            .map(|internal| NodeContext::for_node(&graph, NodeId(layout.original(internal))))
            .collect();
        let states: Vec<P::State> = contexts.iter().map(|ctx| program.init(ctx)).collect();
        let threads = threads.max(1);
        let pool = PoolHandle::for_threads(threads);
        ShardedAsyncRunner {
            program,
            graph,
            topo,
            layout,
            contexts,
            states,
            daemon: Some(daemon),
            pool,
            pin: PinPolicy::None,
            threads,
            time_units: 0,
            activations: 0,
            recovery: RecoveryPolicy::default(),
            injection: None,
            observer: None,
            unit_compute_ns: 0,
        }
    }

    /// Sets the [`RecoveryPolicy`] guarding every time unit (retries +
    /// backoff; the watchdog knob is inert on this path). Results are
    /// recovery-invariant: a replay re-executes the exact same schedule
    /// from the pre-unit registers.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Arms a one-shot chaos [`InjectionSpec`] (tests and campaigns): the
    /// matching `(time unit, batch piece)` compute misbehaves exactly once.
    pub fn inject(mut self, spec: InjectionSpec) -> Self {
        self.injection = Some(ArmedInjection::new(spec));
        self
    }

    /// Attaches a [`RoundObserver`] invoked after every time unit
    /// (replacing any previous one). Purely observational — batch
    /// outcomes never change.
    pub fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn RoundObserver>> {
        self.observer.take()
    }

    /// Sets the worker [`PinPolicy`], re-acquiring a pool whose workers
    /// were spawned under it. Purely a wall-clock knob — batch outcomes are
    /// thread- and placement-invariant by the determinism contract.
    pub fn pinning(mut self, pin: PinPolicy) -> Self {
        if pin != self.pin {
            self.pin = pin;
            self.pool = PoolHandle::for_threads_with(self.threads, pin);
        }
        self
    }

    /// The worker pin policy the runner dispatches under.
    pub fn pin_policy(&self) -> PinPolicy {
        self.pin
    }

    /// Normalized asynchronous time units elapsed so far.
    pub fn time_units(&self) -> usize {
        self.time_units
    }

    /// Raw single-node activations executed so far.
    pub fn activations(&self) -> usize {
        self.activations
    }

    /// The daemon driving the schedule.
    pub fn daemon(&self) -> &dyn BatchDaemon {
        self.daemon
            .as_deref()
            .expect("runner daemon missing: a prior time unit panicked mid-schedule")
    }

    /// The node layout (identity unless built with
    /// [`LayoutPolicy::Rcm`]).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The pool handle the runner dispatches batches on.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The graph being executed.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// All registers in the engine's **internal storage order** — original
    /// node-id order exactly when [`layout`](Self::layout)
    /// `.is_identity()`. Use [`states_snapshot`](Self::states_snapshot) for
    /// an order-independent view.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The registers in original node-id order (clones; layout-independent).
    pub fn states_snapshot(&self) -> Vec<P::State> {
        (0..self.states.len())
            .map(|v| self.states[self.layout.internal(v)].clone())
            .collect()
    }

    /// The register of one node (original id).
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[self.layout.internal(v.index())]
    }

    /// Mutable access to one register (fault injection; original id).
    pub fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        &mut self.states[self.layout.internal(v.index())]
    }

    /// The static context of a node (original id).
    pub fn context(&self, v: NodeId) -> &NodeContext {
        &self.contexts[self.layout.internal(v.index())]
    }

    /// The nodes currently raising an alarm (original ids, ascending).
    pub fn alarming_nodes(&self) -> Vec<NodeId> {
        (0..self.states.len())
            .map(NodeId)
            .filter(|v| {
                let i = self.layout.internal(v.index());
                self.program.verdict(&self.contexts[i], &self.states[i]) == Verdict::Reject
            })
            .collect()
    }

    /// Applies a [`FaultPlan`] through a caller-supplied mutator.
    pub fn apply_faults<F>(&mut self, plan: &FaultPlan, mut mutate: F)
    where
        F: FnMut(NodeId, &mut P::State),
    {
        for &v in plan.nodes() {
            mutate(v, &mut self.states[self.layout.internal(v.index())]);
        }
    }

    /// Consumes the runner, returning a sequential [`Network`] holding the
    /// final registers in original node-id order.
    pub fn into_network(self) -> Network<P> {
        let states = self.layout.unpermute(self.states);
        Network::with_states(self.graph, states)
    }

    /// Executes one batch of simultaneous activations (`chunk` holds
    /// original node ids).
    fn activate_batch(&mut self, chunk: &[u32]) {
        // all reads are pre-batch: the next states are fully computed before
        // any register is written, so results do not depend on the worker
        // split (the spawn threshold and the layout cannot change outcomes,
        // only wall-clock)
        // smst-lint: allow(clock, reason = "observer-gated batch timing; wall time never feeds round state")
        let batch_start = self.observer.is_some().then(std::time::Instant::now);
        let layout = &self.layout;
        // under the identity layout the daemon's chunk already holds
        // internal indices: borrow it instead of allocating per batch
        let translated: Vec<u32>;
        let internal: &[u32] = if layout.is_identity() {
            chunk
        } else {
            translated = chunk
                .iter()
                .map(|&v| layout.internal(v as usize) as u32)
                .collect();
            &translated
        };
        // one worker piece per MIN_BATCH_SPAWN activations, capped by the
        // thread count; pieces == 1 stays inline on the caller
        let pieces = self.threads.min(internal.len() / MIN_BATCH_SPAWN).max(1);
        let injection = self.injection.as_ref();
        let unit = self.time_units;
        let computed: Vec<P::State> = if pieces == 1 {
            if let Some(inj) = injection {
                inj.maybe_fire(unit, 0);
            }
            compute_nodes(
                self.program,
                &self.topo,
                &self.contexts,
                &self.states,
                internal,
            )
        } else {
            let (program, topo) = (self.program, &self.topo);
            let (contexts, states) = (&self.contexts, &self.states);
            let nodes = internal;
            let parts = self.pool.pool().dispatch_map(pieces, |k| {
                if let Some(inj) = injection {
                    inj.maybe_fire(unit, k);
                }
                let lo = nodes.len() * k / pieces;
                let hi = nodes.len() * (k + 1) / pieces;
                compute_nodes(program, topo, contexts, states, &nodes[lo..hi])
            });
            let mut all = Vec::with_capacity(nodes.len());
            for part in parts {
                all.extend(part);
            }
            all
        };
        for (&v, value) in internal.iter().zip(computed) {
            self.states[v as usize] = value;
        }
        self.activations += chunk.len();
        if let Some(t) = batch_start {
            self.unit_compute_ns += t.elapsed().as_nanos() as u64;
        }
    }

    /// One attempt at a time unit's full schedule. The daemon is put back
    /// in its slot **unconditionally** — a panic leaves the runner ready to
    /// replay the exact same unit (the schedule is a pure function of
    /// `(daemon, n, unit_index)` and the unit counter has not advanced).
    fn unit_attempt(&mut self) -> Result<(), Box<dyn std::any::Any + Send>> {
        // take the daemon out so its borrowed batches can drive &mut self;
        // for_each_batch lends slices (no per-batch Vec materialization —
        // ChunkedDaemon chunks one flat schedule, the adversarial daemons
        // lend their precomputed node sets)
        let daemon = self
            .daemon
            .take()
            .expect("runner daemon missing (stolen mid-unit?)");
        let n = self.topo.node_count();
        let unit = self.time_units;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut chunk: Vec<u32> = Vec::new();
            daemon.for_each_batch(n, unit, &mut |batch| {
                if batch.is_empty() {
                    return;
                }
                chunk.clear();
                chunk.extend(batch.iter().map(|v| v.index() as u32));
                self.activate_batch(&chunk);
            });
        }));
        self.daemon = Some(daemon);
        outcome
    }

    /// Executes one normalized time unit (every node activated at least
    /// once, in daemon-chosen batches).
    ///
    /// # Panics
    ///
    /// Panics with the [`PoolError`] message when the unit fails past its
    /// [`RecoveryPolicy`] — the panicking twin of
    /// [`try_step_time_unit`](Self::try_step_time_unit).
    pub fn step_time_unit(&mut self) {
        self.try_step_time_unit()
            .unwrap_or_else(|err| panic!("{err}"));
    }

    /// [`step_time_unit`](Self::step_time_unit) surfacing failures as a
    /// typed [`PoolError`]: a panicked unit is replayed under the
    /// configured [`RecoveryPolicy`] (restore the pre-unit registers, back
    /// off, re-run the identical schedule) and only surfaces as `Err` once
    /// retries are exhausted.
    pub fn try_step_time_unit(&mut self) -> Result<(), PoolError> {
        // smst-lint: allow(clock, reason = "observer-gated unit timing; wall time never feeds round state")
        let start = self.observer.is_some().then(std::time::Instant::now);
        self.unit_compute_ns = 0;
        let activations_before = self.activations;
        let snapshot = (self.recovery.max_retries > 0).then(|| self.states.clone());
        let mut attempts = 0u32;
        loop {
            match self.unit_attempt() {
                Ok(()) => break,
                Err(payload) => {
                    self.unit_compute_ns = 0;
                    attempts += 1;
                    let exhausted = attempts > self.recovery.max_retries;
                    let Some(states) = snapshot.as_ref().filter(|_| !exhausted) else {
                        return Err(PoolError::WorkerPanic {
                            attempts,
                            message: panic_message(&payload),
                        });
                    };
                    self.states.clone_from(states);
                    self.activations = activations_before;
                    let backoff = self.recovery.backoff_before(attempts);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        self.time_units += 1;
        // measured before the observer's verdict sweep, so the phase sum
        // reflects the unit itself, not the cost of observing it
        let total_ns = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if let Some(mut observer) = self.observer.take() {
            let compute_ns = self.unit_compute_ns;
            observer.on_round(&RoundStats {
                round: self.time_units - 1,
                alarms: self.alarming_nodes().len(),
                activations: self.activations - activations_before,
                halo_bytes: 0,
                // residual: daemon scheduling, chunk translation, batch
                // bookkeeping — everything outside activate_batch
                dispatch_ns: total_ns.saturating_sub(compute_ns),
                compute_ns,
                barrier_ns: 0,
                exchange_ns: 0,
            });
            self.observer = Some(observer);
        }
        Ok(())
    }

    /// Executes `count` time units.
    pub fn run_time_units(&mut self, count: usize) {
        for _ in 0..count {
            self.step_time_unit();
        }
    }

    /// Runs until `stop` holds (checked after every time unit) or until
    /// `max_units` additional units have elapsed.
    ///
    /// `stop` observes the registers in internal storage order (original
    /// order under the identity layout).
    pub fn run_until<F>(&mut self, max_units: usize, mut stop: F) -> Option<usize>
    where
        F: FnMut(&[P::State]) -> bool,
    {
        if stop(&self.states) {
            return Some(0);
        }
        for executed in 1..=max_units {
            self.step_time_unit();
            if stop(&self.states) {
                return Some(executed);
            }
        }
        None
    }

    /// `true` if at least one node raises an alarm.
    pub fn any_alarm(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .any(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Reject)
    }

    /// `true` if every node accepts.
    pub fn all_accept(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .all(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Accept)
    }

    /// Runs until some node raises an alarm; returns the detection time in
    /// time units. (Delegates to the shared [`Runner::run_until`] loop.)
    pub fn run_until_alarm(&mut self, max_units: usize) -> Option<usize> {
        Runner::run_until(self, StopCondition::FirstAlarm, max_units)
    }

    /// Runs until every node accepts. (Delegates to the shared
    /// [`Runner::run_until`] loop.)
    pub fn run_until_all_accept(&mut self, max_units: usize) -> Option<usize> {
        Runner::run_until(self, StopCondition::AllAccept, max_units)
    }
}

impl<'p, P> Runner<P> for ShardedAsyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    fn step(&mut self) {
        self.step_time_unit();
    }

    fn try_step(&mut self) -> Result<(), EngineError> {
        self.try_step_time_unit().map_err(EngineError::from)
    }

    fn steps(&self) -> usize {
        self.time_units
    }

    fn activations(&self) -> usize {
        self.activations
    }

    fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    fn state(&self, v: NodeId) -> &P::State {
        ShardedAsyncRunner::state(self, v)
    }

    fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        ShardedAsyncRunner::state_mut(self, v)
    }

    fn states_snapshot(&self) -> Vec<P::State> {
        ShardedAsyncRunner::states_snapshot(self)
    }

    fn context(&self, v: NodeId) -> NodeContext {
        ShardedAsyncRunner::context(self, v).clone()
    }

    fn any_alarm(&self) -> bool {
        ShardedAsyncRunner::any_alarm(self)
    }

    fn all_accept(&self) -> bool {
        ShardedAsyncRunner::all_accept(self)
    }

    fn alarming_nodes(&self) -> Vec<NodeId> {
        ShardedAsyncRunner::alarming_nodes(self)
    }

    fn apply_faults(&mut self, plan: &FaultPlan, mutate: &mut dyn FnMut(NodeId, &mut P::State)) {
        ShardedAsyncRunner::apply_faults(self, plan, mutate);
    }

    fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        ShardedAsyncRunner::set_observer(self, observer);
    }

    fn report(&self) -> RunReport {
        let daemon = self
            .daemon
            .as_deref()
            .map_or_else(|| "poisoned".to_string(), BatchDaemon::describe);
        RunReport {
            node_count: self.states.len(),
            steps: self.time_units,
            activations: self.activations,
            threads: self.threads,
            engine: format!("sharded-async(threads={},daemon={daemon})", self.threads),
        }
    }

    fn into_network(self: Box<Self>) -> Network<P> {
        ShardedAsyncRunner::into_network(*self)
    }
}

/// Smallest number of batch activations **per worker piece** worth a pool
/// dispatch. PR 1 spawned scoped threads per batch, so its threshold had to
/// cover tens of µs of spawn cost (1024 activations) and everything below
/// it silently ran sequential with different thread accounting; a pool
/// dispatch is an epoch bump on parked workers (single-digit µs), so small
/// batches now reuse the pool as soon as each piece has this much work.
/// Thread splits never affect results — this is purely a wall-clock knob.
pub(crate) const MIN_BATCH_SPAWN: usize = 16;

/// Computes the next registers of the given nodes (internal indices) from
/// the current (pre-batch) registers.
fn compute_nodes<P: NodeProgram>(
    program: &P,
    topo: &CsrTopology,
    contexts: &[NodeContext],
    states: &[P::State],
    nodes: &[u32],
) -> Vec<P::State> {
    let mut buf: Vec<&P::State> = Vec::with_capacity(16);
    nodes
        .iter()
        .map(|&v| {
            let v = v as usize;
            buf.clear();
            buf.extend(topo.neighbors_of(v).iter().map(|&u| &states[u as usize]));
            program.step(&contexts[v], &states[v], &buf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{path_graph, random_connected_graph};
    use smst_sim::{AsyncRunner, Daemon, RecordingObserver};

    struct MinId;

    static MIN_ID: MinId = MinId;

    /// A runner built through the one config envelope (the deprecated
    /// positional constructors are gone).
    fn runner(
        g: &WeightedGraph,
        daemon: Daemon,
        batch: usize,
        threads: usize,
    ) -> ShardedAsyncRunner<'static, MinId> {
        runner_with_layout(g, daemon, batch, threads, LayoutPolicy::Identity)
    }

    fn runner_with_layout(
        g: &WeightedGraph,
        daemon: Daemon,
        batch: usize,
        threads: usize,
        policy: LayoutPolicy,
    ) -> ShardedAsyncRunner<'static, MinId> {
        ShardedAsyncRunner::from_config(
            &MIN_ID,
            g.clone(),
            &EngineConfig::new()
                .asynchronous(daemon, batch)
                .threads(threads)
                .layout(policy),
        )
        .expect("a valid test envelope")
    }

    impl NodeProgram for MinId {
        type State = u64;
        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }
        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }
        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }
    }

    #[test]
    fn batch_one_replays_the_sequential_daemon() {
        let g = random_connected_graph(25, 60, 3);
        for daemon in [
            Daemon::RoundRobin,
            Daemon::Random {
                seed: 5,
                extra_factor: 2,
            },
            Daemon::Adversarial {
                pivot: 3,
                pivot_repeats: 4,
            },
        ] {
            for policy in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
                let mut seq =
                    AsyncRunner::new(&MinId, Network::new(&MinId, g.clone()), daemon.clone());
                let mut par = runner_with_layout(&g, daemon.clone(), 1, 4, policy);
                for unit in 0..6 {
                    assert_eq!(
                        par.states_snapshot(),
                        seq.network().states(),
                        "{daemon:?}, unit {unit}, {policy:?}"
                    );
                    seq.step_time_unit();
                    par.step_time_unit();
                }
                assert_eq!(par.activations(), seq.activations(), "{daemon:?}");
            }
        }
    }

    #[test]
    fn parallel_batch_path_is_identical_across_thread_counts() {
        // batch large enough that the pool split actually executes; with
        // the RoundRobin daemon and batch = n, one time unit is one
        // synchronous round, which the sequential SyncRunner pins
        let n = 3000;
        let g = random_connected_graph(n, 8000, 12);
        let batch = n;
        assert!(batch >= 4 * super::MIN_BATCH_SPAWN);
        let mut sync = smst_sim::SyncRunner::new(&MinId, Network::new(&MinId, g.clone()));
        let mut single = runner(&g, Daemon::RoundRobin, batch, 1);
        let mut multi = runner(&g, Daemon::RoundRobin, batch, 4);
        for unit in 0..4 {
            sync.step_round();
            single.step_time_unit();
            multi.step_time_unit();
            assert_eq!(
                multi.states(),
                single.states(),
                "thread split changed results at unit {unit}"
            );
            assert_eq!(
                multi.states(),
                sync.network().states(),
                "full-batch round-robin diverged from a synchronous round at unit {unit}"
            );
        }
    }

    #[test]
    fn small_batches_reuse_the_pool_without_changing_results() {
        // batch sizes straddling the per-piece dispatch threshold: every
        // configuration must agree with the 1-thread reference
        let g = random_connected_graph(120, 300, 8);
        let daemon = Daemon::Random {
            seed: 13,
            extra_factor: 1,
        };
        for batch in [
            super::MIN_BATCH_SPAWN / 2,
            super::MIN_BATCH_SPAWN,
            2 * super::MIN_BATCH_SPAWN,
            4 * super::MIN_BATCH_SPAWN,
        ] {
            let mut reference = runner(&g, daemon.clone(), batch, 1);
            reference.run_time_units(4);
            for threads in [2, 3, 8] {
                let mut runner = runner(&g, daemon.clone(), batch, threads);
                runner.run_time_units(4);
                assert_eq!(
                    runner.states(),
                    reference.states(),
                    "batch {batch}, threads {threads} changed the outcome"
                );
                assert_eq!(runner.activations(), reference.activations());
            }
        }
    }

    #[test]
    fn results_are_identical_at_any_thread_count() {
        let g = random_connected_graph(40, 100, 8);
        let daemon = Daemon::Random {
            seed: 13,
            extra_factor: 1,
        };
        let mut reference = runner(&g, daemon.clone(), 8, 1);
        reference.run_time_units(5);
        for threads in [2, 3, 4, 9] {
            let mut runner = runner(&g, daemon.clone(), 8, threads);
            runner.run_time_units(5);
            assert_eq!(
                runner.states(),
                reference.states(),
                "thread count {threads} changed the outcome"
            );
            assert_eq!(runner.activations(), reference.activations());
        }
    }

    #[test]
    fn boxed_central_daemon_equals_batch_width_one() {
        // a central Daemon used directly as a BatchDaemon (singleton
        // batches) must agree with the chunked convenience at batch = 1
        let g = random_connected_graph(20, 50, 6);
        let daemon = Daemon::Random {
            seed: 8,
            extra_factor: 1,
        };
        let mut chunked = runner(&g, daemon.clone(), 1, 2);
        let mut boxed = ShardedAsyncRunner::with_batch_daemon(
            &MinId,
            g,
            Box::new(daemon),
            2,
            LayoutPolicy::Identity,
        );
        for _ in 0..5 {
            chunked.step_time_unit();
            boxed.step_time_unit();
            assert_eq!(chunked.states(), boxed.states());
        }
        assert_eq!(chunked.activations(), boxed.activations());
        assert!(boxed.daemon().describe().starts_with("random"));
    }

    #[test]
    fn converges_under_every_daemon() {
        let g = path_graph(12, 0);
        for daemon in [
            Daemon::RoundRobin,
            Daemon::Random {
                seed: 3,
                extra_factor: 2,
            },
            Daemon::Adversarial {
                pivot: 11,
                pivot_repeats: 2,
            },
        ] {
            let mut runner = runner(&g, daemon, 4, 3);
            let t = runner.run_until_all_accept(50).unwrap();
            assert!(t <= 12);
        }
    }

    #[test]
    fn fault_injection_heals() {
        let g = random_connected_graph(20, 50, 4);
        let mut runner = runner(&g, Daemon::RoundRobin, 5, 2);
        runner.run_until_all_accept(30).unwrap();
        let plan = FaultPlan::random(20, 4, 1);
        runner.apply_faults(&plan, |_v, s| *s = 77);
        assert!(!runner.all_accept());
        assert!(runner.run_until_all_accept(30).is_some());
    }

    #[test]
    fn injected_panic_recovers_invisibly_in_async_units() {
        let g = random_connected_graph(40, 100, 9);
        let daemon = Daemon::Random {
            seed: 21,
            extra_factor: 1,
        };
        for threads in [1, 2, 8] {
            let mut clean = runner(&g, daemon.clone(), 8, threads);
            let mut chaos = runner(&g, daemon.clone(), 8, threads)
                .recovery(RecoveryPolicy::retries(2))
                .inject(InjectionSpec::panic_at(2, 0));
            let clean_trace = RecordingObserver::new();
            let chaos_trace = RecordingObserver::new();
            clean.set_observer(Box::new(clean_trace.clone()));
            chaos.set_observer(Box::new(chaos_trace.clone()));
            for _ in 0..6 {
                clean.step_time_unit();
                chaos
                    .try_step_time_unit()
                    .expect("the injected panic is retried away");
            }
            assert_eq!(
                chaos_trace.deterministic_trace(),
                clean_trace.deterministic_trace(),
                "recovery must be invisible ({threads} threads)"
            );
            assert_eq!(chaos.states(), clean.states());
            assert_eq!(chaos.activations(), clean.activations());
        }
    }

    #[test]
    fn exhausted_retries_surface_a_typed_worker_panic() {
        let g = random_connected_graph(30, 70, 3);
        // default policy: no retries, the first panic is the error
        let mut chaos = runner(&g, Daemon::RoundRobin, 6, 2).inject(InjectionSpec::panic_at(0, 0));
        match chaos.try_step_time_unit() {
            Err(PoolError::WorkerPanic { attempts, message }) => {
                assert_eq!(attempts, 1);
                assert!(message.contains("injected chaos panic"), "{message}");
            }
            other => panic!("expected a typed worker panic, got {other:?}"),
        }
        // the failed unit did not advance the clock, the daemon survived
        // the unwind, and the one-shot injection is spent: the same runner
        // keeps stepping
        assert_eq!(chaos.steps(), 0);
        chaos.step_time_unit();
        assert_eq!(chaos.steps(), 1);
    }
}
