//! The sharded asynchronous executor: daemon-driven batches of activations.
//!
//! The sequential [`AsyncRunner`](smst_sim::AsyncRunner) activates one node
//! at a time. [`ShardedAsyncRunner`] generalizes the central daemon to the
//! standard **distributed daemon**: each time unit is a seeded-RNG-derived
//! activation sequence (identical to the sequential daemon's), executed in
//! consecutive *batches* of `batch` activations. All activations of a batch
//! read the registers as they were at the start of the batch — they are
//! simultaneous — and a batch is computed in parallel across worker threads.
//!
//! # Determinism
//!
//! The schedule is a pure function of `(daemon, n, unit_index)` — the RNG
//! is re-seeded per unit from the daemon's seed, never from wall-clock or
//! thread identity — and batch results are pure functions of the pre-batch
//! registers. Runs are therefore **bit-for-bit reproducible at any thread
//! count**; only the `batch` parameter (part of the schedule's semantics,
//! not of its execution) changes outcomes. With `batch == 1` the runner
//! reproduces the sequential [`AsyncRunner`](smst_sim::AsyncRunner)
//! activation-for-activation, which `tests/` pins differentially.

use crate::topology::CsrTopology;
use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{Daemon, FaultPlan, Network, NodeContext, NodeProgram, Verdict};

/// One time unit's activation sequence, as dense `u32` indices.
///
/// Delegates to [`Daemon::schedule`] — the single source of truth shared
/// with the sequential runner — so `batch == 1` replays it by construction.
fn schedule(daemon: &Daemon, n: usize, unit_index: usize) -> Vec<u32> {
    daemon
        .schedule(n, unit_index)
        .into_iter()
        .map(|v| v.index() as u32)
        .collect()
}

/// Runs a [`NodeProgram`] under an asynchronous daemon, executing each time
/// unit's schedule in parallel batches.
#[derive(Debug)]
pub struct ShardedAsyncRunner<'p, P: NodeProgram> {
    program: &'p P,
    graph: WeightedGraph,
    topo: CsrTopology,
    contexts: Vec<NodeContext>,
    states: Vec<P::State>,
    daemon: Daemon,
    batch: usize,
    threads: usize,
    time_units: usize,
    activations: usize,
}

impl<'p, P> ShardedAsyncRunner<'p, P>
where
    P: NodeProgram + Sync,
    P::State: Send + Sync,
{
    /// Creates a runner with program-initialized registers.
    ///
    /// `batch` is the number of simultaneous activations per step (`1`
    /// replays the central daemon); `threads` only affects wall-clock.
    pub fn new(
        program: &'p P,
        graph: WeightedGraph,
        daemon: Daemon,
        batch: usize,
        threads: usize,
    ) -> Self {
        let contexts: Vec<NodeContext> = graph
            .nodes()
            .map(|v| NodeContext::for_node(&graph, v))
            .collect();
        let states: Vec<P::State> = contexts.iter().map(|ctx| program.init(ctx)).collect();
        let topo = CsrTopology::build(&graph);
        ShardedAsyncRunner {
            program,
            graph,
            topo,
            contexts,
            states,
            daemon,
            batch: batch.max(1),
            threads: threads.max(1),
            time_units: 0,
            activations: 0,
        }
    }

    /// Normalized asynchronous time units elapsed so far.
    pub fn time_units(&self) -> usize {
        self.time_units
    }

    /// Raw single-node activations executed so far.
    pub fn activations(&self) -> usize {
        self.activations
    }

    /// The batch size (simultaneous activations per step).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The graph being executed.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// All registers, indexed by dense node id.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The register of one node.
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[v.index()]
    }

    /// Mutable access to one register (fault injection).
    pub fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        &mut self.states[v.index()]
    }

    /// The static context of a node.
    pub fn context(&self, v: NodeId) -> &NodeContext {
        &self.contexts[v.index()]
    }

    /// The nodes currently raising an alarm.
    pub fn alarming_nodes(&self) -> Vec<NodeId> {
        self.contexts
            .iter()
            .zip(&self.states)
            .enumerate()
            .filter(|(_, (ctx, s))| self.program.verdict(ctx, s) == Verdict::Reject)
            .map(|(v, _)| NodeId(v))
            .collect()
    }

    /// Applies a [`FaultPlan`] through a caller-supplied mutator.
    pub fn apply_faults<F>(&mut self, plan: &FaultPlan, mut mutate: F)
    where
        F: FnMut(NodeId, &mut P::State),
    {
        for &v in plan.nodes() {
            mutate(v, &mut self.states[v.index()]);
        }
    }

    /// Consumes the runner, returning a sequential [`Network`] holding the
    /// final registers.
    pub fn into_network(self) -> Network<P> {
        Network::with_states(self.graph, self.states)
    }

    /// Executes one batch of simultaneous activations.
    fn activate_batch(&mut self, chunk: &[u32]) {
        // all reads are pre-batch: the next states are fully computed before
        // any register is written, so results do not depend on the worker
        // split (which is why the spawn threshold cannot change outcomes,
        // only wall-clock)
        let computed: Vec<P::State> = if self.threads == 1 || chunk.len() < PARALLEL_BATCH_MIN {
            compute_nodes(
                self.program,
                &self.topo,
                &self.contexts,
                &self.states,
                chunk,
            )
        } else {
            let pieces = self.threads.min(chunk.len());
            let (program, topo) = (self.program, &self.topo);
            let (contexts, states) = (&self.contexts, &self.states);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..pieces)
                    .map(|k| {
                        let lo = chunk.len() * k / pieces;
                        let hi = chunk.len() * (k + 1) / pieces;
                        let piece = &chunk[lo..hi];
                        scope.spawn(move || compute_nodes(program, topo, contexts, states, piece))
                    })
                    .collect();
                let mut all = Vec::with_capacity(chunk.len());
                for handle in handles {
                    all.extend(handle.join().expect("engine worker panicked"));
                }
                all
            })
        };
        for (&v, value) in chunk.iter().zip(computed) {
            self.states[v as usize] = value;
        }
        self.activations += chunk.len();
    }

    /// Executes one normalized time unit (every node activated at least
    /// once, in daemon-chosen batches).
    pub fn step_time_unit(&mut self) {
        let order = schedule(&self.daemon, self.topo.node_count(), self.time_units);
        for chunk in order.chunks(self.batch) {
            self.activate_batch(chunk);
        }
        self.time_units += 1;
    }

    /// Executes `count` time units.
    pub fn run_time_units(&mut self, count: usize) {
        for _ in 0..count {
            self.step_time_unit();
        }
    }

    /// Runs until `stop` holds (checked after every time unit) or until
    /// `max_units` additional units have elapsed.
    pub fn run_until<F>(&mut self, max_units: usize, mut stop: F) -> Option<usize>
    where
        F: FnMut(&[P::State]) -> bool,
    {
        if stop(&self.states) {
            return Some(0);
        }
        for executed in 1..=max_units {
            self.step_time_unit();
            if stop(&self.states) {
                return Some(executed);
            }
        }
        None
    }

    /// `true` if at least one node raises an alarm.
    pub fn any_alarm(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .any(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Reject)
    }

    /// `true` if every node accepts.
    pub fn all_accept(&self) -> bool {
        self.contexts
            .iter()
            .zip(&self.states)
            .all(|(ctx, s)| self.program.verdict(ctx, s) == Verdict::Accept)
    }

    /// Runs until some node raises an alarm; returns the detection time in
    /// time units.
    pub fn run_until_alarm(&mut self, max_units: usize) -> Option<usize> {
        if self.any_alarm() {
            return Some(0);
        }
        for executed in 1..=max_units {
            self.step_time_unit();
            if self.any_alarm() {
                return Some(executed);
            }
        }
        None
    }

    /// Runs until every node accepts.
    pub fn run_until_all_accept(&mut self, max_units: usize) -> Option<usize> {
        if self.all_accept() {
            return Some(0);
        }
        for executed in 1..=max_units {
            self.step_time_unit();
            if self.all_accept() {
                return Some(executed);
            }
        }
        None
    }
}

/// Smallest batch worth spawning worker threads for: below this, the
/// per-batch thread-launch cost (tens of µs) exceeds the step work and the
/// inline sweep is faster. Thread splits never affect results, so this is
/// purely a wall-clock knob.
const PARALLEL_BATCH_MIN: usize = 1024;

/// Computes the next registers of the given nodes from the current
/// (pre-batch) registers.
fn compute_nodes<P: NodeProgram>(
    program: &P,
    topo: &CsrTopology,
    contexts: &[NodeContext],
    states: &[P::State],
    nodes: &[u32],
) -> Vec<P::State> {
    let mut buf: Vec<&P::State> = Vec::with_capacity(16);
    nodes
        .iter()
        .map(|&v| {
            let v = v as usize;
            buf.clear();
            buf.extend(topo.neighbors_of(v).iter().map(|&u| &states[u as usize]));
            program.step(&contexts[v], &states[v], &buf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{path_graph, random_connected_graph};
    use smst_sim::AsyncRunner;

    struct MinId;

    impl NodeProgram for MinId {
        type State = u64;
        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }
        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }
        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }
    }

    #[test]
    fn batch_one_replays_the_sequential_daemon() {
        let g = random_connected_graph(25, 60, 3);
        for daemon in [
            Daemon::RoundRobin,
            Daemon::Random {
                seed: 5,
                extra_factor: 2,
            },
            Daemon::Adversarial {
                pivot: 3,
                pivot_repeats: 4,
            },
        ] {
            let mut seq = AsyncRunner::new(&MinId, Network::new(&MinId, g.clone()), daemon.clone());
            let mut par = ShardedAsyncRunner::new(&MinId, g.clone(), daemon.clone(), 1, 4);
            for unit in 0..6 {
                assert_eq!(
                    par.states(),
                    seq.network().states(),
                    "{daemon:?}, unit {unit}"
                );
                seq.step_time_unit();
                par.step_time_unit();
            }
            assert_eq!(par.activations(), seq.activations(), "{daemon:?}");
        }
    }

    #[test]
    fn parallel_batch_path_is_identical_across_thread_counts() {
        // batch >= PARALLEL_BATCH_MIN so the scoped-thread split actually
        // executes; with the RoundRobin daemon and batch = n, one time unit
        // is one synchronous round, which the sequential SyncRunner pins
        let n = 3000;
        let g = random_connected_graph(n, 8000, 12);
        let batch = n; // > PARALLEL_BATCH_MIN
        assert!(batch >= super::PARALLEL_BATCH_MIN);
        let mut sync = smst_sim::SyncRunner::new(&MinId, Network::new(&MinId, g.clone()));
        let mut single = ShardedAsyncRunner::new(&MinId, g.clone(), Daemon::RoundRobin, batch, 1);
        let mut multi = ShardedAsyncRunner::new(&MinId, g.clone(), Daemon::RoundRobin, batch, 4);
        for unit in 0..4 {
            sync.step_round();
            single.step_time_unit();
            multi.step_time_unit();
            assert_eq!(
                multi.states(),
                single.states(),
                "thread split changed results at unit {unit}"
            );
            assert_eq!(
                multi.states(),
                sync.network().states(),
                "full-batch round-robin diverged from a synchronous round at unit {unit}"
            );
        }
    }

    #[test]
    fn results_are_identical_at_any_thread_count() {
        let g = random_connected_graph(40, 100, 8);
        let daemon = Daemon::Random {
            seed: 13,
            extra_factor: 1,
        };
        let mut reference = ShardedAsyncRunner::new(&MinId, g.clone(), daemon.clone(), 8, 1);
        reference.run_time_units(5);
        for threads in [2, 3, 4, 9] {
            let mut runner = ShardedAsyncRunner::new(&MinId, g.clone(), daemon.clone(), 8, threads);
            runner.run_time_units(5);
            assert_eq!(
                runner.states(),
                reference.states(),
                "thread count {threads} changed the outcome"
            );
            assert_eq!(runner.activations(), reference.activations());
        }
    }

    #[test]
    fn converges_under_every_daemon() {
        let g = path_graph(12, 0);
        for daemon in [
            Daemon::RoundRobin,
            Daemon::Random {
                seed: 3,
                extra_factor: 2,
            },
            Daemon::Adversarial {
                pivot: 11,
                pivot_repeats: 2,
            },
        ] {
            let mut runner = ShardedAsyncRunner::new(&MinId, g.clone(), daemon, 4, 3);
            let t = runner.run_until_all_accept(50).unwrap();
            assert!(t <= 12);
        }
    }

    #[test]
    fn fault_injection_heals() {
        let g = random_connected_graph(20, 50, 4);
        let mut runner = ShardedAsyncRunner::new(&MinId, g, Daemon::RoundRobin, 5, 2);
        runner.run_until_all_accept(30).unwrap();
        let plan = FaultPlan::random(20, 4, 1);
        runner.apply_faults(&plan, |_v, s| *s = 77);
        assert!(!runner.all_accept());
        assert!(runner.run_until_all_accept(30).is_some());
    }
}
