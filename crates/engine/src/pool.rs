//! A persistent worker pool: parked threads, epoch dispatch, round barrier.
//!
//! PR 1's runners paid `std::thread::scope` spawn/join cost (tens of µs) on
//! **every** round or batch; at the sub-millisecond rounds the paper's
//! O(1)-round verification lives in, that overhead dominated and the engine
//! lost to the sequential runner. [`WorkerPool`] replaces the per-round
//! spawn with long-lived workers parked on a condvar: a dispatch is one
//! epoch bump plus a wake-up (single-digit µs), and
//! [`run_rounds_double_buffered`](WorkerPool::run_rounds_double_buffered)
//! amortizes even that over a whole chunk of rounds, synchronizing the
//! workers between rounds with a lightweight generation barrier instead of
//! returning to the dispatcher.
//!
//! Pools are **shared and long-lived**: [`PoolHandle::for_threads`] hands
//! out the smallest registered pool with enough threads (creating one only
//! when none fits), so every runner in the process reuses the same parked
//! workers. A pool dies when the last handle drops; the workers are joined
//! on drop.
//!
//! # Safety
//!
//! This module is the **only** place in the crate where `unsafe` appears
//! (the crate is `#![deny(unsafe_code)]`, relaxed from `forbid` by exactly
//! this module). Two uses, both with the same structural justification:
//!
//! 1. **Lifetime erasure of the dispatched job.** Workers are `'static`
//!    threads, but jobs borrow the caller's stack (program, topology,
//!    registers). [`WorkerPool::dispatch`] erases the borrow into a raw
//!    pointer and *does not return until every participating worker has
//!    acknowledged completion of the epoch* — the exact guarantee
//!    `std::thread::scope` provides structurally. Workers without a part
//!    never dereference the pointer (they only skip the epoch), so no
//!    worker can call through it after `dispatch` returns.
//! 2. **Disjoint double-buffer slices.** In
//!    [`run_rounds_halo`](WorkerPool::run_rounds_halo) (which also backs
//!    [`run_rounds_double_buffered`](WorkerPool::run_rounds_double_buffered)
//!    as its exchange-free special case) each part writes only its disjoint
//!    region of `next` while all parts read only the other buffer; the
//!    optional exchange phase copies within `next` from single-owner
//!    interior slots to single-writer halo slots, barrier-separated from
//!    both the compute writes before it and the reads after it. A poisoning
//!    round barrier separates consecutive rounds, so no read of round `r`'s
//!    input can race a write of round `r + 1`.
//!
//! # Self-healing
//!
//! Worker panics are caught, propagated to the dispatcher (first panic
//! wins), and poison the round barrier so sibling workers unwind instead of
//! deadlocking. A worker whose job panicked **retires** (records itself in
//! the shared state and exits its thread); the next dispatch joins and
//! respawns every retired worker before publishing the new epoch, so a
//! panic in one borrower of a registry-shared pool
//! ([`PoolHandle::for_threads`]) never leaves the pool broken for the next
//! borrower. [`WorkerPool::stats`] counts caught panics, respawns and
//! barrier timeouts for telemetry bridges.
//!
//! The round primitives additionally accept a **watchdog**: when a part
//! fails to reach the round barrier within the timeout, the waiting
//! siblings poison the barrier and unwind with a typed timeout sentinel, so
//! a hung worker surfaces as [`PoolError::BarrierTimeout`] at the runner
//! instead of deadlocking the dispatch. The dispatcher itself still waits
//! for every participant to acknowledge (the lifetime-erasure contract
//! requires it), so the dispatch returns once the hung part eventually
//! finishes or dies — the watchdog bounds *detection*, not the stall
//! itself.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A typed failure of a pooled dispatch, produced by the runners' fallible
/// driving surface ([`Runner::try_step`](crate::Runner::try_step)) instead
/// of an unwinding panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A job part panicked and every retry the
    /// [`RecoveryPolicy`](crate::RecoveryPolicy) allowed panicked too.
    WorkerPanic {
        /// Attempts made (1 initial try + the policy's retries).
        attempts: u32,
        /// The panic message of the last attempt (best-effort string
        /// extraction from the payload).
        message: String,
    },
    /// A part failed to reach the round barrier within the watchdog
    /// timeout: the barrier was poisoned and the epoch abandoned. Never
    /// retried — a hung worker is a liveness bug, not a transient fault.
    BarrierTimeout {
        /// The configured watchdog timeout that expired.
        timeout: Duration,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanic { attempts, message } => {
                write!(f, "worker panic after {attempts} attempt(s): {message}")
            }
            PoolError::BarrierTimeout { timeout } => {
                write!(
                    f,
                    "round barrier watchdog expired after {}ms: a part hung",
                    timeout.as_millis()
                )
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Best-effort extraction of a panic payload's message (`&str` / `String`
/// payloads; anything else becomes a placeholder).
pub(crate) fn panic_message(payload: &PanicPayload) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The typed payload a watchdog timeout unwinds with (non-poison, so the
/// dispatcher's payload selection prefers it over the secondary poison
/// panics it releases). Runners downcast it back into
/// [`PoolError::BarrierTimeout`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BarrierTimeoutPanic(pub(crate) Duration);

/// `true` if a caught payload is the watchdog's timeout sentinel.
pub(crate) fn is_timeout_panic(payload: &PanicPayload) -> bool {
    payload.downcast_ref::<BarrierTimeoutPanic>().is_some()
}

/// Monotone counters of the pool's self-healing machinery, for telemetry
/// bridges (the engine crate itself stays telemetry-free). All relaxed:
/// diagnostics, never part of the determinism contract.
#[derive(Debug, Default)]
pub struct PoolStats {
    panics: AtomicU64,
    respawns: AtomicU64,
    barrier_timeouts: AtomicU64,
}

impl PoolStats {
    /// Dispatches that ended in a caught (non-timeout) job panic.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Worker threads respawned after retiring on a job panic.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Dispatches that ended in a barrier watchdog timeout.
    pub fn barrier_timeouts(&self) -> u64 {
        self.barrier_timeouts.load(Ordering::Relaxed)
    }
}

/// Lock-free per-phase wall-clock accumulators for the pool's round
/// primitives: how many nanoseconds the instrumented part spent computing,
/// waiting on the round barrier, and pulling halo copies.
///
/// The `*_phased` round primitives
/// ([`run_rounds_halo_phased`](WorkerPool::run_rounds_halo_phased),
/// [`run_rounds_double_buffered_phased`](WorkerPool::run_rounds_double_buffered_phased))
/// accumulate into one of these when handed `Some`; timing is sampled on
/// **part 0 only** (the dispatching side), so barrier waits naturally
/// absorb any imbalance against the slower parts and the accumulators
/// never contend. Passing `None` compiles the clock reads out of the round
/// loop entirely — the untimed primitives are the `None` special case.
///
/// Purely wall-clock: results are bit-for-bit identical with or without an
/// accumulator attached (the engine's determinism contract never covers
/// timing).
#[derive(Debug, Default)]
pub struct PhaseTimes {
    compute_ns: AtomicU64,
    barrier_ns: AtomicU64,
    exchange_ns: AtomicU64,
}

impl PhaseTimes {
    /// Fresh accumulators, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds accumulated in the compute phase.
    pub fn compute_ns(&self) -> u64 {
        self.compute_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds accumulated waiting on round barriers.
    pub fn barrier_ns(&self) -> u64 {
        self.barrier_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds accumulated pulling halo copies.
    pub fn exchange_ns(&self) -> u64 {
        self.exchange_ns.load(Ordering::Relaxed)
    }

    /// Adds to the compute phase (for callers that run compute inline,
    /// outside the pool's round primitives — e.g. a single-shard runner).
    pub fn add_compute_ns(&self, ns: u64) {
        self.compute_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshots and resets all three accumulators, returning
    /// `(compute_ns, barrier_ns, exchange_ns)`.
    pub fn take(&self) -> (u64, u64, u64) {
        (
            self.compute_ns.swap(0, Ordering::Relaxed),
            self.barrier_ns.swap(0, Ordering::Relaxed),
            self.exchange_ns.swap(0, Ordering::Relaxed),
        )
    }
}

/// Which [`PhaseTimes`] accumulator a [`lap`] lands in.
#[derive(Clone, Copy)]
enum PhaseSlot {
    Compute,
    Barrier,
    Exchange,
}

/// Adds the time since `*mark` to `slot` and advances `*mark` to now.
/// With `phases == None` (or no prior mark) this is a no-op that never
/// reads the clock — the untimed round loop stays clock-free.
fn lap(phases: Option<&PhaseTimes>, mark: &mut Option<Instant>, slot: PhaseSlot) {
    let (Some(times), Some(prev)) = (phases, mark.as_mut()) else {
        return;
    };
    let now = Instant::now();
    let ns = now.duration_since(*prev).as_nanos() as u64;
    let cell = match slot {
        PhaseSlot::Compute => &times.compute_ns,
        PhaseSlot::Barrier => &times.barrier_ns,
        PhaseSlot::Exchange => &times.exchange_ns,
    };
    cell.fetch_add(ns, Ordering::Relaxed);
    *prev = now;
}

/// Whether (and how) the pool pins its worker threads to cores.
///
/// Pinning is **best-effort and purely a wall-clock knob** — results are
/// bit-for-bit identical either way (the engine's determinism contract
/// never depends on which core runs a part). On Linux (x86_64 / aarch64)
/// it issues a raw `sched_setaffinity` syscall per worker; on every other
/// platform it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// Leave thread placement to the OS scheduler (the default).
    #[default]
    None,
    /// Pin worker `w` to core `(w + 1) % cores` for the pool's lifetime
    /// and, for the duration of each dispatch, the dispatching thread
    /// (part 0) to core 0 — so every shard's worker (and its shard-local
    /// arena) stays put instead of migrating across sockets between
    /// rounds. The caller's own affinity mask is saved and restored around
    /// the dispatch.
    Cores,
}

/// A 1024-bit CPU affinity mask, like glibc's `cpu_set_t`.
type CpuMask = [u64; 16];

/// `sched_setaffinity(2)` / `sched_getaffinity(2)` on the calling thread
/// (pid 0), as a raw syscall so the offline workspace needs no libc crate.
/// Returns the raw kernel result: 0 (set) or a positive byte count (get)
/// on success, a negative errno otherwise.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn affinity_syscall(nr: i64, mask: *mut u64) -> i64 {
    let ret: i64;
    #[cfg(target_arch = "x86_64")]
    // SAFETY: sched_set/getaffinity touch only the `CpuMask` behind `mask`
    // (read for set, write for get); rcx/r11 are clobbered by `syscall` as
    // declared.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") 0i64,
            in("rsi") std::mem::size_of::<CpuMask>(),
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as above; aarch64 `svc 0` clobbers nothing beyond x0.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") 0i64 => ret,
            in("x1") std::mem::size_of::<CpuMask>(),
            in("x2") mask,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
const NR_SCHED_SETAFFINITY: i64 = if cfg!(target_arch = "x86_64") {
    203
} else {
    122
};
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
const NR_SCHED_GETAFFINITY: i64 = if cfg!(target_arch = "x86_64") {
    204
} else {
    123
};

/// The calling thread's current affinity mask, if the platform can report
/// one — saved by [`WorkerPool::dispatch`] so a pinned dispatch can restore
/// the caller's placement on the way out.
fn current_thread_affinity() -> Option<CpuMask> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        let mut mask: CpuMask = [0; 16];
        (affinity_syscall(NR_SCHED_GETAFFINITY, mask.as_mut_ptr()) > 0).then_some(mask)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    None
}

/// Best-effort: applies a saved affinity mask to the calling thread.
fn set_thread_affinity(mask: &CpuMask) -> bool {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        affinity_syscall(NR_SCHED_SETAFFINITY, mask.as_ptr().cast_mut()) == 0
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = mask;
        false
    }
}

/// Best-effort: pins the calling thread to one core. Returns `true` when
/// the affinity call succeeded, `false` where unsupported or refused —
/// callers must not rely on placement either way.
fn pin_current_thread_to_core(core: usize) -> bool {
    // cores beyond the mask are an honest failure, not a silent wrap onto
    // an unrelated core
    let mut mask: CpuMask = [0; 16];
    let Some(word) = mask.get_mut(core / 64) else {
        return false;
    };
    *word = 1u64 << (core % 64);
    set_thread_affinity(&mask)
}

/// Lifetime-erased pointer to the job of the current epoch.
///
/// Only ever dereferenced between the epoch bump and the completion
/// acknowledgement — the window during which [`WorkerPool::dispatch`] keeps
/// the real borrow alive on the caller's stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls are fine) and its lifetime is
// guarded by the dispatch protocol described in the module docs.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per dispatch; workers detect work by comparing epochs.
    epoch: u64,
    /// The job of the current epoch (`None` between dispatches).
    job: Option<JobPtr>,
    /// How many parts the current job is split into (caller is part 0).
    parts: usize,
    /// Workers that have not yet acknowledged the current epoch.
    outstanding: usize,
    /// First worker panic of the current epoch, if any.
    panic: Option<PanicPayload>,
    /// Workers that retired (exited their thread) after a job panic, to be
    /// joined and respawned by the next dispatch. Pushed under the state
    /// lock *in the same critical section* as the completion
    /// acknowledgement, so a dispatcher can never start a new epoch while
    /// a dying worker is still counted as available.
    retired: Vec<usize>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for an epoch bump.
    work: Condvar,
    /// The dispatcher parks here waiting for `outstanding == 0`.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing one job at a time,
/// split into per-thread parts.
///
/// `threads` counts the **total** parallelism of a dispatch: the caller
/// participates as part 0, so a pool of `t` threads spawns `t - 1` workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    pin: PinPolicy,
    /// Serializes dispatches from different runner threads onto the same
    /// pool (the job slot is single-occupancy by design).
    dispatch_lock: Mutex<()>,
    /// Slot `w` holds worker `w`'s thread; a slot is replaced in place when
    /// its worker retires after a job panic and is respawned.
    handles: Mutex<Vec<JoinHandle<()>>>,
    stats: PoolStats,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("pin", &self.pin)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total parallelism (`threads - 1`
    /// parked workers; a 1-thread pool spawns nothing and runs every
    /// dispatch inline), with no core pinning.
    pub fn new(threads: usize) -> Self {
        Self::with_policy(threads, PinPolicy::None)
    }

    /// [`WorkerPool::new`] with an explicit [`PinPolicy`]: under
    /// [`PinPolicy::Cores`] every spawned worker pins itself (best-effort)
    /// before parking, so each shard's worker keeps its cache and NUMA
    /// placement for the pool's whole lifetime.
    pub fn with_policy(threads: usize, pin: PinPolicy) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                parts: 0,
                outstanding: 0,
                panic: None,
                retired: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads.saturating_sub(1))
            .map(|w| spawn_worker(&shared, w, pin))
            .collect();
        WorkerPool {
            shared,
            threads,
            pin,
            dispatch_lock: Mutex::new(()),
            handles: Mutex::new(handles),
            stats: PoolStats::default(),
        }
    }

    /// Total parallelism of a dispatch (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pin policy the pool's workers were spawned under.
    pub fn pin_policy(&self) -> PinPolicy {
        self.pin
    }

    /// The pool's self-healing counters (caught panics, worker respawns,
    /// barrier timeouts).
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Joins and respawns every worker that retired after a job panic.
    /// Called at the top of each dispatch (under the dispatch lock, before
    /// the epoch bump), so the new epoch only ever counts live workers —
    /// this is what makes post-panic reuse of a registry-shared pool sound
    /// for the next borrower.
    fn ensure_workers(&self) {
        let retired: Vec<usize> = {
            let mut st = self.shared.state.lock().unwrap();
            std::mem::take(&mut st.retired)
        };
        if retired.is_empty() {
            return;
        }
        let mut handles = self.handles.lock().unwrap();
        for w in retired {
            let replacement = spawn_worker(&self.shared, w, self.pin);
            let dead = std::mem::replace(&mut handles[w], replacement);
            // the retired worker pushed its index in the same critical
            // section as its final acknowledgement, so this join is
            // near-instant
            let _ = dead.join();
            self.stats.respawns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs `job(part)` for every `part in 0..parts`, the caller executing
    /// part 0 and the parked workers parts `1..parts`. Blocks until every
    /// part has finished; workers beyond `parts` (of an oversized shared
    /// pool) are neither woken into work nor waited on.
    ///
    /// With `parts == 1` (or a 1-thread pool) the job runs inline with zero
    /// synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `parts` exceeds [`threads`](Self::threads), and re-raises
    /// the first panic raised inside `job` (after all parts finished).
    pub fn dispatch(&self, parts: usize, job: &(dyn Fn(usize) + Sync)) {
        assert!(
            parts <= self.threads,
            "dispatch of {parts} parts on a {}-thread pool",
            self.threads
        );
        if parts <= 1 || self.threads == 1 {
            for part in 0..parts {
                job(part);
            }
            return;
        }
        // part 0 runs on this thread: give it the same placement stability
        // the workers get for the duration of the dispatch, or shard 0's
        // arena would be the one shard still migrating across sockets. The
        // caller's own mask is restored on the way out — a pinned dispatch
        // must not permanently narrow the affinity of whatever thread
        // (test harness, benchmark driver) happened to call it.
        let saved_affinity = if self.pin == PinPolicy::Cores {
            let saved = current_thread_affinity();
            pin_current_thread_to_core(0);
            saved
        } else {
            None
        };
        let serial = self.dispatch_lock.lock().unwrap();
        // heal first: join + respawn any worker that retired after a panic
        // in a previous epoch, so `outstanding` below only counts threads
        // that are actually alive to acknowledge
        self.ensure_workers();
        // SAFETY: lifetime erasure; `job` stays borrowed on this stack frame
        // until the completion wait below observes `outstanding == 0`;
        // participating workers only call through the pointer before
        // acknowledging, and non-participants never dereference it.
        let erased = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(erased);
            st.parts = parts;
            // only workers that own a part (1..parts) acknowledge; workers
            // of an oversized shared pool wake, update their epoch and go
            // straight back to sleep without being waited on
            st.outstanding = parts - 1;
            st.panic = None;
            st.epoch += 1;
        }
        self.shared.work.notify_all();
        // the dispatching thread works instead of sleeping
        let caller_panic = catch_unwind(AssertUnwindSafe(|| job(0))).err();
        let worker_panic = {
            let mut st = self.shared.state.lock().unwrap();
            while st.outstanding > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            st.panic.take()
        };
        drop(serial);
        // restore the caller's placement before any unwinding below
        if let Some(mask) = saved_affinity {
            set_thread_affinity(&mask);
        }
        // prefer the originating panic over the secondary barrier-poison
        // panics it released in the siblings — losing the real payload
        // would make pool-path failures undiagnosable
        let payloads = [caller_panic, worker_panic];
        let mut payloads: Vec<PanicPayload> = payloads.into_iter().flatten().collect();
        if let Some(original) = payloads.iter().position(|p| !is_poison_panic(p)) {
            let payload = payloads.swap_remove(original);
            if is_timeout_panic(&payload) {
                self.stats.barrier_timeouts.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
            }
            resume_unwind(payload);
        }
        if let Some(payload) = payloads.pop() {
            self.stats.panics.fetch_add(1, Ordering::Relaxed);
            resume_unwind(payload);
        }
    }

    /// [`dispatch`](Self::dispatch), collecting each part's return value.
    pub fn dispatch_map<T, F>(&self, parts: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..parts).map(|_| Mutex::new(None)).collect();
        self.dispatch(parts, &|part| {
            let value = job(part);
            *slots[part].lock().unwrap() = Some(value);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every part stores exactly one value")
            })
            .collect()
    }

    /// Chunked multi-round double-buffered execution: runs `rounds` rounds
    /// in **one** dispatch, each round computing
    /// `step(part, round, prev, next_slice)` for every part, where `prev` is
    /// the full previous-round buffer and `next_slice` is the part's
    /// disjoint slice `bounds[part]..bounds[part + 1]` of the next-round
    /// buffer. Buffer roles alternate internally; a round barrier separates
    /// consecutive rounds, so workers never return to the dispatcher
    /// mid-chunk.
    ///
    /// On return `front` holds the final round's registers and `back` the
    /// previous round's (the same postcondition as `rounds` sequential
    /// compute-and-swap steps).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a monotone cover `0..front.len()` with at
    /// most [`threads`](Self::threads) parts, or if the buffers differ in
    /// length; propagates `step` panics.
    pub fn run_rounds_double_buffered<T, F>(
        &self,
        bounds: &[usize],
        rounds: usize,
        front: &mut Vec<T>,
        back: &mut Vec<T>,
        step: F,
    ) where
        T: Send + Sync + Clone,
        F: Fn(usize, usize, &[T], &mut [T]) + Sync,
    {
        self.run_rounds_double_buffered_phased(bounds, rounds, front, back, step, None, None);
    }

    /// [`run_rounds_double_buffered`](Self::run_rounds_double_buffered)
    /// with optional per-phase timing and an optional barrier watchdog:
    /// when `phases` is `Some`, part 0's compute and barrier nanoseconds
    /// accumulate into the given [`PhaseTimes`] (see its docs for the
    /// sampling contract); when `watchdog` is `Some`, a part that fails to
    /// reach a round barrier within the timeout makes the whole run unwind
    /// with the typed timeout sentinel the runners surface as
    /// [`PoolError::BarrierTimeout`]. `(None, None)` is exactly the untimed
    /// primitive.
    #[allow(clippy::too_many_arguments)]
    pub fn run_rounds_double_buffered_phased<T, F>(
        &self,
        bounds: &[usize],
        rounds: usize,
        front: &mut Vec<T>,
        back: &mut Vec<T>,
        step: F,
        phases: Option<&PhaseTimes>,
        watchdog: Option<Duration>,
    ) where
        T: Send + Sync + Clone,
        F: Fn(usize, usize, &[T], &mut [T]) + Sync,
    {
        // the gap-free, exchange-free special case of the halo primitive —
        // one shared implementation of the unsafe round machinery (with no
        // exchange pairs anywhere, the exchange phase and its barrier
        // vanish, leaving exactly one barrier between rounds)
        let parts = bounds.len().checked_sub(1).expect("at least one part");
        assert!(parts >= 1, "at least one part");
        assert_eq!(bounds[0], 0, "bounds must start at 0");
        assert_eq!(bounds[parts], front.len(), "bounds must cover the buffer");
        let regions: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        let exchange = vec![Vec::new(); parts];
        self.run_rounds_halo_phased(
            &regions, &exchange, rounds, front, back, step, phases, watchdog,
        );
    }

    /// Halo-exchange variant of
    /// [`run_rounds_double_buffered`](Self::run_rounds_double_buffered):
    /// the buffers are **shard-local arenas** (disjoint per-part regions of
    /// interior slots followed by halo-copy slots), and every round splits
    /// into two barrier-separated phases:
    ///
    /// 1. **compute** — each part runs
    ///    `step(part, round, prev, next_interior)`, where `prev` is the full
    ///    previous arena and `next_interior` is the part's interior range
    ///    `regions[part]` of the next arena (parts read only `prev`, so the
    ///    halo copies gathered at round `r − 1` are what round `r` observes —
    ///    exactly double-buffer semantics);
    /// 2. **exchange** — after a round barrier, each part refreshes its halo
    ///    slots by pulling `next[dst] = next[src]` for its `exchange[part]`
    ///    pairs; a second barrier orders the pulls before the next round's
    ///    reads.
    ///
    /// On return `front` holds the final round's arena and `back` the
    /// previous round's, like the non-halo primitive.
    ///
    /// # Panics
    ///
    /// Panics unless `regions` are in-bounds, ascending and pairwise
    /// disjoint, with at most [`threads`](Self::threads) parts; and unless
    /// the exchange plan honours its contract — every destination outside
    /// all interior regions and written by exactly one part, every source
    /// inside an interior region (what
    /// [`HaloPlan::build`](crate::shard::HaloPlan::build) guarantees by
    /// construction; verified here in all build modes because the pairs
    /// feed raw-pointer copies). Propagates `step` panics.
    pub fn run_rounds_halo<T, F>(
        &self,
        regions: &[(usize, usize)],
        exchange: &[Vec<(u32, u32)>],
        rounds: usize,
        front: &mut Vec<T>,
        back: &mut Vec<T>,
        step: F,
    ) where
        T: Send + Sync + Clone,
        F: Fn(usize, usize, &[T], &mut [T]) + Sync,
    {
        self.run_rounds_halo_phased(regions, exchange, rounds, front, back, step, None, None);
    }

    /// [`run_rounds_halo`](Self::run_rounds_halo) with optional per-phase
    /// timing and an optional barrier watchdog: when `phases` is `Some`,
    /// part 0's compute, barrier-wait and halo-exchange nanoseconds
    /// accumulate into the given [`PhaseTimes`] (see its docs for the
    /// sampling contract); when `watchdog` is `Some`, a part that fails to
    /// reach a round barrier — or the final chunk-completion barrier the
    /// armed watchdog adds, so even single-round chunks are guarded —
    /// within the timeout poisons the barrier and the run unwinds with the
    /// typed timeout sentinel instead of deadlocking. `(None, None)` is
    /// exactly the untimed primitive — the round loop then never reads the
    /// clock.
    ///
    /// # Panics
    ///
    /// As [`run_rounds_halo`](Self::run_rounds_halo).
    #[allow(clippy::too_many_arguments)]
    pub fn run_rounds_halo_phased<T, F>(
        &self,
        regions: &[(usize, usize)],
        exchange: &[Vec<(u32, u32)>],
        rounds: usize,
        front: &mut Vec<T>,
        back: &mut Vec<T>,
        step: F,
        phases: Option<&PhaseTimes>,
        watchdog: Option<Duration>,
    ) where
        T: Send + Sync + Clone,
        F: Fn(usize, usize, &[T], &mut [T]) + Sync,
    {
        let n = front.len();
        assert_eq!(back.len(), n, "double buffers must have equal length");
        let parts = regions.len();
        assert!(parts >= 1, "at least one part");
        assert_eq!(exchange.len(), parts, "one exchange list per part");
        assert!(
            regions.iter().all(|&(lo, hi)| lo <= hi && hi <= n),
            "regions must be in-bounds"
        );
        assert!(
            regions.windows(2).all(|w| w[0].1 <= w[1].0),
            "regions must be ascending and disjoint"
        );
        // with no exchange pairs anywhere the exchange phase (and its
        // barrier) vanishes — this is how the non-halo wrapper keeps its
        // original one-barrier-per-round protocol and skips the plan
        // validation it has nothing to validate with
        let has_exchange = exchange.iter().any(|pairs| !pairs.is_empty());
        if has_exchange {
            // O(arena + pairs) plan validation, release mode included: the
            // exchange pairs feed unchecked raw-pointer copies on the
            // parallel path, so a malformed plan from this *safe* public
            // API must panic here, never scribble out of bounds. (Plans
            // from HaloPlan::build are sound by construction; the halo
            // runner already pays O(arena) per call to gather, so this is
            // a bounded constant factor, not a new asymptotic cost.)
            // interior[i]: is arena slot i inside some part's write region?
            // dst_seen[i]: has some part already claimed slot i as a dst?
            let mut interior = vec![false; n];
            for &(lo, hi) in regions {
                interior[lo..hi].iter_mut().for_each(|b| *b = true);
            }
            let mut dst_seen = vec![false; n];
            for pairs in exchange {
                for &(src, dst) in pairs {
                    let (src, dst) = (src as usize, dst as usize);
                    assert!(
                        src < n && interior[src],
                        "exchange source {src} must be an interior slot"
                    );
                    assert!(
                        dst < n && !interior[dst],
                        "exchange destination {dst} must be a halo slot"
                    );
                    assert!(
                        !std::mem::replace(&mut dst_seen[dst], true),
                        "halo slot {dst} pulled by two parts"
                    );
                }
            }
        }
        if rounds == 0 {
            return;
        }
        if parts == 1 || self.threads == 1 {
            for round in 0..rounds {
                let (prev, next) = if round % 2 == 0 {
                    (&*front, &mut *back)
                } else {
                    (&*back, &mut *front)
                };
                let mut mark = phases.map(|_| Instant::now());
                for (part, &(lo, hi)) in regions.iter().enumerate() {
                    let slice = &mut next[lo..hi];
                    step(part, round, prev, slice);
                }
                lap(phases, &mut mark, PhaseSlot::Compute);
                if has_exchange {
                    for pairs in exchange {
                        for &(src, dst) in pairs {
                            next[dst as usize] = next[src as usize].clone();
                        }
                    }
                    lap(phases, &mut mark, PhaseSlot::Exchange);
                }
            }
        } else {
            assert!(
                parts <= self.threads,
                "halo run of {parts} parts on a {}-thread pool",
                self.threads
            );
            let barrier = RoundBarrier::new(parts, watchdog);
            let front_ptr = BufPtr(front.as_mut_ptr());
            let back_ptr = BufPtr(back.as_mut_ptr());
            self.dispatch(parts, &|part| {
                // phase timing samples part 0 only (the dispatching side);
                // other parts never read the clock
                let timing = if part == 0 { phases } else { None };
                let work = || {
                    for round in 0..rounds {
                        let (prev_ptr, next_ptr) = if round % 2 == 0 {
                            (front_ptr.get(), back_ptr.get())
                        } else {
                            (back_ptr.get(), front_ptr.get())
                        };
                        // SAFETY: compute phase — every part reads only
                        // `prev` and writes only its disjoint interior
                        // region of `next` (asserted above); the barrier
                        // separates this round's writes from the exchange
                        // reads, and `dispatch` keeps both buffers borrowed
                        // until all parts finish.
                        let prev: &[T] =
                            unsafe { std::slice::from_raw_parts(prev_ptr as *const T, n) };
                        let (lo, hi) = regions[part];
                        // SAFETY: `[lo, hi)` is this part's own interior
                        // region — `regions` partitions the interior, so no
                        // other part aliases this mutable slice.
                        let next: &mut [T] =
                            unsafe { std::slice::from_raw_parts_mut(next_ptr.add(lo), hi - lo) };
                        let mut mark = timing.map(|_| Instant::now());
                        step(part, round, prev, next);
                        lap(timing, &mut mark, PhaseSlot::Compute);
                        if has_exchange {
                            barrier.wait();
                            lap(timing, &mut mark, PhaseSlot::Barrier);
                            // SAFETY: exchange phase — sources are interior
                            // slots (all compute writes are barrier-ordered
                            // before this, and nothing writes interiors
                            // now), destinations are this part's own halo
                            // slots, in-bounds and disjoint across parts
                            // (validated above in every build mode).
                            for &(src, dst) in &exchange[part] {
                                unsafe {
                                    let value = (*(next_ptr.add(src as usize) as *const T)).clone();
                                    *next_ptr.add(dst as usize) = value;
                                }
                            }
                            lap(timing, &mut mark, PhaseSlot::Exchange);
                        }
                        if round + 1 < rounds {
                            barrier.wait();
                            lap(timing, &mut mark, PhaseSlot::Barrier);
                        }
                    }
                    // an armed watchdog also guards chunk completion: a
                    // single-round chunk (the observed, round-granular
                    // dispatch mode) has no inter-round barrier, so without
                    // this a part stalled in its last round would only be
                    // detected when the blocking completion wait ends
                    if watchdog.is_some() {
                        let mut mark = timing.map(|_| Instant::now());
                        barrier.wait();
                        lap(timing, &mut mark, PhaseSlot::Barrier);
                    }
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(work)) {
                    barrier.poison();
                    resume_unwind(payload);
                }
            });
        }
        if rounds % 2 == 1 {
            std::mem::swap(front, back);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.get_mut().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawns worker `w` of a pool (pinned to core `(w + 1) % cores` under
/// [`PinPolicy::Cores`]) — shared between pool construction and the
/// post-panic respawn in [`WorkerPool::ensure_workers`].
fn spawn_worker(shared: &Arc<Shared>, w: usize, pin: PinPolicy) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    std::thread::Builder::new()
        .name(format!("smst-engine-worker-{w}"))
        .spawn(move || {
            if pin == PinPolicy::Cores {
                pin_current_thread_to_core((w + 1) % cores);
            }
            worker_loop(&shared, w)
        })
        .expect("spawning an engine worker thread")
}

/// Raw buffer base pointer, shareable across the pool's workers.
#[derive(Clone, Copy)]
struct BufPtr<T>(*mut T);

impl<T> BufPtr<T> {
    /// Method (not field) access, so edition-2021 closures capture the
    /// `Sync` wrapper rather than the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer is only used under the disjointness + barrier
// protocol documented on `run_rounds_double_buffered`.
unsafe impl<T: Send + Sync> Send for BufPtr<T> {}
unsafe impl<T: Send + Sync> Sync for BufPtr<T> {}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, parts) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break (st.job, st.parts);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // worker `w` owns part `w + 1`; workers of an oversized shared
        // pool are not counted in `outstanding` and only record the epoch.
        // A cleared job slot means this worker woke after its (skipped)
        // epoch completed — participants always observe their job, because
        // the dispatcher cannot clear it before they acknowledge.
        let my_part = worker + 1;
        let Some(job) = job else {
            continue;
        };
        if my_part >= parts {
            continue;
        }
        let panic = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the dispatcher keeps the job borrow alive until this
            // worker acknowledges below.
            let job = unsafe { &*job.0 };
            job(my_part);
        }))
        .err();
        let mut st = shared.state.lock().unwrap();
        // a worker whose *own* job panicked retires: it records itself for
        // respawn and exits after acknowledging. Poison-released siblings
        // and watchdog-timeout unwinds are healthy threads — they stay.
        let retire = panic
            .as_ref()
            .is_some_and(|p| !is_poison_panic(p) && !is_timeout_panic(p));
        if let Some(payload) = panic {
            // keep the first *original* payload: poison-released siblings
            // all panic with the sentinel and must not mask the cause
            match &st.panic {
                Some(existing) if !is_poison_panic(existing) => {}
                _ => st.panic = Some(payload),
            }
        }
        if retire {
            st.retired.push(worker);
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.done.notify_all();
        }
        if retire {
            // the retirement and the acknowledgement above are one critical
            // section: the dispatcher that wakes on `outstanding == 0` is
            // guaranteed to see this worker in `retired` before it can
            // publish another epoch
            return;
        }
    }
}

/// The payload of the secondary panics a poisoned barrier raises in the
/// released siblings; [`WorkerPool::dispatch`] recognizes it so the
/// originating panic is the one re-raised to the caller.
const POISON_PANIC: &str = "engine round barrier poisoned by a sibling worker panic";

/// `true` if a caught payload is the barrier's poison sentinel (as opposed
/// to an original panic from inside a job). The barrier panics via
/// `panic_any(POISON_PANIC)`, so the payload is a `&str`; the `String` arm
/// is belt-and-braces against a future reformulation through `panic!`.
fn is_poison_panic(payload: &PanicPayload) -> bool {
    payload
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == POISON_PANIC)
        || payload
            .downcast_ref::<String>()
            .is_some_and(|s| s == POISON_PANIC)
}

/// A reusable generation barrier with poisoning (a sibling's panic releases
/// everyone instead of deadlocking the round) and an optional watchdog (a
/// part that never arrives makes the *waiters* poison the barrier and
/// unwind with the typed timeout sentinel, instead of deadlocking forever).
struct RoundBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parts: usize,
    watchdog: Option<Duration>,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl RoundBarrier {
    fn new(parts: usize, watchdog: Option<Duration>) -> Self {
        RoundBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            parts,
            watchdog,
        }
    }

    /// Blocks until all parts arrive (or the barrier is poisoned, in which
    /// case this panics so the caller unwinds out of its round loop). With
    /// a watchdog, a wait that exceeds the timeout poisons the barrier
    /// itself and unwinds with [`BarrierTimeoutPanic`] — the first waiter
    /// to time out carries the typed sentinel; the others unwind with the
    /// ordinary poison sentinel.
    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        if st.poisoned {
            drop(st);
            panic_any(POISON_PANIC);
        }
        let generation = st.generation;
        st.arrived += 1;
        if st.arrived == self.parts {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        let deadline = self.watchdog.map(|limit| (Instant::now() + limit, limit));
        while st.generation == generation && !st.poisoned {
            match deadline {
                None => st = self.cv.wait(st).unwrap(),
                Some((at, limit)) => {
                    let now = Instant::now();
                    if now >= at {
                        st.poisoned = true;
                        self.cv.notify_all();
                        drop(st);
                        panic_any(BarrierTimeoutPanic(limit));
                    }
                    let (guard, _timeout) = self.cv.wait_timeout(st, at - now).unwrap();
                    st = guard;
                }
            }
        }
        let poisoned = st.poisoned;
        drop(st);
        if poisoned {
            panic_any(POISON_PANIC);
        }
    }

    fn poison(&self) {
        let mut st = self.state.lock().unwrap();
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// A shared, cloneable handle to a [`WorkerPool`].
///
/// Handles returned by [`PoolHandle::for_threads`] share pools through a
/// process-wide registry, so all runners reuse the same parked workers
/// instead of each spawning their own.
#[derive(Clone, Debug)]
pub struct PoolHandle(Arc<WorkerPool>);

impl PoolHandle {
    /// The smallest registered unpinned pool with at least `threads` total
    /// threads, or a freshly created (and registered) one when none fits.
    /// The pool outlives the handle only while other handles (or runners)
    /// keep it alive.
    pub fn for_threads(threads: usize) -> PoolHandle {
        Self::for_threads_with(threads, PinPolicy::None)
    }

    /// [`PoolHandle::for_threads`] with an explicit [`PinPolicy`]. Pools
    /// are shared only between requests with the **same** policy — a pinned
    /// and an unpinned runner never trade workers, because pinning is a
    /// property of the already-spawned threads.
    pub fn for_threads_with(threads: usize, pin: PinPolicy) -> PoolHandle {
        let threads = threads.max(1);
        let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
        let mut pools = registry.lock().unwrap();
        pools.retain(|weak| weak.strong_count() > 0);
        if let Some(pool) = pools
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|pool| pool.threads() >= threads && pool.pin_policy() == pin)
            .min_by_key(|pool| pool.threads())
        {
            return PoolHandle(pool);
        }
        let pool = Arc::new(WorkerPool::with_policy(threads, pin));
        pools.push(Arc::downgrade(&pool));
        PoolHandle(pool)
    }

    /// A dedicated, unregistered pool (tests and benchmarks that must not
    /// share workers).
    pub fn dedicated(threads: usize) -> PoolHandle {
        PoolHandle(Arc::new(WorkerPool::new(threads)))
    }

    /// [`PoolHandle::dedicated`] with an explicit [`PinPolicy`].
    pub fn dedicated_with(threads: usize, pin: PinPolicy) -> PoolHandle {
        PoolHandle(Arc::new(WorkerPool::with_policy(threads, pin)))
    }

    /// The underlying pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.0
    }

    /// `true` if both handles share one pool.
    pub fn shares_pool_with(&self, other: &PoolHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Maps `f` over `items` on the pool, preserving input order: the
    /// items are strided across at most [`WorkerPool::threads`] parts
    /// (each part processing `items[part], items[part + pieces], …`), and
    /// the results are reassembled in item order. With one item, one
    /// thread, or an empty slice the map runs inline on the caller.
    ///
    /// This is the fan-out shape every "run many independent jobs on the
    /// pool" caller needs (campaign trials, per-size sweeps) — one shared
    /// implementation instead of re-deriving the stride/sort scaffolding
    /// at each call site.
    pub fn map_indexed<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let pieces = self.pool().threads().min(items.len());
        if pieces <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let mut tagged: Vec<(usize, T)> = self
            .pool()
            .dispatch_map(pieces, |part| {
                items
                    .iter()
                    .enumerate()
                    .skip(part)
                    .step_by(pieces)
                    .map(|(i, x)| (i, f(i, x)))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, value)| value).collect()
    }
}

static REGISTRY: OnceLock<Mutex<Vec<Weak<WorkerPool>>>> = OnceLock::new();

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_indexed_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 4, 8] {
            let handle = PoolHandle::dedicated(threads);
            let out = handle.map_indexed(&items, |i, &x| {
                assert_eq!(i, x, "index matches the item's position");
                x * x
            });
            assert_eq!(out, expected, "threads {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(PoolHandle::dedicated(2)
            .map_indexed(&empty, |_i, &x: &usize| x)
            .is_empty());
    }

    #[test]
    fn dispatch_runs_every_part_exactly_once() {
        let pool = WorkerPool::new(4);
        for parts in 1..=4 {
            let hits: Vec<AtomicUsize> = (0..parts).map(|_| AtomicUsize::new(0)).collect();
            pool.dispatch(parts, &|p| {
                hits[p].fetch_add(1, Ordering::SeqCst);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::SeqCst), 1);
            }
        }
    }

    #[test]
    fn dispatch_map_collects_in_part_order() {
        let pool = WorkerPool::new(3);
        let out = pool.dispatch_map(3, |p| p * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.dispatch(3, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1500);
    }

    #[test]
    fn multi_round_double_buffer_matches_sequential_reference() {
        // each round: x[i] <- x[i] + max of the full previous buffer
        let n = 97;
        let rounds = 9;
        let reference = {
            let mut cur: Vec<u64> = (0..n as u64).collect();
            for _ in 0..rounds {
                let m = *cur.iter().max().unwrap();
                cur = cur.iter().map(|&x| x + m).collect();
            }
            cur
        };
        for parts in [1usize, 2, 3, 4] {
            let pool = WorkerPool::new(4);
            let bounds: Vec<usize> = (0..=parts).map(|k| n * k / parts).collect();
            let mut front: Vec<u64> = (0..n as u64).collect();
            let mut back = front.clone();
            pool.run_rounds_double_buffered(&bounds, rounds, &mut front, &mut back, {
                |part: usize, _round: usize, prev: &[u64], next: &mut [u64]| {
                    let m = *prev.iter().max().unwrap();
                    let lo = bounds[part];
                    for (i, slot) in next.iter_mut().enumerate() {
                        *slot = prev[lo + i] + m;
                    }
                }
            });
            assert_eq!(front, reference, "{parts} parts diverged");
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(2, &|p| {
                if p == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
        // the pool is still usable afterwards
        let counter = AtomicUsize::new(0);
        pool.dispatch(2, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn multi_round_panic_does_not_deadlock() {
        let pool = WorkerPool::new(3);
        let n = 30;
        let bounds = vec![0, 10, 20, 30];
        let mut front = vec![0u64; n];
        let mut back = vec![0u64; n];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds_double_buffered(&bounds, 5, &mut front, &mut back, {
                |part: usize, round: usize, _prev: &[u64], _next: &mut [u64]| {
                    if part == 1 && round == 2 {
                        panic!("mid-chunk boom");
                    }
                }
            });
        }));
        // the ORIGINAL payload must surface, not the secondary
        // barrier-poison panics it released in the sibling workers
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("mid-chunk boom"),
            "poison sentinel masked the original panic: {message:?}"
        );
        // still dispatchable
        pool.dispatch(3, &|_| {});
    }

    #[test]
    fn handles_share_registered_pools() {
        let a = PoolHandle::for_threads(5);
        let b = PoolHandle::for_threads(5);
        let c = PoolHandle::for_threads(3); // fits inside the 5-thread pool
        assert!(a.shares_pool_with(&b));
        assert!(a.shares_pool_with(&c));
        assert!(a.pool().threads() >= 5);
        let d = PoolHandle::dedicated(2);
        assert!(!d.shares_pool_with(&a));
    }

    /// Reference arena shape for the halo tests: two parts, each with a
    /// 4-slot interior and a 1-slot halo mirroring the other part's first
    /// interior slot.
    #[allow(clippy::type_complexity)]
    fn tiny_halo_setup() -> (Vec<(usize, usize)>, Vec<Vec<(u32, u32)>>) {
        let regions = vec![(0usize, 4usize), (5, 9)];
        let exchange = vec![vec![(5u32, 4u32)], vec![(0, 9)]];
        (regions, exchange)
    }

    #[test]
    fn halo_rounds_match_the_sequential_reference_at_any_width() {
        // each round: interior slot i of a part becomes (own + mirrored
        // other-part value); halo slots refresh after every round
        let (regions, exchange) = tiny_halo_setup();
        let init: Vec<u64> = (1..=10).collect();
        let reference = |rounds: usize| {
            let mut cur = init.clone();
            for _ in 0..rounds {
                let mut next = cur.clone();
                for &(lo, hi) in &regions {
                    for i in lo..hi {
                        // every interior adds its part's halo slot value
                        let halo = if lo == 0 { cur[4] } else { cur[9] };
                        next[i] = cur[i] + halo;
                    }
                }
                next[4] = next[5];
                next[9] = next[0];
                cur = next;
            }
            cur
        };
        for rounds in [1usize, 2, 5] {
            let expected = reference(rounds);
            for threads in [1usize, 2, 4] {
                let pool = WorkerPool::new(threads);
                let mut front = init.clone();
                let mut back = init.clone();
                pool.run_rounds_halo(&regions, &exchange, rounds, &mut front, &mut back, {
                    let regions = &regions;
                    move |part, _round, prev: &[u64], next: &mut [u64]| {
                        let (lo, _hi) = regions[part];
                        let halo = if part == 0 { prev[4] } else { prev[9] };
                        for (i, slot) in next.iter_mut().enumerate() {
                            *slot = prev[lo + i] + halo;
                        }
                    }
                });
                assert_eq!(front, expected, "rounds {rounds}, threads {threads}");
            }
        }
    }

    #[test]
    fn halo_rounds_reject_overlapping_destinations() {
        let (regions, mut exchange) = tiny_halo_setup();
        exchange[0].push((1, 9)); // slot 9 already pulled by part 1
        let pool = WorkerPool::new(2);
        let mut front = vec![0u64; 10];
        let mut back = vec![0u64; 10];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds_halo(
                &regions,
                &exchange,
                1,
                &mut front,
                &mut back,
                |_, _, _, _| {},
            );
        }));
        assert!(result.is_err(), "duplicate halo destinations must panic");
    }

    #[test]
    fn halo_rounds_panic_does_not_deadlock() {
        let (regions, exchange) = tiny_halo_setup();
        let pool = WorkerPool::new(2);
        let mut front = vec![0u64; 10];
        let mut back = vec![0u64; 10];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds_halo(
                &regions,
                &exchange,
                4,
                &mut front,
                &mut back,
                |part, round, _prev: &[u64], _next: &mut [u64]| {
                    if part == 1 && round == 2 {
                        panic!("halo boom");
                    }
                },
            );
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("halo boom"),
            "poison sentinel masked the original panic: {message:?}"
        );
        pool.dispatch(2, &|_| {});
    }

    #[test]
    fn pinned_pools_do_not_share_with_unpinned_ones() {
        // 29 threads: unique to this test, so registry matches are exact
        let plain = PoolHandle::for_threads(29);
        let pinned = PoolHandle::for_threads_with(29, PinPolicy::Cores);
        let pinned_again = PoolHandle::for_threads_with(29, PinPolicy::Cores);
        assert!(!plain.shares_pool_with(&pinned));
        assert!(pinned.shares_pool_with(&pinned_again));
        assert_eq!(pinned.pool().pin_policy(), PinPolicy::Cores);
        assert_eq!(plain.pool().pin_policy(), PinPolicy::None);
    }

    #[test]
    fn pinned_pool_dispatches_like_an_unpinned_one() {
        // pinning is best-effort and purely wall-clock: every part still
        // runs exactly once
        let pool = WorkerPool::with_policy(4, PinPolicy::Cores);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.dispatch(4, &|p| {
                hits[p].fetch_add(1, Ordering::SeqCst);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 50);
        }
    }

    #[test]
    fn affinity_call_is_best_effort() {
        // must never panic, whatever the platform answers
        let _ = pin_current_thread_to_core(0);
        let _ = pin_current_thread_to_core(10_000);
    }

    #[test]
    fn registry_pool_reuse_after_panic_is_sound() {
        // the satellite bugfix: a panic inside one borrower's dispatch must
        // leave the registry-shared pool healed for the *next* borrower
        for threads in [1usize, 2, 8] {
            let handle = PoolHandle::for_threads(threads);
            let panics_before = handle.pool().stats().panics();
            let respawns_before = handle.pool().stats().respawns();
            let result = catch_unwind(AssertUnwindSafe(|| {
                handle.pool().dispatch(threads, &|p| {
                    if p == threads - 1 {
                        panic!("borrower boom");
                    }
                });
            }));
            assert!(result.is_err(), "threads {threads}: panic must propagate");
            // the next borrower comes through the registry, not the old handle
            let next = PoolHandle::for_threads(threads);
            for _ in 0..2 {
                let counter = AtomicUsize::new(0);
                next.pool().dispatch(threads, &|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(counter.load(Ordering::SeqCst), threads, "threads {threads}");
            }
            if threads > 1 {
                // drive one dispatch through the *same* pool object so the
                // healing is observable on it even if a racing test slipped
                // a different (smaller) pool into the registry for `next`
                handle.pool().dispatch(threads, &|_| {});
                // the panicked part ran on a worker: it retired and was
                // respawned before the next epoch was published
                assert!(handle.pool().stats().panics() > panics_before);
                assert!(handle.pool().stats().respawns() > respawns_before);
            }
        }
    }

    #[test]
    fn panicked_workers_are_respawned_every_time() {
        let pool = WorkerPool::new(3);
        for i in 0..3 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.dispatch(3, &|p| {
                    if p == 2 {
                        panic!("boom {i}");
                    }
                });
            }));
            assert!(result.is_err());
            let counter = AtomicUsize::new(0);
            pool.dispatch(3, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), 3);
        }
        assert_eq!(pool.stats().panics(), 3);
        assert_eq!(pool.stats().respawns(), 3);
        assert_eq!(pool.stats().barrier_timeouts(), 0);
    }

    #[test]
    fn hung_part_trips_the_watchdog_instead_of_deadlocking() {
        let pool = WorkerPool::new(2);
        let bounds = vec![0usize, 5, 10];
        let mut front = vec![0u64; 10];
        let mut back = vec![0u64; 10];
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds_double_buffered_phased(
                &bounds,
                3,
                &mut front,
                &mut back,
                |part: usize, round: usize, _prev: &[u64], _next: &mut [u64]| {
                    if part == 1 && round == 1 {
                        // a *finite* stall: the dispatcher must still wait
                        // for the part to acknowledge (lifetime-erasure
                        // contract), so the test would deadlock forever on
                        // an infinite one — the watchdog bounds detection,
                        // not the stall
                        std::thread::sleep(Duration::from_millis(300));
                    }
                },
                None,
                Some(Duration::from_millis(40)),
            );
        }));
        let payload = result.expect_err("the watchdog must fire");
        assert!(
            is_timeout_panic(&payload),
            "expected the typed timeout sentinel"
        );
        assert!(started.elapsed() >= Duration::from_millis(40));
        assert_eq!(pool.stats().barrier_timeouts(), 1);
        assert_eq!(pool.stats().panics(), 0);
        // the stalled part was healthy (just slow): nothing retired, and
        // the pool dispatches again
        let counter = AtomicUsize::new(0);
        pool.dispatch(2, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(pool.stats().respawns(), 0);
    }

    #[test]
    fn one_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.dispatch(1, &|p| {
            assert_eq!(p, 0);
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
