//! A persistent worker pool: parked threads, epoch dispatch, round barrier.
//!
//! PR 1's runners paid `std::thread::scope` spawn/join cost (tens of µs) on
//! **every** round or batch; at the sub-millisecond rounds the paper's
//! O(1)-round verification lives in, that overhead dominated and the engine
//! lost to the sequential runner. [`WorkerPool`] replaces the per-round
//! spawn with long-lived workers parked on a condvar: a dispatch is one
//! epoch bump plus a wake-up (single-digit µs), and
//! [`run_rounds_double_buffered`](WorkerPool::run_rounds_double_buffered)
//! amortizes even that over a whole chunk of rounds, synchronizing the
//! workers between rounds with a lightweight generation barrier instead of
//! returning to the dispatcher.
//!
//! Pools are **shared and long-lived**: [`PoolHandle::for_threads`] hands
//! out the smallest registered pool with enough threads (creating one only
//! when none fits), so every runner in the process reuses the same parked
//! workers. A pool dies when the last handle drops; the workers are joined
//! on drop.
//!
//! # Safety
//!
//! This module is the **only** place in the crate where `unsafe` appears
//! (the crate is `#![deny(unsafe_code)]`, relaxed from `forbid` by exactly
//! this module). Two uses, both with the same structural justification:
//!
//! 1. **Lifetime erasure of the dispatched job.** Workers are `'static`
//!    threads, but jobs borrow the caller's stack (program, topology,
//!    registers). [`WorkerPool::dispatch`] erases the borrow into a raw
//!    pointer and *does not return until every participating worker has
//!    acknowledged completion of the epoch* — the exact guarantee
//!    `std::thread::scope` provides structurally. Workers without a part
//!    never dereference the pointer (they only skip the epoch), so no
//!    worker can call through it after `dispatch` returns.
//! 2. **Disjoint double-buffer slices.** In
//!    [`run_rounds_double_buffered`](WorkerPool::run_rounds_double_buffered)
//!    each part writes `next[bounds[part]..bounds[part + 1]]` — disjoint
//!    ranges — while all parts read only the other buffer; a poisoning
//!    round barrier separates consecutive rounds, so no read of round `r`'s
//!    input can race a write of round `r + 1`.
//!
//! Worker panics are caught, propagated to the dispatcher (first panic
//! wins), and poison the round barrier so sibling workers unwind instead of
//! deadlocking; the pool itself survives and stays reusable.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Lifetime-erased pointer to the job of the current epoch.
///
/// Only ever dereferenced between the epoch bump and the completion
/// acknowledgement — the window during which [`WorkerPool::dispatch`] keeps
/// the real borrow alive on the caller's stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls are fine) and its lifetime is
// guarded by the dispatch protocol described in the module docs.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per dispatch; workers detect work by comparing epochs.
    epoch: u64,
    /// The job of the current epoch (`None` between dispatches).
    job: Option<JobPtr>,
    /// How many parts the current job is split into (caller is part 0).
    parts: usize,
    /// Workers that have not yet acknowledged the current epoch.
    outstanding: usize,
    /// First worker panic of the current epoch, if any.
    panic: Option<PanicPayload>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for an epoch bump.
    work: Condvar,
    /// The dispatcher parks here waiting for `outstanding == 0`.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing one job at a time,
/// split into per-thread parts.
///
/// `threads` counts the **total** parallelism of a dispatch: the caller
/// participates as part 0, so a pool of `t` threads spawns `t - 1` workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    /// Serializes dispatches from different runner threads onto the same
    /// pool (the job slot is single-occupancy by design).
    dispatch_lock: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total parallelism (`threads - 1`
    /// parked workers; a 1-thread pool spawns nothing and runs every
    /// dispatch inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                parts: 0,
                outstanding: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads.saturating_sub(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("smst-engine-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawning an engine worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            dispatch_lock: Mutex::new(()),
            handles,
        }
    }

    /// Total parallelism of a dispatch (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(part)` for every `part in 0..parts`, the caller executing
    /// part 0 and the parked workers parts `1..parts`. Blocks until every
    /// part has finished; workers beyond `parts` (of an oversized shared
    /// pool) are neither woken into work nor waited on.
    ///
    /// With `parts == 1` (or a 1-thread pool) the job runs inline with zero
    /// synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `parts` exceeds [`threads`](Self::threads), and re-raises
    /// the first panic raised inside `job` (after all parts finished).
    pub fn dispatch(&self, parts: usize, job: &(dyn Fn(usize) + Sync)) {
        assert!(
            parts <= self.threads,
            "dispatch of {parts} parts on a {}-thread pool",
            self.threads
        );
        if parts <= 1 || self.threads == 1 {
            for part in 0..parts {
                job(part);
            }
            return;
        }
        let serial = self.dispatch_lock.lock().unwrap();
        // SAFETY: lifetime erasure; `job` stays borrowed on this stack frame
        // until the completion wait below observes `outstanding == 0`;
        // participating workers only call through the pointer before
        // acknowledging, and non-participants never dereference it.
        let erased = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(erased);
            st.parts = parts;
            // only workers that own a part (1..parts) acknowledge; workers
            // of an oversized shared pool wake, update their epoch and go
            // straight back to sleep without being waited on
            st.outstanding = parts - 1;
            st.panic = None;
            st.epoch += 1;
        }
        self.shared.work.notify_all();
        // the dispatching thread works instead of sleeping
        let caller_panic = catch_unwind(AssertUnwindSafe(|| job(0))).err();
        let worker_panic = {
            let mut st = self.shared.state.lock().unwrap();
            while st.outstanding > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            st.panic.take()
        };
        drop(serial);
        // prefer the originating panic over the secondary barrier-poison
        // panics it released in the siblings — losing the real payload
        // would make pool-path failures undiagnosable
        let payloads = [caller_panic, worker_panic];
        let mut payloads: Vec<PanicPayload> = payloads.into_iter().flatten().collect();
        if let Some(original) = payloads.iter().position(|p| !is_poison_panic(p)) {
            resume_unwind(payloads.swap_remove(original));
        }
        if let Some(payload) = payloads.pop() {
            resume_unwind(payload);
        }
    }

    /// [`dispatch`](Self::dispatch), collecting each part's return value.
    pub fn dispatch_map<T, F>(&self, parts: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..parts).map(|_| Mutex::new(None)).collect();
        self.dispatch(parts, &|part| {
            let value = job(part);
            *slots[part].lock().unwrap() = Some(value);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every part stores exactly one value")
            })
            .collect()
    }

    /// Chunked multi-round double-buffered execution: runs `rounds` rounds
    /// in **one** dispatch, each round computing
    /// `step(part, round, prev, next_slice)` for every part, where `prev` is
    /// the full previous-round buffer and `next_slice` is the part's
    /// disjoint slice `bounds[part]..bounds[part + 1]` of the next-round
    /// buffer. Buffer roles alternate internally; a round barrier separates
    /// consecutive rounds, so workers never return to the dispatcher
    /// mid-chunk.
    ///
    /// On return `front` holds the final round's registers and `back` the
    /// previous round's (the same postcondition as `rounds` sequential
    /// compute-and-swap steps).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a monotone cover `0..front.len()` with at
    /// most [`threads`](Self::threads) parts, or if the buffers differ in
    /// length; propagates `step` panics.
    pub fn run_rounds_double_buffered<T, F>(
        &self,
        bounds: &[usize],
        rounds: usize,
        front: &mut Vec<T>,
        back: &mut Vec<T>,
        step: F,
    ) where
        T: Send + Sync,
        F: Fn(usize, usize, &[T], &mut [T]) + Sync,
    {
        let n = front.len();
        assert_eq!(back.len(), n, "double buffers must have equal length");
        let parts = bounds.len().checked_sub(1).expect("at least one part");
        assert!(parts >= 1, "at least one part");
        assert_eq!(bounds[0], 0, "bounds must start at 0");
        assert_eq!(bounds[parts], n, "bounds must cover the buffer");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be monotone"
        );
        if rounds == 0 {
            return;
        }
        if parts == 1 || self.threads == 1 {
            for round in 0..rounds {
                let (prev, next) = if round % 2 == 0 {
                    (&*front, &mut *back)
                } else {
                    (&*back, &mut *front)
                };
                for part in 0..parts {
                    // one part borrowed at a time: the per-iteration
                    // re-borrow is what guarantees disjointness here
                    let slice = &mut next[bounds[part]..bounds[part + 1]];
                    step(part, round, prev, slice);
                }
            }
        } else {
            let barrier = RoundBarrier::new(parts);
            let front_ptr = BufPtr(front.as_mut_ptr());
            let back_ptr = BufPtr(back.as_mut_ptr());
            self.dispatch(parts, &|part| {
                let work = || {
                    for round in 0..rounds {
                        let (prev_ptr, next_ptr) = if round % 2 == 0 {
                            (front_ptr.get(), back_ptr.get())
                        } else {
                            (back_ptr.get(), front_ptr.get())
                        };
                        // SAFETY: within a round every part reads only
                        // `prev` and writes only its disjoint `next` range;
                        // the poisoning barrier orders round r's writes
                        // before round r + 1's reads, and `dispatch` keeps
                        // both buffers borrowed until all parts finish.
                        let prev: &[T] =
                            unsafe { std::slice::from_raw_parts(prev_ptr as *const T, n) };
                        let (lo, hi) = (bounds[part], bounds[part + 1]);
                        let next: &mut [T] =
                            unsafe { std::slice::from_raw_parts_mut(next_ptr.add(lo), hi - lo) };
                        step(part, round, prev, next);
                        if round + 1 < rounds {
                            barrier.wait();
                        }
                    }
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(work)) {
                    // free the siblings parked on the barrier, then let the
                    // dispatch-level panic protocol take over
                    barrier.poison();
                    resume_unwind(payload);
                }
            });
        }
        if rounds % 2 == 1 {
            std::mem::swap(front, back);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Raw buffer base pointer, shareable across the pool's workers.
#[derive(Clone, Copy)]
struct BufPtr<T>(*mut T);

impl<T> BufPtr<T> {
    /// Method (not field) access, so edition-2021 closures capture the
    /// `Sync` wrapper rather than the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer is only used under the disjointness + barrier
// protocol documented on `run_rounds_double_buffered`.
unsafe impl<T: Send + Sync> Send for BufPtr<T> {}
unsafe impl<T: Send + Sync> Sync for BufPtr<T> {}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, parts) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break (st.job, st.parts);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // worker `w` owns part `w + 1`; workers of an oversized shared
        // pool are not counted in `outstanding` and only record the epoch.
        // A cleared job slot means this worker woke after its (skipped)
        // epoch completed — participants always observe their job, because
        // the dispatcher cannot clear it before they acknowledge.
        let my_part = worker + 1;
        let Some(job) = job else {
            continue;
        };
        if my_part >= parts {
            continue;
        }
        let panic = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the dispatcher keeps the job borrow alive until this
            // worker acknowledges below.
            let job = unsafe { &*job.0 };
            job(my_part);
        }))
        .err();
        let mut st = shared.state.lock().unwrap();
        if let Some(payload) = panic {
            // keep the first *original* payload: poison-released siblings
            // all panic with the sentinel and must not mask the cause
            match &st.panic {
                Some(existing) if !is_poison_panic(existing) => {}
                _ => st.panic = Some(payload),
            }
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.done.notify_all();
        }
    }
}

/// The payload of the secondary panics a poisoned barrier raises in the
/// released siblings; [`WorkerPool::dispatch`] recognizes it so the
/// originating panic is the one re-raised to the caller.
const POISON_PANIC: &str = "engine round barrier poisoned by a sibling worker panic";

/// `true` if a caught payload is the barrier's poison sentinel (as opposed
/// to an original panic from inside a job). The barrier panics via
/// `panic_any(POISON_PANIC)`, so the payload is a `&str`; the `String` arm
/// is belt-and-braces against a future reformulation through `panic!`.
fn is_poison_panic(payload: &PanicPayload) -> bool {
    payload
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == POISON_PANIC)
        || payload
            .downcast_ref::<String>()
            .is_some_and(|s| s == POISON_PANIC)
}

/// A reusable generation barrier with poisoning (a sibling's panic releases
/// everyone instead of deadlocking the round).
struct RoundBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parts: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl RoundBarrier {
    fn new(parts: usize) -> Self {
        RoundBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            parts,
        }
    }

    /// Blocks until all parts arrive (or the barrier is poisoned, in which
    /// case this panics so the caller unwinds out of its round loop).
    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        if st.poisoned {
            drop(st);
            panic_any(POISON_PANIC);
        }
        let generation = st.generation;
        st.arrived += 1;
        if st.arrived == self.parts {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap();
        }
        let poisoned = st.poisoned;
        drop(st);
        if poisoned {
            panic_any(POISON_PANIC);
        }
    }

    fn poison(&self) {
        let mut st = self.state.lock().unwrap();
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// A shared, cloneable handle to a [`WorkerPool`].
///
/// Handles returned by [`PoolHandle::for_threads`] share pools through a
/// process-wide registry, so all runners reuse the same parked workers
/// instead of each spawning their own.
#[derive(Clone, Debug)]
pub struct PoolHandle(Arc<WorkerPool>);

impl PoolHandle {
    /// The smallest registered pool with at least `threads` total threads,
    /// or a freshly created (and registered) one when none fits. The pool
    /// outlives the handle only while other handles (or runners) keep it
    /// alive.
    pub fn for_threads(threads: usize) -> PoolHandle {
        let threads = threads.max(1);
        let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
        let mut pools = registry.lock().unwrap();
        pools.retain(|weak| weak.strong_count() > 0);
        if let Some(pool) = pools
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|pool| pool.threads() >= threads)
            .min_by_key(|pool| pool.threads())
        {
            return PoolHandle(pool);
        }
        let pool = Arc::new(WorkerPool::new(threads));
        pools.push(Arc::downgrade(&pool));
        PoolHandle(pool)
    }

    /// A dedicated, unregistered pool (tests and benchmarks that must not
    /// share workers).
    pub fn dedicated(threads: usize) -> PoolHandle {
        PoolHandle(Arc::new(WorkerPool::new(threads)))
    }

    /// The underlying pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.0
    }

    /// `true` if both handles share one pool.
    pub fn shares_pool_with(&self, other: &PoolHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Maps `f` over `items` on the pool, preserving input order: the
    /// items are strided across at most [`WorkerPool::threads`] parts
    /// (each part processing `items[part], items[part + pieces], …`), and
    /// the results are reassembled in item order. With one item, one
    /// thread, or an empty slice the map runs inline on the caller.
    ///
    /// This is the fan-out shape every "run many independent jobs on the
    /// pool" caller needs (campaign trials, per-size sweeps) — one shared
    /// implementation instead of re-deriving the stride/sort scaffolding
    /// at each call site.
    pub fn map_indexed<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let pieces = self.pool().threads().min(items.len());
        if pieces <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let mut tagged: Vec<(usize, T)> = self
            .pool()
            .dispatch_map(pieces, |part| {
                items
                    .iter()
                    .enumerate()
                    .skip(part)
                    .step_by(pieces)
                    .map(|(i, x)| (i, f(i, x)))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, value)| value).collect()
    }
}

static REGISTRY: OnceLock<Mutex<Vec<Weak<WorkerPool>>>> = OnceLock::new();

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_indexed_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 4, 8] {
            let handle = PoolHandle::dedicated(threads);
            let out = handle.map_indexed(&items, |i, &x| {
                assert_eq!(i, x, "index matches the item's position");
                x * x
            });
            assert_eq!(out, expected, "threads {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(PoolHandle::dedicated(2)
            .map_indexed(&empty, |_i, &x: &usize| x)
            .is_empty());
    }

    #[test]
    fn dispatch_runs_every_part_exactly_once() {
        let pool = WorkerPool::new(4);
        for parts in 1..=4 {
            let hits: Vec<AtomicUsize> = (0..parts).map(|_| AtomicUsize::new(0)).collect();
            pool.dispatch(parts, &|p| {
                hits[p].fetch_add(1, Ordering::SeqCst);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::SeqCst), 1);
            }
        }
    }

    #[test]
    fn dispatch_map_collects_in_part_order() {
        let pool = WorkerPool::new(3);
        let out = pool.dispatch_map(3, |p| p * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.dispatch(3, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1500);
    }

    #[test]
    fn multi_round_double_buffer_matches_sequential_reference() {
        // each round: x[i] <- x[i] + max of the full previous buffer
        let n = 97;
        let rounds = 9;
        let reference = {
            let mut cur: Vec<u64> = (0..n as u64).collect();
            for _ in 0..rounds {
                let m = *cur.iter().max().unwrap();
                cur = cur.iter().map(|&x| x + m).collect();
            }
            cur
        };
        for parts in [1usize, 2, 3, 4] {
            let pool = WorkerPool::new(4);
            let bounds: Vec<usize> = (0..=parts).map(|k| n * k / parts).collect();
            let mut front: Vec<u64> = (0..n as u64).collect();
            let mut back = front.clone();
            pool.run_rounds_double_buffered(&bounds, rounds, &mut front, &mut back, {
                |part: usize, _round: usize, prev: &[u64], next: &mut [u64]| {
                    let m = *prev.iter().max().unwrap();
                    let lo = bounds[part];
                    for (i, slot) in next.iter_mut().enumerate() {
                        *slot = prev[lo + i] + m;
                    }
                }
            });
            assert_eq!(front, reference, "{parts} parts diverged");
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(2, &|p| {
                if p == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
        // the pool is still usable afterwards
        let counter = AtomicUsize::new(0);
        pool.dispatch(2, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn multi_round_panic_does_not_deadlock() {
        let pool = WorkerPool::new(3);
        let n = 30;
        let bounds = vec![0, 10, 20, 30];
        let mut front = vec![0u64; n];
        let mut back = vec![0u64; n];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds_double_buffered(&bounds, 5, &mut front, &mut back, {
                |part: usize, round: usize, _prev: &[u64], _next: &mut [u64]| {
                    if part == 1 && round == 2 {
                        panic!("mid-chunk boom");
                    }
                }
            });
        }));
        // the ORIGINAL payload must surface, not the secondary
        // barrier-poison panics it released in the sibling workers
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("mid-chunk boom"),
            "poison sentinel masked the original panic: {message:?}"
        );
        // still dispatchable
        pool.dispatch(3, &|_| {});
    }

    #[test]
    fn handles_share_registered_pools() {
        let a = PoolHandle::for_threads(5);
        let b = PoolHandle::for_threads(5);
        let c = PoolHandle::for_threads(3); // fits inside the 5-thread pool
        assert!(a.shares_pool_with(&b));
        assert!(a.shares_pool_with(&c));
        assert!(a.pool().threads() >= 5);
        let d = PoolHandle::dedicated(2);
        assert!(!d.shares_pool_with(&a));
    }

    #[test]
    fn one_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.dispatch(1, &|p| {
            assert_eq!(p, 0);
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
