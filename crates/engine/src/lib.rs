//! # smst-engine
//!
//! A sharded, deterministic, **parallel** execution engine that runs any
//! [`smst_sim::NodeProgram`] over million-node graphs.
//!
//! The sequential simulator in `smst-sim` is the semantic reference: one
//! thread, one node at a time. This crate scales the same execution model to
//! the sizes where the paper's claims become interesting (`O(log n)` bits
//! and polylog detection only matter when `n` is large) without changing a
//! single program:
//!
//! * [`topology::CsrTopology`] — a flattened, port-ordered, cache-friendly
//!   neighbour index built once per run;
//! * [`layout::Layout`] + [`layout::LayoutPolicy`] — an optional RCM
//!   renumbering pass that packs neighbours into nearby indices (shard-local
//!   state arenas), carried with its inverse so every public API keeps
//!   speaking original node ids;
//! * [`shard::Shard`] + [`shard::partition_balanced`] — contiguous node
//!   ranges with equalized per-round work (adjacency entries, not node
//!   counts), one per worker;
//! * [`shard::HaloPlan`] — the per-shard boundary analysis behind the
//!   **halo-exchange execution mode**: each worker computes on a
//!   shard-local arena of interior registers plus halo copies of its
//!   external neighbours, and rounds end with an explicit, measurable pull
//!   exchange instead of incidental cross-shard cache misses;
//! * [`pool::WorkerPool`] + [`pool::PoolHandle`] — a persistent, shared pool
//!   of parked worker threads: rounds and batches are dispatched by bumping
//!   an epoch (single-digit µs), and multi-round chunks run behind a
//!   lightweight round barrier without returning to the dispatcher — no
//!   per-round thread spawns anywhere; [`pool::PinPolicy`] optionally pins
//!   each worker to a core (raw `sched_setaffinity` on Linux, no-op
//!   elsewhere) so shard arenas keep their cache and NUMA placement;
//!   [`pool::PhaseTimes`] optionally splits observed rounds into
//!   compute / barrier / halo-exchange wall-clock phases, surfaced through
//!   [`smst_sim::RoundStats`] (timing never affects results);
//! * [`ParallelSyncRunner`] — double-buffered lock-step rounds; each round
//!   is an embarrassingly parallel map over shards, **bit-for-bit equal**
//!   to [`smst_sim::SyncRunner`] at every thread count;
//! * [`ShardedAsyncRunner`] — the distributed-daemon generalization of
//!   [`smst_sim::AsyncRunner`]: any [`smst_sim::BatchDaemon`]'s batches of
//!   simultaneous activations executed in parallel, reproducible at any
//!   thread count, and exactly equal to the central daemon at batch
//!   width 1 (adversarial batch daemons live in `smst-adversary`);
//! * [`EngineConfig`] + [`runner::Runner`] — **the one engine API**: a
//!   validated configuration of the full execution envelope (backend,
//!   mode/daemon, threads, layout, pinning, halo) whose
//!   [`instantiate`](EngineConfig::instantiate) returns any of the four
//!   execution paths (the two sequential reference runners and the two
//!   sharded runners) behind one object-safe `Box<dyn Runner<P>>`, with a
//!   [`smst_sim::RoundObserver`] hook for per-round accounting;
//! * [`ScenarioSpec`] — one declarative API over graph family × fault
//!   bursts × [`EngineConfig`];
//! * [`chaos`] — the verify-forever chaos plane: recurring
//!   [`smst_sim::FaultSchedule`] waves driven through the one `Runner`
//!   loop with per-wave detection-latency and rounds-to-quiescence
//!   accounting, riding on the engine's self-healing pool
//!   ([`RecoveryPolicy`] retry/backoff/watchdog for panicked or hung
//!   workers, one-shot [`InjectionSpec`] chaos injections, typed
//!   [`EngineError`]s from the `try_*` runner surface);
//! * [`adapters`] — the paper's verifier and the self-stabilizing
//!   transformer running unchanged on the engine, with sequential-equality
//!   guarantees pinned by tests;
//! * [`programs`] — compact demo workloads for million-node smoke tests
//!   and throughput benches.
//!
//! # Determinism contract
//!
//! Every run is a pure function of `(program, scenario/graph seed, daemon
//! seed, batch width)`. Thread count and layout **never** change results —
//! they are purely wall-clock knobs — because rounds and batches read only
//! pre-step registers (double buffering), the layout pass preserves every
//! node's port order exactly, and all scheduling randomness comes from
//! counter-seeded [`smst_rng`] generators, never from thread interleaving.
//!
//! # Safety
//!
//! The crate is `#![deny(unsafe_code)]`; the only `unsafe` lives in
//! [`pool`]'s lifetime-erasure core, whose dispatch protocol provides the
//! same structural guarantee as `std::thread::scope` (see the module docs).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod chaos;
pub mod config;
pub mod layout;
pub mod parallel_sync;
pub mod pool;
pub mod programs;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod sharded_async;
pub mod topology;

pub use chaos::{run_chaos, run_chaos_scenario, ChaosOutcome, ChaosReport};
pub use config::{
    register_remote_factory, Backend, ConfigError, DaemonConfig, EngineConfig, EngineError,
    InjectionKind, InjectionSpec, Mode, RecoveryPolicy, RemoteFactory,
};
pub use layout::{Layout, LayoutPolicy};
pub use parallel_sync::ParallelSyncRunner;
pub use pool::{PhaseTimes, PinPolicy, PoolError, PoolHandle, PoolStats, WorkerPool};
pub use runner::{try_drive_until, RunReport, Runner, StopCondition};
pub use scenario::{FaultBurst, GraphFamily, ScenarioOutcome, ScenarioReport, ScenarioSpec};
pub use shard::{partition_balanced, HaloPlan, Shard};
pub use sharded_async::ShardedAsyncRunner;
pub use topology::CsrTopology;

/// The number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
