//! Example EDIAM (§2.6): a 1-round scheme proving that every node "knows" an
//! upper bound on the height of the candidate tree.
//!
//! The label extends the Example SP label with a claimed bound `x ≥ height`.
//! The verifier checks the SP conditions, agreement on `x` among neighbours,
//! and that `x` is at least the node's own distance from the root. The paper
//! uses this scheme to certify that the diameter of every *part* of the train
//! partitions is `O(log n)` (§3.4.3 / §8).

use crate::scheme::{Instance, LabelView, MarkError, OneRoundScheme};
use crate::sp::{SpLabel, SpanningTreeScheme};
use smst_graph::weight::bits_for;
use smst_graph::NodeId;

/// The Example EDIAM label: SP fields plus the claimed height bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiameterLabel {
    /// The underlying spanning-tree proof.
    pub sp: SpLabel,
    /// The claimed upper bound `x` on the height of the tree.
    pub height_bound: u64,
}

/// The Example EDIAM scheme, parameterized by how much slack the marker adds
/// above the true height.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiameterBoundScheme {
    /// Extra slack the marker adds to the true height when producing labels.
    pub slack: u64,
}

impl DiameterBoundScheme {
    /// A scheme whose marker claims exactly the true height.
    pub fn exact() -> Self {
        Self::default()
    }

    /// A scheme whose marker claims `height + slack`.
    pub fn with_slack(slack: u64) -> Self {
        DiameterBoundScheme { slack }
    }
}

impl OneRoundScheme for DiameterBoundScheme {
    type Label = DiameterLabel;

    fn name(&self) -> &str {
        "ediam-height-bound"
    }

    fn mark(&self, instance: &Instance) -> Result<Vec<DiameterLabel>, MarkError> {
        let sp_labels = SpanningTreeScheme.mark(instance)?;
        let tree = instance.candidate_tree()?;
        let bound = tree.height() as u64 + self.slack;
        Ok(instance
            .graph
            .nodes()
            .map(|v| DiameterLabel {
                sp: sp_labels[v.index()].clone(),
                height_bound: bound,
            })
            .collect())
    }

    fn verify_at(&self, instance: &Instance, view: &LabelView<'_, DiameterLabel>) -> bool {
        let sp_view = LabelView {
            node: view.node,
            own: &view.own.sp,
            neighbors: view.neighbors.iter().map(|l| &l.sp).collect(),
        };
        if !SpanningTreeScheme.verify_at(instance, &sp_view) {
            return false;
        }
        if view
            .neighbors
            .iter()
            .any(|l| l.height_bound != view.own.height_bound)
        {
            return false;
        }
        view.own.height_bound >= view.own.sp.dist
    }

    fn label_bits(&self, instance: &Instance, node: NodeId, label: &DiameterLabel) -> u64 {
        SpanningTreeScheme.label_bits(instance, node, &label.sp)
            + u64::from(bits_for(instance.node_count() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::verify_all;
    use smst_graph::generators::{path_graph, random_connected_graph};
    use smst_graph::mst::kruskal;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn exact_bound_accepted() {
        let inst = mst_instance(20, 45, 1);
        let labels = DiameterBoundScheme::exact().mark(&inst).unwrap();
        assert!(verify_all(&DiameterBoundScheme::exact(), &inst, &labels).accepted());
    }

    #[test]
    fn slack_bound_accepted() {
        let inst = mst_instance(20, 45, 2);
        let scheme = DiameterBoundScheme::with_slack(7);
        let labels = scheme.mark(&inst).unwrap();
        assert!(verify_all(&scheme, &inst, &labels).accepted());
    }

    #[test]
    fn too_small_bound_rejected() {
        // a path rooted at the end has height n-1; claiming a small bound fails
        let g = path_graph(10, 3);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g, &tree);
        let scheme = DiameterBoundScheme::exact();
        let mut labels = scheme.mark(&inst).unwrap();
        for l in &mut labels {
            l.height_bound = 2; // consistent but too small
        }
        assert!(!verify_all(&scheme, &inst, &labels).accepted());
    }

    #[test]
    fn inconsistent_bounds_rejected() {
        let inst = mst_instance(14, 30, 4);
        let scheme = DiameterBoundScheme::exact();
        let mut labels = scheme.mark(&inst).unwrap();
        labels[3].height_bound += 1;
        assert!(!verify_all(&scheme, &inst, &labels).accepted());
    }
}
