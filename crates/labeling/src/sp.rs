//! Example SP (§2.6): a 1-round proof labeling scheme for "the components
//! induce a rooted spanning tree".
//!
//! The label of `v` stores the identity of the claimed root, the (hop)
//! distance of `v` from the root in the tree, `v`'s own identity and the
//! identity of `v`'s parent. The verifier checks that all neighbours agree on
//! the root, that distances decrease by exactly one along component pointers,
//! that the unique distance-0 node is the claimed root, and (per the remark in
//! §2.6) that the claimed parent identity matches the identity of the node the
//! component actually points at — which lets every node identify its tree
//! parent and children among its graph neighbours in one round.
//!
//! The scheme uses `O(log n)` bits per node and its marker runs in `O(n)`
//! time.

use crate::scheme::{Instance, LabelView, MarkError, OneRoundScheme};
use smst_graph::weight::bits_for;
use smst_graph::NodeId;

/// The Example SP label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpLabel {
    /// Claimed identity of the root of the spanning tree.
    pub root_id: u64,
    /// Claimed hop distance from the root.
    pub dist: u64,
    /// The node's own identity (the remark of §2.6).
    pub own_id: u64,
    /// The identity of the claimed parent (`None` for the root).
    pub parent_id: Option<u64>,
}

impl SpLabel {
    /// Number of bits of a faithful encoding of the label.
    pub fn bits(&self, max_id: u64, n: usize) -> u64 {
        // root id + own id + parent id + distance + two presence flags
        u64::from(bits_for(max_id)) * 3 + u64::from(bits_for(n as u64)) + 2
    }
}

/// The Example SP scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanningTreeScheme;

impl SpanningTreeScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        SpanningTreeScheme
    }

    /// Convenience: `true` if, according to the labels, the neighbour behind
    /// `port` is a child of `view.node` (it claims `view.node` as parent).
    pub fn is_child(view: &LabelView<'_, SpLabel>, port: smst_graph::Port) -> bool {
        view.at(port).parent_id == Some(view.own.own_id)
    }
}

impl OneRoundScheme for SpanningTreeScheme {
    type Label = SpLabel;

    fn name(&self) -> &str {
        "sp-spanning-tree"
    }

    fn mark(&self, instance: &Instance) -> Result<Vec<SpLabel>, MarkError> {
        let tree = instance.candidate_tree()?;
        let g = &instance.graph;
        let root_id = g.id(tree.root());
        Ok(g.nodes()
            .map(|v| SpLabel {
                root_id,
                dist: tree.depth(v) as u64,
                own_id: g.id(v),
                parent_id: tree.parent(v).map(|p| g.id(p)),
            })
            .collect())
    }

    fn verify_at(&self, instance: &Instance, view: &LabelView<'_, SpLabel>) -> bool {
        let g = &instance.graph;
        let v = view.node;
        let own = view.own;
        // the designated own-identity field must be truthful
        if own.own_id != g.id(v) {
            return false;
        }
        // all graph neighbours agree on the root identity
        if view.neighbors.iter().any(|l| l.root_id != own.root_id) {
            return false;
        }
        match instance.components.pointer(v) {
            None => {
                // a pointer-less node is the root: distance 0 and the claimed
                // root identity is its own
                own.dist == 0 && own.root_id == g.id(v) && own.parent_id.is_none()
            }
            Some(port) => {
                if port.index() >= view.degree() {
                    return false;
                }
                let parent = view.at(port);
                own.dist == parent.dist + 1 && own.parent_id == Some(parent.own_id) && own.dist > 0
            }
        }
    }

    fn label_bits(&self, instance: &Instance, _node: NodeId, label: &SpLabel) -> u64 {
        let max_id = instance
            .graph
            .nodes()
            .map(|v| instance.graph.id(v))
            .max()
            .unwrap_or(1);
        label.bits(max_id, instance.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{max_label_bits, verify_all};
    use proptest::prelude::*;
    use smst_graph::generators::{random_connected_graph, star_graph};
    use smst_graph::mst::kruskal;
    use smst_graph::{ComponentMap, Port};

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn marker_labels_are_accepted() {
        let inst = mst_instance(20, 50, 1);
        let labels = SpanningTreeScheme.mark(&inst).unwrap();
        assert!(verify_all(&SpanningTreeScheme, &inst, &labels).accepted());
    }

    #[test]
    fn label_size_is_logarithmic() {
        let inst = mst_instance(64, 150, 2);
        let labels = SpanningTreeScheme.mark(&inst).unwrap();
        let bits = max_label_bits(&SpanningTreeScheme, &inst, &labels);
        assert!(bits <= 4 * 64f64.log2() as u64 + 16, "bits = {bits}");
    }

    #[test]
    fn corrupting_distance_is_detected() {
        let inst = mst_instance(15, 40, 3);
        let mut labels = SpanningTreeScheme.mark(&inst).unwrap();
        labels[7].dist += 5;
        let outcome = verify_all(&SpanningTreeScheme, &inst, &labels);
        assert!(!outcome.accepted());
    }

    #[test]
    fn corrupting_root_id_is_detected() {
        let inst = mst_instance(15, 40, 4);
        let mut labels = SpanningTreeScheme.mark(&inst).unwrap();
        labels[3].root_id = 999;
        assert!(!verify_all(&SpanningTreeScheme, &inst, &labels).accepted());
    }

    #[test]
    fn non_spanning_components_are_detected() {
        // break the tree: point a node at a non-parent so a cycle of pointers
        // appears; whatever labels we give, some node must reject.
        let g = random_connected_graph(12, 30, 5);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let correct = Instance::from_tree(g.clone(), &tree);
        let labels = SpanningTreeScheme.mark(&correct).unwrap();
        // re-point the root at one of its children, creating a 2-cycle
        let root = tree.root();
        let child = tree.children(root)[0];
        let mut components = ComponentMap::from_rooted_tree(&g, &tree);
        components
            .point_at(&g, root, child)
            .expect("child is a neighbour");
        let broken = Instance::new(g, components);
        assert!(!verify_all(&SpanningTreeScheme, &broken, &labels).accepted());
    }

    #[test]
    fn child_identification_helper() {
        let g = star_graph(4, 1);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g.clone(), &tree);
        let labels = SpanningTreeScheme.mark(&inst).unwrap();
        let view = LabelView {
            node: NodeId(0),
            own: &labels[0],
            neighbors: g
                .incident_edges(NodeId(0))
                .iter()
                .map(|&e| &labels[g.edge(e).other(NodeId(0)).index()])
                .collect(),
        };
        for p in 0..3 {
            assert!(SpanningTreeScheme::is_child(&view, Port(p)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn adversarial_distance_labels_rejected(n in 4usize..20, seed in 0u64..100, victim in 0usize..20, delta in 1u64..5) {
            let inst = mst_instance(n, 3 * n, seed);
            let mut labels = SpanningTreeScheme.mark(&inst).unwrap();
            let victim = victim % n;
            labels[victim].dist = labels[victim].dist.wrapping_add(delta);
            prop_assert!(!verify_all(&SpanningTreeScheme, &inst, &labels).accepted());
        }
    }
}
