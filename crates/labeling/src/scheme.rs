//! The proof-labeling-scheme framework (§2.4).
//!
//! A proof labeling scheme for a predicate Ψ consists of a *marker* `M` that
//! assigns a label to every node of a correct instance, and a *verifier* `V`
//! that runs at every node forever and must
//!
//! * accept everywhere when the instance satisfies Ψ and the labels are the
//!   marker's, and
//! * raise an alarm at some node (within the scheme's detection time) when the
//!   instance violates Ψ, **no matter what labels an adversary assigned**.
//!
//! This module defines the *1-round* flavour ([`OneRoundScheme`]): the
//! verifier at `v` sees only `v`'s own label, the labels of `v`'s neighbours,
//! and `v`'s local input (identity, ports, edge weights, component pointer).
//! 1-round schemes are trivially self-stabilizing. The paper's main scheme is
//! *not* 1-round; it lives in `smst-core` and uses the simulator directly.

use smst_graph::{ComponentMap, GraphError, NodeId, Port, RootedTree, WeightedGraph};
use std::fmt;

/// A distributed instance: the network graph together with the candidate
/// subgraph `H(G)` represented by per-node components (§2.1).
#[derive(Debug, Clone)]
pub struct Instance {
    /// The network.
    pub graph: WeightedGraph,
    /// The per-node component pointers describing the candidate subgraph.
    pub components: ComponentMap,
}

impl Instance {
    /// Bundles a graph and a component map.
    pub fn new(graph: WeightedGraph, components: ComponentMap) -> Self {
        Instance { graph, components }
    }

    /// Builds the instance whose candidate subgraph is the given rooted tree.
    pub fn from_tree(graph: WeightedGraph, tree: &RootedTree) -> Self {
        let components = ComponentMap::from_rooted_tree(&graph, tree);
        Instance { graph, components }
    }

    /// The rooted spanning tree described by the components, if they describe
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotASpanningTree`] when the components do not
    /// induce a spanning tree.
    pub fn candidate_tree(&self) -> Result<RootedTree, GraphError> {
        self.components.rooted_spanning_tree(&self.graph)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `true` if the candidate subgraph is an MST of the graph.
    pub fn satisfies_mst(&self) -> bool {
        match self.candidate_tree() {
            Ok(tree) => smst_graph::mst::is_mst(&self.graph, &tree.edges()),
            Err(_) => false,
        }
    }
}

/// Why a marker refused to label an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkError {
    /// The instance does not satisfy the scheme's predicate, so there is
    /// nothing to prove.
    PredicateViolated(String),
    /// The instance is malformed (e.g. the components do not induce a
    /// spanning tree when the predicate assumes one).
    MalformedInstance(String),
}

impl fmt::Display for MarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkError::PredicateViolated(msg) => write!(f, "predicate violated: {msg}"),
            MarkError::MalformedInstance(msg) => write!(f, "malformed instance: {msg}"),
        }
    }
}

impl std::error::Error for MarkError {}

impl From<GraphError> for MarkError {
    fn from(err: GraphError) -> Self {
        MarkError::MalformedInstance(err.to_string())
    }
}

/// What the verifier at node `v` can see in one round: its own label and the
/// labels of its neighbours, indexed by port.
#[derive(Debug)]
pub struct LabelView<'a, L> {
    /// The node being verified.
    pub node: NodeId,
    /// The node's own label.
    pub own: &'a L,
    /// Neighbour labels, `neighbor[p]` behind port `p`.
    pub neighbors: Vec<&'a L>,
}

impl<'a, L> LabelView<'a, L> {
    /// The label behind a port.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn at(&self, port: Port) -> &'a L {
        self.neighbors[port.index()]
    }

    /// Number of neighbours.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// A 1-round proof labeling scheme.
pub trait OneRoundScheme {
    /// The per-node label type.
    type Label: Clone + fmt::Debug;

    /// A short, stable name used in reports.
    fn name(&self) -> &str;

    /// The (centralized) marker: labels a *correct* instance.
    ///
    /// # Errors
    ///
    /// Returns a [`MarkError`] if the instance does not satisfy the scheme's
    /// predicate.
    fn mark(&self, instance: &Instance) -> Result<Vec<Self::Label>, MarkError>;

    /// The 1-round verifier at a node. Returns `true` to accept, `false` to
    /// raise an alarm.
    fn verify_at(&self, instance: &Instance, view: &LabelView<'_, Self::Label>) -> bool;

    /// The number of bits a faithful encoding of the label uses.
    fn label_bits(&self, instance: &Instance, node: NodeId, label: &Self::Label) -> u64;
}

/// The outcome of running a 1-round verifier at every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationOutcome {
    /// Nodes that raised an alarm.
    pub rejecting: Vec<NodeId>,
}

impl VerificationOutcome {
    /// `true` if every node accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }
}

/// Runs the verifier of a 1-round scheme at every node of the instance.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of nodes.
pub fn verify_all<S: OneRoundScheme>(
    scheme: &S,
    instance: &Instance,
    labels: &[S::Label],
) -> VerificationOutcome {
    assert_eq!(
        labels.len(),
        instance.node_count(),
        "one label per node is required"
    );
    let g = &instance.graph;
    let rejecting = g
        .nodes()
        .filter(|&v| {
            let view = LabelView {
                node: v,
                own: &labels[v.index()],
                neighbors: g
                    .incident_edges(v)
                    .iter()
                    .map(|&e| &labels[g.edge(e).other(v).index()])
                    .collect(),
            };
            !scheme.verify_at(instance, &view)
        })
        .collect();
    VerificationOutcome { rejecting }
}

/// The maximum label size (in bits) over all nodes — the scheme's memory-size
/// measure for the marker part.
pub fn max_label_bits<S: OneRoundScheme>(
    scheme: &S,
    instance: &Instance,
    labels: &[S::Label],
) -> u64 {
    instance
        .graph
        .nodes()
        .map(|v| scheme.label_bits(instance, v, &labels[v.index()]))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    /// A toy scheme: the label is the node's degree; the verifier checks it.
    struct DegreeScheme;
    impl OneRoundScheme for DegreeScheme {
        type Label = usize;
        fn name(&self) -> &str {
            "degree"
        }
        fn mark(&self, instance: &Instance) -> Result<Vec<usize>, MarkError> {
            Ok(instance
                .graph
                .nodes()
                .map(|v| instance.graph.degree(v))
                .collect())
        }
        fn verify_at(&self, instance: &Instance, view: &LabelView<'_, usize>) -> bool {
            *view.own == instance.graph.degree(view.node)
        }
        fn label_bits(&self, _i: &Instance, _v: NodeId, _l: &usize) -> u64 {
            8
        }
    }

    #[test]
    fn instance_mst_check() {
        let inst = mst_instance(12, 30, 1);
        assert!(inst.satisfies_mst());
        assert!(inst.candidate_tree().is_ok());
        assert_eq!(inst.node_count(), 12);
    }

    #[test]
    fn broken_components_fail_mst_check() {
        let mut inst = mst_instance(8, 20, 2);
        inst.components.set_pointer(NodeId(3), None);
        // two pointer-less nodes (the root and node 3) -> not a spanning tree
        assert!(!inst.satisfies_mst());
    }

    #[test]
    fn verify_all_accepts_marker_labels() {
        let inst = mst_instance(10, 20, 3);
        let labels = DegreeScheme.mark(&inst).unwrap();
        let outcome = verify_all(&DegreeScheme, &inst, &labels);
        assert!(outcome.accepted());
        assert!(max_label_bits(&DegreeScheme, &inst, &labels) == 8);
    }

    #[test]
    fn verify_all_localizes_corruption() {
        let inst = mst_instance(10, 20, 4);
        let mut labels = DegreeScheme.mark(&inst).unwrap();
        labels[5] = 999;
        let outcome = verify_all(&DegreeScheme, &inst, &labels);
        assert_eq!(outcome.rejecting, vec![NodeId(5)]);
        assert!(!outcome.accepted());
    }

    #[test]
    fn mark_error_display() {
        let e = MarkError::PredicateViolated("not an MST".into());
        assert!(e.to_string().contains("not an MST"));
        let e2: MarkError = GraphError::Disconnected.into();
        assert!(matches!(e2, MarkError::MalformedInstance(_)));
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn verify_all_checks_label_count() {
        let inst = mst_instance(5, 8, 5);
        let _ = verify_all(&DegreeScheme, &inst, &[1, 2]);
    }
}
