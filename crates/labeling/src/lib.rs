//! # smst-labeling
//!
//! The proof-labeling-scheme (PLS) framework of the paper (§2.4), the warm-up
//! 1-round schemes of §2.6, and the two baselines the evaluation compares
//! against:
//!
//! * [`scheme`] — the marker/verifier interface, instances (`graph` +
//!   distributed candidate `components`), label views and whole-network
//!   verification helpers;
//! * [`sp`] — Example SP: a 1-round scheme proving that `H(G)` is a rooted
//!   spanning tree (plus the parent/child identification remark);
//! * [`size`] — Example NumK: a 1-round scheme proving every node knows `n`;
//! * [`ediam`] — Example EDIAM: a 1-round scheme proving every node knows an
//!   upper bound on the height of the tree;
//! * [`kkp`] — the Korman–Kutten style 1-round MST scheme using
//!   `O(log² n)` bits per node (the memory-heavy baseline the paper improves
//!   on);
//! * [`recompute`] — verification from scratch (no labels at all): recompute
//!   the MST and compare, the time-heavy baseline (\[53\], and the behaviour of
//!   the `Ω(n·|E|)`-time self-stabilizing algorithms in Table 1);
//! * [`adapter`] — wraps any 1-round scheme as a [`smst_sim::NodeProgram`] so
//!   it can be run, fault-injected and measured by the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod ediam;
pub mod kkp;
pub mod recompute;
pub mod scheme;
pub mod size;
pub mod sp;

pub use adapter::OneRoundVerifierProgram;
pub use scheme::{Instance, LabelView, MarkError, OneRoundScheme, VerificationOutcome};
pub use sp::{SpLabel, SpanningTreeScheme};
