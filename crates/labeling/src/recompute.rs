//! Verification from scratch: the label-free baseline.
//!
//! Without labels, verifying that `H(G)` is an MST requires recomputing (a
//! certificate of) the MST, which costs `Ω(√n + D)` time and `Ω(|E|)`
//! messages (Kor–Korman–Peleg, \[53\] in the paper), and in the self-stabilizing
//! constructions of Table 1 that rely on repeated recomputation the time
//! degenerates to `Ω(n·|E|)`. This module models that baseline: the *checker*
//! recomputes the MST centrally and compares; the *cost model* charges the
//! number of rounds a distributed recomputation would take, which is what the
//! Table 1 harness reports.

use crate::scheme::Instance;
use smst_graph::mst::kruskal;
use smst_graph::weight::bits_for;

/// The cost model charged to one label-free verification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecomputeCost {
    /// Rounds charged to one full verification-from-scratch pass.
    pub rounds: u64,
    /// Memory bits per node used by the recomputation (GHS-style fragment
    /// state: `O(log n)`).
    pub bits_per_node: u64,
}

/// The label-free (recompute-and-compare) MST checker.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecomputeChecker;

impl RecomputeChecker {
    /// Creates the checker.
    pub fn new() -> Self {
        RecomputeChecker
    }

    /// Whether the instance's candidate subgraph is an MST (the functional
    /// outcome of the recomputation).
    pub fn check(&self, instance: &Instance) -> bool {
        match instance.candidate_tree() {
            Ok(tree) => {
                let mst = kruskal(&instance.graph);
                let mut a = tree.edges();
                a.sort_unstable();
                a == mst.edges()
            }
            Err(_) => false,
        }
    }

    /// The rounds and memory charged to one distributed verification pass,
    /// following the cost of a GHS-style recomputation (`O(n)` rounds in the
    /// paper's model, since messages are free) plus the comparison wave.
    pub fn cost(&self, instance: &Instance) -> RecomputeCost {
        let n = instance.node_count() as u64;
        let d = instance.graph.diameter().unwrap_or(instance.node_count()) as u64;
        RecomputeCost {
            rounds: n + 2 * d,
            bits_per_node: 4 * u64::from(bits_for(n.max(2))),
        }
    }

    /// The rounds charged to one verification pass in the *message-conscious*
    /// low-memory model of Higham–Liang (\[48\]): each of the `n` beacon rounds
    /// re-examines every edge, giving the `Ω(n·|E|)`-flavoured bound Table 1
    /// quotes. Used by the Table 1 harness as the time of the
    /// recompute-checker self-stabilizing baseline.
    pub fn low_memory_cost(&self, instance: &Instance) -> RecomputeCost {
        let n = instance.node_count() as u64;
        let m = instance.graph.edge_count() as u64;
        RecomputeCost {
            rounds: n.saturating_mul(m).max(1),
            bits_per_node: 3 * u64::from(bits_for(n.max(2))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;
    use smst_graph::{NodeId, RootedTree};

    #[test]
    fn accepts_mst_instance() {
        let g = random_connected_graph(20, 60, 1);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g, &tree);
        assert!(RecomputeChecker.check(&inst));
    }

    #[test]
    fn rejects_non_mst_instance() {
        let g = random_connected_graph(10, 30, 2);
        let mst = kruskal(&g);
        // swap one tree edge for any non-tree edge that keeps it spanning
        let non_tree: Vec<_> = g
            .edge_entries()
            .map(|(e, _)| e)
            .filter(|e| !mst.contains(*e))
            .collect();
        let mut found_bad = false;
        for &extra in &non_tree {
            for drop_idx in 0..mst.edges().len() {
                let mut edges = mst.edges().to_vec();
                edges[drop_idx] = extra;
                if let Ok(bad_tree) = RootedTree::from_edges(&g, &edges, NodeId(0)) {
                    let inst = Instance::from_tree(g.clone(), &bad_tree);
                    if !inst.satisfies_mst() {
                        assert!(!RecomputeChecker.check(&inst));
                        found_bad = true;
                    }
                }
            }
        }
        assert!(found_bad, "expected at least one non-MST swap to exist");
    }

    #[test]
    fn rejects_broken_components() {
        let g = random_connected_graph(8, 20, 3);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let mut inst = Instance::from_tree(g, &tree);
        inst.components.set_pointer(NodeId(2), None);
        assert!(!RecomputeChecker.check(&inst));
    }

    #[test]
    fn cost_models_scale_as_expected() {
        let small = {
            let g = random_connected_graph(16, 32, 4);
            let t = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
            Instance::from_tree(g, &t)
        };
        let large = {
            let g = random_connected_graph(128, 256, 4);
            let t = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
            Instance::from_tree(g, &t)
        };
        let c_small = RecomputeChecker.cost(&small);
        let c_large = RecomputeChecker.cost(&large);
        assert!(c_large.rounds > c_small.rounds);
        assert!(c_large.bits_per_node >= c_small.bits_per_node);

        let lm_small = RecomputeChecker.low_memory_cost(&small);
        let lm_large = RecomputeChecker.low_memory_cost(&large);
        // the n·|E| cost grows much faster than the n + D cost
        assert!(lm_large.rounds / lm_small.rounds > c_large.rounds / c_small.rounds);
    }
}
