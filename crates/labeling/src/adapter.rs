//! Adapter running a 1-round proof labeling scheme inside the simulator.
//!
//! A 1-round scheme's verifier is memoryless: every activation it re-derives
//! its verdict from its own label and its neighbours' labels. Wrapping it as a
//! [`NodeProgram`] lets the same fault-injection and measurement machinery be
//! used for the 1-round baselines and for the paper's multi-round scheme, so
//! that Table 1 and the detection figures compare like with like.

use crate::scheme::{Instance, LabelView, OneRoundScheme};
use smst_sim::{Network, NodeContext, NodeProgram, Verdict};

/// The register of a node running a wrapped 1-round verifier: its (possibly
/// corrupted) label plus its current verdict.
#[derive(Debug, Clone)]
pub struct OneRoundState<L> {
    /// The node's label (the part a transient fault may corrupt).
    pub label: L,
    /// The verdict computed at the last activation.
    pub verdict: Verdict,
}

/// A [`NodeProgram`] that repeatedly runs the verifier of a 1-round scheme.
#[derive(Debug)]
pub struct OneRoundVerifierProgram<S: OneRoundScheme> {
    scheme: S,
    instance: Instance,
    labels: Vec<S::Label>,
}

impl<S: OneRoundScheme> OneRoundVerifierProgram<S> {
    /// Wraps a scheme together with the instance and the labels assigned by
    /// its marker (or by an adversary).
    pub fn new(scheme: S, instance: Instance, labels: Vec<S::Label>) -> Self {
        OneRoundVerifierProgram {
            scheme,
            instance,
            labels,
        }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Builds the network whose registers hold the wrapped labels.
    pub fn network(&self) -> Network<Self>
    where
        S::Label: Clone,
    {
        Network::new(self, self.instance.graph.clone())
    }
}

impl<S: OneRoundScheme> NodeProgram for OneRoundVerifierProgram<S> {
    type State = OneRoundState<S::Label>;

    fn init(&self, ctx: &NodeContext) -> Self::State {
        OneRoundState {
            label: self.labels[ctx.node.index()].clone(),
            verdict: Verdict::Working,
        }
    }

    fn step(
        &self,
        ctx: &NodeContext,
        own: &Self::State,
        neighbors: &[&Self::State],
    ) -> Self::State {
        let view = LabelView {
            node: ctx.node,
            own: &own.label,
            neighbors: neighbors.iter().map(|s| &s.label).collect(),
        };
        let ok = self.scheme.verify_at(&self.instance, &view);
        OneRoundState {
            label: own.label.clone(),
            verdict: if ok { Verdict::Accept } else { Verdict::Reject },
        }
    }

    fn verdict(&self, _ctx: &NodeContext, state: &Self::State) -> Verdict {
        state.verdict
    }

    fn state_bits(&self, ctx: &NodeContext, state: &Self::State) -> u64 {
        // label bits plus the two-bit verdict
        self.scheme
            .label_bits(&self.instance, ctx.node, &state.label)
            + 2
    }

    fn name(&self) -> &str {
        self.scheme.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp::SpanningTreeScheme;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;
    use smst_graph::NodeId;
    use smst_sim::{FaultPlan, SyncRunner};

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn wrapped_sp_scheme_accepts_after_one_round() {
        let inst = mst_instance(15, 40, 1);
        let labels = SpanningTreeScheme.mark(&inst).unwrap();
        let program = OneRoundVerifierProgram::new(SpanningTreeScheme, inst, labels);
        let net = program.network();
        let mut runner = SyncRunner::new(&program, net);
        let t = runner.run_until_all_accept(5).unwrap();
        assert_eq!(t, 1, "a 1-round scheme accepts after exactly one round");
    }

    #[test]
    fn corrupted_label_detected_in_one_round_at_distance_one() {
        let inst = mst_instance(15, 40, 2);
        let graph = inst.graph.clone();
        let labels = SpanningTreeScheme.mark(&inst).unwrap();
        let program = OneRoundVerifierProgram::new(SpanningTreeScheme, inst, labels);
        let mut net = program.network();
        // corrupt one node's label register
        let plan = FaultPlan::single(NodeId(6));
        plan.apply(&mut net, |_v, s| s.label.dist += 3);
        let mut runner = SyncRunner::new(&program, net);
        let t = runner.run_until_alarm(5).unwrap();
        assert_eq!(t, 1);
        let alarms = runner.network().alarming_nodes(&program);
        // the alarm is raised at the fault or at one of its neighbours
        let dists = smst_sim::metrics::detection_distances(&graph, &[NodeId(6)], &alarms);
        assert!(dists[0] <= 1);
    }

    #[test]
    fn memory_accounting_reports_label_bits() {
        let inst = mst_instance(32, 80, 3);
        let labels = SpanningTreeScheme.mark(&inst).unwrap();
        let program = OneRoundVerifierProgram::new(SpanningTreeScheme, inst, labels);
        let net = program.network();
        let bits = net.memory_bits(&program);
        assert!(bits.iter().all(|&b| b > 0 && b < 200));
    }
}
