//! Example NumK (§2.6): a 1-round scheme proving that every node "knows" the
//! number of nodes `n`.
//!
//! The label extends the Example SP label with the claimed network size and
//! the number of nodes in the subtree hanging from the node. The verifier
//! checks the SP conditions, that all neighbours agree on the claimed size,
//! that every node's subtree count equals one plus the sum of its children's
//! counts, and that the root's count equals the claimed size.

use crate::scheme::{Instance, LabelView, MarkError, OneRoundScheme};
use crate::sp::{SpLabel, SpanningTreeScheme};
use smst_graph::weight::bits_for;
use smst_graph::NodeId;

/// The Example NumK label: SP fields plus the size claim and subtree count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeLabel {
    /// The underlying spanning-tree proof.
    pub sp: SpLabel,
    /// The claimed number of nodes in the network.
    pub n_claim: u64,
    /// The number of nodes in the subtree of the candidate tree rooted at
    /// this node.
    pub subtree_count: u64,
}

/// The Example NumK scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeScheme;

impl SizeScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        SizeScheme
    }
}

impl OneRoundScheme for SizeScheme {
    type Label = SizeLabel;

    fn name(&self) -> &str {
        "numk-size"
    }

    fn mark(&self, instance: &Instance) -> Result<Vec<SizeLabel>, MarkError> {
        let sp_labels = SpanningTreeScheme.mark(instance)?;
        let tree = instance.candidate_tree()?;
        let n = instance.node_count() as u64;
        Ok(instance
            .graph
            .nodes()
            .map(|v| SizeLabel {
                sp: sp_labels[v.index()].clone(),
                n_claim: n,
                subtree_count: tree.subtree_size(v) as u64,
            })
            .collect())
    }

    fn verify_at(&self, instance: &Instance, view: &LabelView<'_, SizeLabel>) -> bool {
        // SP conditions on the embedded labels
        let sp_view = LabelView {
            node: view.node,
            own: &view.own.sp,
            neighbors: view.neighbors.iter().map(|l| &l.sp).collect(),
        };
        if !SpanningTreeScheme.verify_at(instance, &sp_view) {
            return false;
        }
        // all neighbours agree on the claimed size
        if view.neighbors.iter().any(|l| l.n_claim != view.own.n_claim) {
            return false;
        }
        // subtree count = 1 + sum over children (neighbours claiming this
        // node as their parent)
        let children_sum: u64 = view
            .neighbors
            .iter()
            .filter(|l| l.sp.parent_id == Some(view.own.sp.own_id))
            .map(|l| l.subtree_count)
            .sum();
        if view.own.subtree_count != 1 + children_sum {
            return false;
        }
        // the root's count must equal the claimed size
        if view.own.sp.parent_id.is_none() && view.own.subtree_count != view.own.n_claim {
            return false;
        }
        true
    }

    fn label_bits(&self, instance: &Instance, node: NodeId, label: &SizeLabel) -> u64 {
        SpanningTreeScheme.label_bits(instance, node, &label.sp)
            + 2 * u64::from(bits_for(instance.node_count() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::verify_all;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn marker_labels_are_accepted() {
        let inst = mst_instance(25, 60, 1);
        let labels = SizeScheme.mark(&inst).unwrap();
        assert!(verify_all(&SizeScheme, &inst, &labels).accepted());
    }

    #[test]
    fn wrong_size_claim_is_detected() {
        let inst = mst_instance(16, 40, 2);
        let mut labels = SizeScheme.mark(&inst).unwrap();
        for l in &mut labels {
            l.n_claim += 1; // globally consistent lie
        }
        // the root's subtree count no longer matches the claim
        assert!(!verify_all(&SizeScheme, &inst, &labels).accepted());
    }

    #[test]
    fn inconsistent_size_claims_detected() {
        let inst = mst_instance(16, 40, 3);
        let mut labels = SizeScheme.mark(&inst).unwrap();
        labels[5].n_claim = 999;
        assert!(!verify_all(&SizeScheme, &inst, &labels).accepted());
    }

    #[test]
    fn corrupt_subtree_count_detected() {
        let inst = mst_instance(16, 40, 4);
        let mut labels = SizeScheme.mark(&inst).unwrap();
        labels[8].subtree_count += 2;
        assert!(!verify_all(&SizeScheme, &inst, &labels).accepted());
    }

    #[test]
    fn label_bits_are_logarithmic() {
        let inst = mst_instance(128, 300, 5);
        let labels = SizeScheme.mark(&inst).unwrap();
        let bits = crate::scheme::max_label_bits(&SizeScheme, &inst, &labels);
        assert!(bits <= 6 * 8 + 20, "bits = {bits}");
    }
}
