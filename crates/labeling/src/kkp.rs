//! The Korman–Kutten style 1-round MST proof labeling scheme with
//! `O(log² n)` bits per node ([54, 55] in the paper).
//!
//! This is the memory-heavy baseline the paper improves on: the verifier runs
//! in a single round (and is therefore trivially self-stabilizing, with
//! detection distance `f`), but every node stores one `O(log n)`-bit *piece of
//! information* `I(F) = ID(F) ∘ ω(F)` for **each** of the `O(log n)` fragments
//! containing it, for a total of `Θ(log² n)` bits.
//!
//! The label of a node `v` contains, besides the Example SP fields:
//! for every level `j` of a GHS/Borůvka-style fragment hierarchy,
//! the identity of `v`'s level-`j` fragment (the identity of its root), the
//! weight of that fragment's minimum outgoing edge, whether `v` is the
//! endpoint of that edge (and through which tree edge), and the number of
//! such endpoints in `v`'s subtree (used to certify uniqueness, as in the
//! Or-EndP aggregation of §5.3). The verifier checks the Well-Forming
//! conditions that are expressible with fragment-identity comparisons plus
//! the minimality conditions C1/C2 of §8.

use crate::scheme::{Instance, LabelView, MarkError, OneRoundScheme};
use crate::sp::{SpLabel, SpanningTreeScheme};
use smst_graph::weight::{bits_for, CompositeWeight};
use smst_graph::{EdgeId, NodeId, RootedTree, WeightedGraph};
use std::collections::HashSet;

/// Whether a node is the endpoint of its level-`j` fragment's candidate edge,
/// and if so through which tree edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointMark {
    /// The node is not an endpoint of the candidate edge at this level.
    NotEndpoint,
    /// The candidate edge is the edge to the node's tree parent.
    Up,
    /// The candidate edge is the edge to the tree child with this identity.
    Down(u64),
}

/// The per-level piece of information stored in a [`KkpLabel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KkpLevel {
    /// Identity of the root of the node's fragment at this level.
    pub fragment_root_id: u64,
    /// The (composite) weight of the fragment's minimum outgoing edge
    /// (`None` only at the top level, where the fragment is the whole tree).
    pub min_out: Option<CompositeWeight>,
    /// Whether this node is the endpoint of the fragment's candidate edge.
    pub endpoint: EndpointMark,
    /// Number of candidate-edge endpoints of this level's fragment inside
    /// the node's subtree (the Or-EndP style aggregation certifying
    /// uniqueness).
    pub subtree_endpoint_count: u64,
}

/// The full `O(log² n)`-bit label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KkpLabel {
    /// The embedded Example SP proof.
    pub sp: SpLabel,
    /// One entry per hierarchy level `0..=ℓ`.
    pub levels: Vec<KkpLevel>,
}

/// The Korman–Kutten style 1-round MST scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct KkpMstScheme;

impl KkpMstScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        KkpMstScheme
    }
}

/// A Borůvka-style fragment history: `partition[j][v]` is the fragment
/// representative (union–find root index) of node `v` at level `j`, and
/// `min_out[j]` maps each level-`j` representative to the fragment's minimum
/// outgoing edge.
struct FragmentHistory {
    partition: Vec<Vec<usize>>,
    min_out: Vec<Vec<Option<EdgeId>>>,
}

/// Runs Borůvka phases under the composite weights (with the candidate-tree
/// indicator), recording the per-level partitions and minimum outgoing edges.
fn fragment_history(g: &WeightedGraph, tree: &RootedTree) -> FragmentHistory {
    let n = g.node_count();
    let tree_edges: HashSet<EdgeId> = tree.edges().into_iter().collect();
    let weight = |e: EdgeId| g.composite_weight(e, tree_edges.contains(&e));

    let mut comp: Vec<usize> = (0..n).collect();
    let mut partition = vec![comp.clone()];
    let mut min_out_levels: Vec<Vec<Option<EdgeId>>> = Vec::new();

    loop {
        // minimum outgoing edge per component
        let mut best: Vec<Option<EdgeId>> = vec![None; n];
        for (eid, edge) in g.edge_entries() {
            let (cu, cv) = (comp[edge.u.index()], comp[edge.v.index()]);
            if cu == cv {
                continue;
            }
            for c in [cu, cv] {
                if best[c].is_none_or(|b| weight(eid) < weight(b)) {
                    best[c] = Some(eid);
                }
            }
        }
        min_out_levels.push(best.clone());
        if best.iter().all(Option::is_none) {
            break;
        }
        // merge every component along its minimum outgoing edge
        let mut new_comp = comp.clone();
        // iterate until stable: union the two components of each selected edge
        let mut changed = true;
        while changed {
            changed = false;
            for sel in best.iter().flatten() {
                let edge = g.edge(*sel);
                let (a, b) = (new_comp[edge.u.index()], new_comp[edge.v.index()]);
                if a != b {
                    let keep = a.min(b);
                    let drop = a.max(b);
                    for c in new_comp.iter_mut() {
                        if *c == drop {
                            *c = keep;
                        }
                    }
                    changed = true;
                }
            }
        }
        comp = new_comp;
        partition.push(comp.clone());
    }
    // the last min_out level is all-None (top); keep partitions aligned:
    // partition has ℓ+1 entries, min_out has ℓ+1 entries (last all None).
    FragmentHistory {
        partition,
        min_out: min_out_levels,
    }
}

impl OneRoundScheme for KkpMstScheme {
    type Label = KkpLabel;

    fn name(&self) -> &str {
        "kkp-1round-mst"
    }

    fn mark(&self, instance: &Instance) -> Result<Vec<KkpLabel>, MarkError> {
        if !instance.satisfies_mst() {
            return Err(MarkError::PredicateViolated(
                "candidate subgraph is not an MST".into(),
            ));
        }
        let g = &instance.graph;
        let tree = instance.candidate_tree()?;
        let sp_labels = SpanningTreeScheme.mark(instance)?;
        let history = fragment_history(g, &tree);
        let n = g.node_count();
        let levels = history.partition.len();

        // fragment root (minimum tree depth node) per level per representative
        let mut frag_root_id: Vec<Vec<u64>> = vec![vec![0; n]; levels];
        for (j, part) in history.partition.iter().enumerate() {
            // representative -> root node
            let mut best: Vec<Option<NodeId>> = vec![None; n];
            for v in g.nodes() {
                let rep = part[v.index()];
                let better = match best[rep] {
                    None => true,
                    Some(cur) => tree.depth(v) < tree.depth(cur),
                };
                if better {
                    best[rep] = Some(v);
                }
            }
            for v in g.nodes() {
                let rep = part[v.index()];
                frag_root_id[j][v.index()] = g.id(best[rep].expect("every fragment has a root"));
            }
        }

        // endpoint marks per level per node
        let mut endpoint: Vec<Vec<EndpointMark>> = vec![vec![EndpointMark::NotEndpoint; n]; levels];
        let mut min_out_w: Vec<Vec<Option<CompositeWeight>>> = vec![vec![None; n]; levels];
        let tree_edges: HashSet<EdgeId> = tree.edges().into_iter().collect();
        for (j, part) in history.partition.iter().enumerate() {
            for v in g.nodes() {
                let rep = part[v.index()];
                if let Some(e) = history.min_out[j][rep] {
                    min_out_w[j][v.index()] = Some(g.composite_weight(e, tree_edges.contains(&e)));
                    let edge = g.edge(e);
                    // the endpoint inside the fragment
                    let inside = if part[edge.u.index()] == rep {
                        edge.u
                    } else {
                        edge.v
                    };
                    if inside == v {
                        let other = edge.other(v);
                        endpoint[j][v.index()] = if tree.parent(v) == Some(other) {
                            EndpointMark::Up
                        } else {
                            EndpointMark::Down(g.id(other))
                        };
                    }
                }
            }
        }

        // subtree endpoint counts per level (within the same fragment)
        let mut counts: Vec<Vec<u64>> = vec![vec![0; n]; levels];
        let order = tree.dfs_preorder();
        for j in 0..levels {
            for &v in order.iter().rev() {
                let mut c = u64::from(endpoint[j][v.index()] != EndpointMark::NotEndpoint);
                for &child in tree.children(v) {
                    if history.partition[j][child.index()] == history.partition[j][v.index()] {
                        c += counts[j][child.index()];
                    }
                }
                counts[j][v.index()] = c;
            }
        }

        Ok(g.nodes()
            .map(|v| KkpLabel {
                sp: sp_labels[v.index()].clone(),
                levels: (0..levels)
                    .map(|j| KkpLevel {
                        fragment_root_id: frag_root_id[j][v.index()],
                        min_out: min_out_w[j][v.index()],
                        endpoint: endpoint[j][v.index()],
                        subtree_endpoint_count: counts[j][v.index()],
                    })
                    .collect(),
            })
            .collect())
    }

    fn verify_at(&self, instance: &Instance, view: &LabelView<'_, KkpLabel>) -> bool {
        let g = &instance.graph;
        let v = view.node;
        let own = view.own;

        // 1. the embedded SP proof
        let sp_view = LabelView {
            node: v,
            own: &own.sp,
            neighbors: view.neighbors.iter().map(|l| &l.sp).collect(),
        };
        if !SpanningTreeScheme.verify_at(instance, &sp_view) {
            return false;
        }

        let levels = own.levels.len();
        if levels == 0 || levels > (instance.node_count().max(2) as f64).log2().ceil() as usize + 1
        {
            return false;
        }
        // 2. all neighbours agree on the number of levels
        if view.neighbors.iter().any(|l| l.levels.len() != levels) {
            return false;
        }
        let top = levels - 1;

        // parent label, located through the component pointer (SP already
        // verified it is consistent)
        let parent_port = instance.components.pointer(v);
        let parent_label = parent_port.and_then(|p| {
            if p.index() < view.degree() {
                Some(view.at(p))
            } else {
                None
            }
        });

        // 3. structural per-level checks
        if own.levels[0].fragment_root_id != g.id(v) {
            return false;
        }
        for j in 0..levels {
            let lev = &own.levels[j];
            if (j == top) != lev.min_out.is_none() {
                return false;
            }
            if j == top && lev.endpoint != EndpointMark::NotEndpoint {
                return false;
            }
            if lev.fragment_root_id != g.id(v) {
                // non-root of its fragment: the tree parent must exist and be
                // in the same fragment
                match parent_label {
                    None => return false,
                    Some(p) => {
                        if p.levels[j].fragment_root_id != lev.fragment_root_id {
                            return false;
                        }
                    }
                }
            }
            // monotone containment along the parent edge
            if let Some(p) = parent_label {
                if p.levels[j].fragment_root_id == lev.fragment_root_id {
                    for lev2 in (j + 1)..levels {
                        if p.levels[lev2].fragment_root_id != own.levels[lev2].fragment_root_id {
                            return false;
                        }
                    }
                }
            }
        }

        // helper: composite weight of the edge behind port p
        let edge_weight = |port: usize, other: &KkpLabel| {
            let e = g.incident_edges(v)[port];
            let w = g.weight(e);
            let is_tree_edge = other.sp.parent_id == Some(g.id(v))
                || parent_port.map(|pp| pp.index()) == Some(port);
            CompositeWeight::new(w, is_tree_edge, g.id(v), other.sp.own_id)
        };

        // 4. C2: the claimed minimum outgoing weight is at most the weight of
        //    every outgoing edge this node can see
        for (port, other) in view.neighbors.iter().enumerate() {
            for j in 0..levels {
                if other.levels[j].fragment_root_id != own.levels[j].fragment_root_id {
                    match own.levels[j].min_out {
                        None => return false,
                        Some(mw) => {
                            if edge_weight(port, other) < mw {
                                return false;
                            }
                        }
                    }
                }
            }
        }

        // 5. C1: endpoint marks designate a real outgoing tree edge of exactly
        //    the claimed minimum weight
        for j in 0..levels {
            match own.levels[j].endpoint {
                EndpointMark::NotEndpoint => {}
                EndpointMark::Up => {
                    let (Some(pp), Some(p)) = (parent_port, parent_label) else {
                        return false;
                    };
                    if p.levels[j].fragment_root_id == own.levels[j].fragment_root_id {
                        return false;
                    }
                    match own.levels[j].min_out {
                        Some(mw) if edge_weight(pp.index(), p) == mw => {}
                        _ => return false,
                    }
                }
                EndpointMark::Down(child_id) => {
                    let child =
                        view.neighbors.iter().enumerate().find(|(_, l)| {
                            l.sp.own_id == child_id && l.sp.parent_id == Some(g.id(v))
                        });
                    let Some((port, c)) = child else {
                        return false;
                    };
                    if c.levels[j].fragment_root_id == own.levels[j].fragment_root_id {
                        return false;
                    }
                    match own.levels[j].min_out {
                        Some(mw) if edge_weight(port, c) == mw => {}
                        _ => return false,
                    }
                }
            }
        }

        // 6. uniqueness of the candidate endpoint per fragment, via the
        //    subtree aggregation
        for j in 0..levels {
            let mut expected = u64::from(own.levels[j].endpoint != EndpointMark::NotEndpoint);
            for other in view.neighbors.iter() {
                if other.sp.parent_id == Some(g.id(v))
                    && other.levels[j].fragment_root_id == own.levels[j].fragment_root_id
                {
                    expected += other.levels[j].subtree_endpoint_count;
                }
            }
            if own.levels[j].subtree_endpoint_count != expected {
                return false;
            }
            if own.levels[j].fragment_root_id == g.id(v)
                && j < top
                && own.levels[j].subtree_endpoint_count != 1
            {
                return false;
            }
        }

        // 7. merge witness: the tree edge to the parent must be the candidate
        //    of the level just below the first level where the two endpoints
        //    share a fragment
        if let Some(p) = parent_label {
            let j_star = (0..levels)
                .find(|&j| p.levels[j].fragment_root_id == own.levels[j].fragment_root_id);
            match j_star {
                None | Some(0) => return false,
                Some(j_star) => {
                    let below = j_star - 1;
                    let own_claims = own.levels[below].endpoint == EndpointMark::Up;
                    let parent_claims = p.levels[below].endpoint == EndpointMark::Down(g.id(v));
                    if !own_claims && !parent_claims {
                        return false;
                    }
                }
            }
        }

        true
    }

    fn label_bits(&self, instance: &Instance, node: NodeId, label: &KkpLabel) -> u64 {
        let g = &instance.graph;
        let max_id = g.nodes().map(|v| g.id(v)).max().unwrap_or(1);
        let max_w = g.edges().iter().map(|e| e.weight).max().unwrap_or(1);
        let id_bits = u64::from(bits_for(max_id));
        let n_bits = u64::from(bits_for(instance.node_count() as u64));
        let w_bits = u64::from(bits_for(max_w)) + 2 * id_bits + 1; // composite weight
        let per_level = id_bits + w_bits + 2 + id_bits + n_bits;
        SpanningTreeScheme.label_bits(instance, node, &label.sp)
            + label.levels.len() as u64 * per_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{max_label_bits, verify_all};
    use proptest::prelude::*;
    use smst_graph::generators::{random_connected_graph, ring_graph};
    use smst_graph::mst::kruskal;
    use smst_graph::ComponentMap;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn marker_labels_are_accepted() {
        for seed in 0..5 {
            let inst = mst_instance(20, 50, seed);
            let labels = KkpMstScheme.mark(&inst).unwrap();
            let outcome = verify_all(&KkpMstScheme, &inst, &labels);
            assert!(
                outcome.accepted(),
                "seed {seed}: rejecting nodes {:?}",
                outcome.rejecting
            );
        }
    }

    #[test]
    fn marker_refuses_non_mst_instance() {
        // build a non-minimal spanning tree on a ring: drop the lightest edge's
        // place in the tree and use the heaviest instead
        let g = ring_graph(6, 3);
        let mut edges: Vec<EdgeId> = g.edge_entries().map(|(e, _)| e).collect();
        edges.sort_by_key(|&e| g.weight(e));
        // spanning tree missing the *lightest* edge is not an MST of a ring
        let tree_edges: Vec<EdgeId> = edges[1..].to_vec();
        let tree = RootedTree::from_edges(&g, &tree_edges, NodeId(0)).unwrap();
        let inst = Instance::new(g.clone(), ComponentMap::from_rooted_tree(&g, &tree));
        assert!(matches!(
            KkpMstScheme.mark(&inst),
            Err(MarkError::PredicateViolated(_))
        ));
    }

    #[test]
    fn non_mst_tree_is_rejected_even_with_recomputed_like_labels() {
        // non-MST candidate tree + labels produced for the *correct* MST:
        // some node must reject (the verifier never accepts a non-MST).
        let g = ring_graph(8, 5);
        let mst = kruskal(&g);
        let mst_tree = mst.rooted_at(&g, NodeId(0)).unwrap();
        let correct = Instance::from_tree(g.clone(), &mst_tree);
        let labels = KkpMstScheme.mark(&correct).unwrap();

        let mut edges: Vec<EdgeId> = g.edge_entries().map(|(e, _)| e).collect();
        edges.sort_by_key(|&e| g.weight(e));
        let bad_edges: Vec<EdgeId> = edges[1..].to_vec();
        let bad_tree = RootedTree::from_edges(&g, &bad_edges, NodeId(0)).unwrap();
        let bad = Instance::from_tree(g, &bad_tree);
        assert!(!bad.satisfies_mst());
        assert!(!verify_all(&KkpMstScheme, &bad, &labels).accepted());
    }

    #[test]
    fn corrupting_a_min_out_weight_is_detected() {
        let inst = mst_instance(16, 40, 7);
        let mut labels = KkpMstScheme.mark(&inst).unwrap();
        // claim a smaller minimum at some level of some node
        for l in labels.iter_mut() {
            for lev in l.levels.iter_mut() {
                if let Some(w) = lev.min_out.as_mut() {
                    w.weight = 0;
                }
            }
        }
        assert!(!verify_all(&KkpMstScheme, &inst, &labels).accepted());
    }

    #[test]
    fn corrupting_fragment_identity_is_detected() {
        let inst = mst_instance(16, 40, 8);
        let mut labels = KkpMstScheme.mark(&inst).unwrap();
        let levels = labels[4].levels.len();
        labels[4].levels[levels / 2].fragment_root_id = 12345;
        assert!(!verify_all(&KkpMstScheme, &inst, &labels).accepted());
    }

    #[test]
    fn label_size_is_order_log_squared() {
        // the per-node label grows like log² n: with n = 64 and Θ(log n)
        // levels, it is an order of magnitude above the SP label
        let inst = mst_instance(64, 160, 9);
        let labels = KkpMstScheme.mark(&inst).unwrap();
        let kkp_bits = max_label_bits(&KkpMstScheme, &inst, &labels);
        let sp_labels = SpanningTreeScheme.mark(&inst).unwrap();
        let sp_bits = max_label_bits(&SpanningTreeScheme, &inst, &sp_labels);
        assert!(kkp_bits > 4 * sp_bits, "kkp {kkp_bits} vs sp {sp_bits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn accepts_marker_output_on_random_graphs(n in 4usize..24, seed in 0u64..100) {
            let inst = mst_instance(n, 3 * n, seed);
            let labels = KkpMstScheme.mark(&inst).unwrap();
            prop_assert!(verify_all(&KkpMstScheme, &inst, &labels).accepted());
        }

        #[test]
        fn random_single_label_corruption_never_turns_non_mst_into_accept(
            n in 5usize..16, seed in 0u64..50
        ) {
            // swap one tree edge for a heavier non-tree edge; no labels
            // (we reuse the marker's labels for the original MST) may make
            // the verifier accept the modified instance
            let g = random_connected_graph(n, 3 * n, seed);
            let mst = kruskal(&g);
            let tree = mst.rooted_at(&g, NodeId(0)).unwrap();
            let correct = Instance::from_tree(g.clone(), &tree);
            let labels = KkpMstScheme.mark(&correct).unwrap();
            // find a non-tree edge and the heaviest tree edge on its cycle
            let non_tree: Vec<EdgeId> = g.edge_entries().map(|(e, _)| e)
                .filter(|e| !mst.contains(*e)).collect();
            prop_assume!(!non_tree.is_empty());
            let extra = non_tree[0];
            let mut new_edges: Vec<EdgeId> = mst.edges().to_vec();
            // remove a tree edge on the cycle of `extra` (the parent edge of one endpoint)
            let u = g.edge(extra).u;
            if let Some(pe) = tree.parent_edge(u) {
                let pos = new_edges.iter().position(|&e| e == pe).unwrap();
                new_edges[pos] = extra;
                if let Ok(bad_tree) = RootedTree::from_edges(&g, &new_edges, NodeId(0)) {
                    let bad = Instance::from_tree(g, &bad_tree);
                    if !bad.satisfies_mst() {
                        prop_assert!(!verify_all(&KkpMstScheme, &bad, &labels).accepted());
                    }
                }
            }
        }
    }
}
