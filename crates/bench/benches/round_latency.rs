//! Bench: per-round latency at small graph sizes — the regime the
//! persistent worker pool exists for.
//!
//! At sub-millisecond rounds, PR 1's per-round `thread::scope` spawn cost
//! dominated and the parallel runner lost to the sequential one. This bench
//! times **single rounds** (not throughput over many rounds):
//!
//! * `seq` — the sequential [`SyncRunner`] reference;
//! * `pool/threads=1` — the pool-backed [`ParallelSyncRunner`] single-shard
//!   path; the acceptance gauge is **within 5% of `seq`** (spawn overhead
//!   eliminated);
//! * `pool/threads=2|4` — the epoch-dispatch path (parked workers; on a
//!   single-core host this measures pure dispatch overhead, a few µs);
//! * `expander/...` — the same rounds on a low-diameter expander, with and
//!   without the RCM layout pass (cross-shard neighbour traffic is worst
//!   here, which is where the layout is supposed to help).
//!
//! Results land in `BENCH_round_latency.json`; `SMST_BENCH_SMOKE=1`
//! shrinks the sizes for CI.

use smst_bench::harness::{smoke_mode, BenchGroup};
use smst_engine::programs::MinIdFlood;
use smst_engine::{EngineConfig, LayoutPolicy, ParallelSyncRunner};
use smst_graph::generators::{expander_graph, random_connected_graph};
use smst_graph::WeightedGraph;
use smst_sim::{Network, SyncRunner};

fn round_case(group: &mut BenchGroup, label: &str, g: &WeightedGraph, iters: u32) {
    let program = MinIdFlood::new(0);
    let mut seq = SyncRunner::new(&program, Network::new(&program, g.clone()));
    let base = group.bench(&format!("{label}/seq"), iters, || {
        seq.step_round();
        seq.rounds()
    });
    let mut one = ParallelSyncRunner::new(&program, g.clone(), 1);
    let pool1 = group.bench(&format!("{label}/pool/threads=1"), iters, || {
        one.step_round();
        one.rounds()
    });
    println!(
        "    -> threads=1 vs sequential (acceptance: <= 1.05): {:.3}",
        pool1.median_ns as f64 / base.median_ns as f64
    );
    for threads in [2usize, 4] {
        let mut par = ParallelSyncRunner::new(&program, g.clone(), threads);
        group.bench(&format!("{label}/pool/threads={threads}"), iters, || {
            par.step_round();
            par.rounds()
        });
    }
}

fn layout_case(group: &mut BenchGroup, n: usize, degree: usize, iters: u32) {
    let g = expander_graph(n, degree, 5);
    let program = MinIdFlood::new(0);
    for (tag, layout) in [
        ("identity", LayoutPolicy::Identity),
        ("rcm", LayoutPolicy::Rcm),
    ] {
        let mut runner = ParallelSyncRunner::from_config(
            &program,
            g.clone(),
            &EngineConfig::new().threads(4).layout(layout),
        )
        .expect("a sync envelope is valid");
        group.bench(&format!("expander/{n}/threads=4/{tag}"), iters, || {
            runner.step_round();
            runner.rounds()
        });
    }
}

fn main() {
    let mut group = BenchGroup::new("round_latency");
    let (sizes, expander_n, iters) = if smoke_mode() {
        (vec![500usize], 1_000usize, 30u32)
    } else {
        (vec![1_000usize, 10_000], 100_000usize, 200u32)
    };
    for n in sizes {
        let g = random_connected_graph(n, 2 * n, 42);
        round_case(&mut group, &format!("random/{n}"), &g, iters);
    }
    layout_case(&mut group, expander_n, 8, iters.min(50));
    group.finish();
}
