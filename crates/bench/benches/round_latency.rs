//! Bench: per-round latency at small graph sizes — the regime the
//! persistent worker pool exists for.
//!
//! At sub-millisecond rounds, PR 1's per-round `thread::scope` spawn cost
//! dominated and the parallel runner lost to the sequential one. This bench
//! times **single rounds** (not throughput over many rounds):
//!
//! * `seq` — the sequential [`SyncRunner`] reference;
//! * `pool/threads=1` — the pool-backed [`ParallelSyncRunner`] single-shard
//!   path; the acceptance gauge is **within 5% of `seq`** (spawn overhead
//!   eliminated);
//! * `pool/threads=1/telemetry=disabled` — the same path driven through
//!   [`Telemetry::disabled`], which attaches **no observer at all**; the
//!   telemetry acceptance gauge is **within 5% of `pool/threads=1`**
//!   (disabled observability is free), asserted in smoke mode;
//! * `pool/threads=2|4` — the epoch-dispatch path (parked workers; on a
//!   single-core host this measures pure dispatch overhead, a few µs);
//! * `expander/...` — the same rounds on a low-diameter expander, with and
//!   without the RCM layout pass (cross-shard neighbour traffic is worst
//!   here, which is where the layout is supposed to help).
//!
//! Timing results land in `BENCH_round_latency.json`. An **observed** pass
//! additionally records every round's phase split (dispatch / compute /
//! barrier / exchange) into `BENCH_rounds.json` — the first-class
//! per-round accounting artifact — and, when `SMST_TRACE_SAMPLE=k` is
//! set, streams sampled rounds to `TRACE_round_latency.jsonl`.
//! `SMST_BENCH_SMOKE=1` shrinks the sizes for CI.

use smst_bench::harness::{bench, smoke_mode, BenchGroup};
use smst_engine::programs::MinIdFlood;
use smst_engine::{EngineConfig, LayoutPolicy, ParallelSyncRunner};
use smst_graph::generators::{expander_graph, random_connected_graph};
use smst_graph::WeightedGraph;
use smst_sim::{Network, RecordingObserver, SyncRunner, TeeObserver};
use smst_telemetry::{RoundsArtifact, Telemetry};

fn round_case(group: &mut BenchGroup, label: &str, g: &WeightedGraph, iters: u32) {
    let program = MinIdFlood::new(0);
    let mut seq = SyncRunner::new(&program, Network::new(&program, g.clone()));
    let base = group.bench(&format!("{label}/seq"), iters, || {
        seq.step_round();
        seq.rounds()
    });
    let mut one = ParallelSyncRunner::new(&program, g.clone(), 1);
    let pool1 = group.bench(&format!("{label}/pool/threads=1"), iters, || {
        one.step_round();
        one.rounds()
    });
    println!(
        "    -> threads=1 vs sequential (acceptance: <= 1.05): {:.3}",
        pool1.median_ns as f64 / base.median_ns as f64
    );
    telemetry_overhead_case(group, label, g, iters, &mut one, pool1.min_ns);
    for threads in [2usize, 4] {
        let mut par = ParallelSyncRunner::new(&program, g.clone(), threads);
        group.bench(&format!("{label}/pool/threads={threads}"), iters, || {
            par.step_round();
            par.rounds()
        });
    }
}

/// Pins the cost of `Telemetry::disabled()`: it hands out no observer, so
/// the runner takes the identical unobserved fast path — the measured
/// ratio against the plain `pool/threads=1` case is pure noise around 1.
/// In smoke mode (CI) the ratio is asserted `<= 1.05`, with re-measures
/// of both identically-coded paths to damp scheduler jitter before
/// declaring a regression.
fn telemetry_overhead_case(
    group: &mut BenchGroup,
    label: &str,
    g: &WeightedGraph,
    iters: u32,
    plain: &mut ParallelSyncRunner<'_, MinIdFlood>,
    plain_min_ns: u128,
) {
    let telemetry = Telemetry::disabled();
    assert!(
        telemetry.observer("overhead-probe").is_none(),
        "disabled telemetry must not produce an observer"
    );
    let program = MinIdFlood::new(0);
    let mut runner = ParallelSyncRunner::new(&program, g.clone(), 1);
    let disabled = group.bench(
        &format!("{label}/pool/threads=1/telemetry=disabled"),
        iters,
        || {
            runner.step_round();
            runner.rounds()
        },
    );
    let mut ratio = disabled.min_ns as f64 / plain_min_ns as f64;
    if smoke_mode() {
        for _ in 0..2 {
            if ratio <= 1.05 {
                break;
            }
            let again = bench("telemetry=disabled (re-measure)", iters, || {
                runner.step_round();
                runner.rounds()
            });
            let plain_again = bench("plain (re-measure)", iters, || {
                plain.step_round();
                plain.rounds()
            });
            ratio = ratio.min(again.min_ns as f64 / plain_again.min_ns as f64);
        }
        assert!(
            ratio <= 1.05,
            "telemetry-disabled round latency regressed: {ratio:.3}x the plain pool path"
        );
    }
    println!("    -> telemetry=disabled vs plain (acceptance: <= 1.05): {ratio:.3}");
    group.record_meta(&format!("{label}/telemetry_disabled_ratio"), ratio);
}

fn layout_case(group: &mut BenchGroup, n: usize, degree: usize, iters: u32) {
    let g = expander_graph(n, degree, 5);
    let program = MinIdFlood::new(0);
    for (tag, layout) in [
        ("identity", LayoutPolicy::Identity),
        ("rcm", LayoutPolicy::Rcm),
    ] {
        let mut runner = ParallelSyncRunner::from_config(
            &program,
            g.clone(),
            &EngineConfig::new().threads(4).layout(layout),
        )
        .expect("a sync envelope is valid");
        group.bench(&format!("expander/{n}/threads=4/{tag}"), iters, || {
            runner.step_round();
            runner.rounds()
        });
    }
}

/// The observed pass: re-runs the round workload with a
/// [`RecordingObserver`] teed with the env-gated telemetry sink, checks
/// the phase-accounting invariants, and promotes the observer stream to
/// `BENCH_rounds.json` (group `"rounds"`).
fn rounds_artifact_pass(group: &mut BenchGroup, n: usize, rounds: usize) {
    let g = random_connected_graph(n, 2 * n, 42);
    let program = MinIdFlood::new(0);
    let telemetry = Telemetry::from_env("round_latency");
    let mut artifact = RoundsArtifact::new("rounds");
    for (threads, halo) in [(1usize, false), (4, false), (4, true)] {
        let mode = if halo { "/halo" } else { "" };
        let label = format!("random/{n}/threads={threads}{mode}");
        let run = format!("seed=42;n={n};threads={threads};halo={halo}");
        let recording = RecordingObserver::new();
        let mut tee = TeeObserver::new().with(Box::new(recording.clone()));
        if let Some(observer) = telemetry.observer(&run) {
            tee.push(observer);
        }
        let mut runner = ParallelSyncRunner::new(&program, g.clone(), threads).halo_exchange(halo);
        runner.set_observer(Box::new(tee));
        let wall = std::time::Instant::now();
        runner.run_rounds(rounds);
        let wall_ns = wall.elapsed().as_nanos() as u64;
        let stats = recording.stats();
        assert_eq!(stats.len(), rounds, "one record per observed round");
        let mut phase_sum = 0u64;
        for s in &stats {
            assert!(s.compute_ns > 0, "observed rounds time their compute");
            phase_sum += s.total_phase_ns();
        }
        if halo {
            // halo rounds exercise the full split: a measurable exchange
            // phase, a barrier separating it from the next round's reads,
            // and non-zero accounted halo traffic
            assert!(stats.iter().all(|s| s.halo_bytes > 0));
            assert!(stats.iter().any(|s| s.exchange_ns > 0 || s.barrier_ns > 0));
        }
        // every round's phase split reconstructs the measured round total
        // exactly (dispatch_ns is the residual by construction), so the
        // acceptance bound — split within 10% of total round time — holds
        // with equality; the outer wall-clock check pins the sum against
        // an *independent* timer (the remainder is the observer's own
        // per-round verdict sweep)
        assert!(phase_sum > 0 && phase_sum <= wall_ns);
        group.record_meta(
            &format!("rounds/{label}/phase_cover"),
            phase_sum as f64 / wall_ns as f64,
        );
        artifact.push(&label, &run, stats);
    }
    artifact.finish();
    telemetry.flush().expect("flushing the round-latency trace");
    if let Some(path) = telemetry.trace_path() {
        println!("  trace -> {}", path.display());
    }
}

fn main() {
    let mut group = BenchGroup::new("round_latency");
    let (sizes, expander_n, iters) = if smoke_mode() {
        (vec![500usize], 1_000usize, 30u32)
    } else {
        (vec![1_000usize, 10_000], 100_000usize, 200u32)
    };
    let artifact_n = *sizes.last().expect("at least one size");
    for n in sizes {
        let g = random_connected_graph(n, 2 * n, 42);
        round_case(&mut group, &format!("random/{n}"), &g, iters);
    }
    layout_case(&mut group, expander_n, 8, iters.min(50));
    rounds_artifact_pass(&mut group, artifact_n, if smoke_mode() { 12 } else { 50 });
    group.finish();
}
