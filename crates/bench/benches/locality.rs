//! Bench: detection-distance measurement with f faults (F-LOC). Results
//! land in `BENCH_locality.json`.
use smst_bench::harness::BenchGroup;

fn main() {
    let mut group = BenchGroup::new("locality");
    for f in [1usize, 4] {
        group.bench(&format!("faults/{f}"), 10, || {
            smst_bench::locality_sweep(32, &[f], 17)[0].max_detection_distance
        });
    }
    group.finish();
}
