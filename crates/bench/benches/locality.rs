//! Bench: detection-distance measurement with f faults (F-LOC).
use smst_bench::harness::{bench, header};

fn main() {
    header("locality");
    for f in [1usize, 4] {
        bench(&format!("faults/{f}"), 10, || {
            smst_bench::locality_sweep(32, &[f], 17)[0].max_detection_distance
        });
    }
}
