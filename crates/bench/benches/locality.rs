//! Criterion bench: detection-distance measurement with f faults (F-LOC).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("locality");
    group.sample_size(10);
    for f in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("faults", f), &f, |b, &f| {
            b.iter(|| smst_bench::locality_sweep(32, &[f], 17)[0].max_detection_distance)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_locality);
criterion_main!(benches);
