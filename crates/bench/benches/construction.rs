//! Criterion bench: SYNC_MST construction and marker (reproduces the O(n)
//! construction-time claim — Theorem 4.4 / Corollary 6.11).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smst_core::{Marker, SyncMst};
use smst_graph::generators::random_connected_graph;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let g = random_connected_graph(n, 3 * n, 1);
        group.bench_with_input(BenchmarkId::new("sync_mst", n), &g, |b, g| {
            b.iter(|| SyncMst.run(g).rounds)
        });
        let inst = smst_bench::mst_instance(n, 3 * n, 1);
        group.bench_with_input(BenchmarkId::new("marker", n), &inst, |b, inst| {
            b.iter(|| Marker.label(inst).unwrap().1.total_rounds())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
