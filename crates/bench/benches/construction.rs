//! Bench: SYNC_MST construction and marker (reproduces the O(n)
//! construction-time claim — Theorem 4.4 / Corollary 6.11).
use smst_bench::harness::{bench, header};
use smst_core::{Marker, SyncMst};
use smst_graph::generators::random_connected_graph;

fn main() {
    header("construction");
    for n in [32usize, 64, 128] {
        let g = random_connected_graph(n, 3 * n, 1);
        bench(&format!("sync_mst/{n}"), 10, || SyncMst.run(&g).rounds);
        let inst = smst_bench::mst_instance(n, 3 * n, 1);
        bench(&format!("marker/{n}"), 10, || {
            Marker.label(&inst).unwrap().1.total_rounds()
        });
    }
}
