//! Bench: SYNC_MST construction and marker (reproduces the O(n)
//! construction-time claim — Theorem 4.4 / Corollary 6.11). Results land
//! in `BENCH_construction.json`.
use smst_bench::harness::BenchGroup;
use smst_core::{Marker, SyncMst};
use smst_graph::generators::random_connected_graph;

fn main() {
    let mut group = BenchGroup::new("construction");
    for n in [32usize, 64, 128] {
        let g = random_connected_graph(n, 3 * n, 1);
        group.bench(&format!("sync_mst/{n}"), 10, || SyncMst.run(&g).rounds);
        let inst = smst_bench::mst_instance(n, 3 * n, 1);
        group.bench(&format!("marker/{n}"), 10, || {
            Marker.label(&inst).unwrap().1.total_rounds()
        });
    }
    group.finish();
}
