//! Bench: computing the memory footprints of the paper's scheme and the
//! O(log² n) baseline (the F-MEM experiment). Results land in
//! `BENCH_memory.json`.
use smst_bench::harness::BenchGroup;
use smst_labeling::kkp::KkpMstScheme;
use smst_labeling::scheme::max_label_bits;
use smst_labeling::OneRoundScheme;

fn main() {
    let mut group = BenchGroup::new("memory");
    for n in [64usize, 256] {
        let inst = smst_bench::mst_instance(n, 3 * n, 3);
        group.bench(&format!("paper_scheme/{n}"), 10, || {
            smst_bench::memory_sweep(&[inst.node_count()], 3)[0].paper_bits
        });
        group.bench(&format!("kkp_labels/{n}"), 10, || {
            let labels = KkpMstScheme.mark(&inst).unwrap();
            max_label_bits(&KkpMstScheme, &inst, &labels)
        });
    }
    group.finish();
}
