//! Criterion bench: computing the memory footprints of the paper's scheme and
//! the O(log² n) baseline (the F-MEM experiment).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smst_labeling::kkp::KkpMstScheme;
use smst_labeling::scheme::max_label_bits;
use smst_labeling::OneRoundScheme;

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory");
    group.sample_size(10);
    for n in [64usize, 256] {
        let inst = smst_bench::mst_instance(n, 3 * n, 3);
        group.bench_with_input(BenchmarkId::new("paper_scheme", n), &inst, |b, inst| {
            b.iter(|| smst_bench::memory_sweep(&[inst.node_count()], 3)[0].paper_bits)
        });
        group.bench_with_input(BenchmarkId::new("kkp_labels", n), &inst, |b, inst| {
            b.iter(|| {
                let labels = KkpMstScheme.mark(inst).unwrap();
                max_label_bits(&KkpMstScheme, inst, &labels)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
