//! Criterion bench: one stabilization episode per Table-1 variant.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smst_graph::generators::random_connected_graph;
use smst_selfstab::{SelfStabilizingMst, Variant};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let g = random_connected_graph(48, 144, 4);
    for variant in Variant::all() {
        group.bench_with_input(
            BenchmarkId::new("stabilize", variant.name()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    SelfStabilizingMst::new(variant)
                        .stabilize_from_garbage(&g, 9)
                        .total_rounds()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
