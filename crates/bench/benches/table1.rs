//! Bench: one stabilization episode per Table-1 variant. Results land in
//! `BENCH_table1.json`.
use smst_bench::harness::BenchGroup;
use smst_graph::generators::random_connected_graph;
use smst_selfstab::{SelfStabilizingMst, Variant};

fn main() {
    let mut group = BenchGroup::new("table1");
    let g = random_connected_graph(48, 144, 4);
    for variant in Variant::all() {
        group.bench(&format!("stabilize/{}", variant.name()), 10, || {
            SelfStabilizingMst::new(variant)
                .stabilize_from_garbage(&g, 9)
                .total_rounds()
        });
    }
    group.finish();
}
