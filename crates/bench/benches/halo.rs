//! Bench: the halo-exchange execution mode on the expander scenario.
//!
//! On low-diameter expanders (the KMW lower-bound topologies) almost every
//! neighbour read crosses a shard boundary, so this is where halo mode has
//! the most traffic to make explicit. The bench compares chunked rounds of
//! the direct path against the halo path (with and without the RCM
//! layout, with and without pinned workers) and records the **halo
//! geometry** in the artifact's `meta` object:
//!
//! * `halo/<layout>/entries` — total halo slots over all shards (the
//!   registers crossing shard boundaries in each exchange step);
//! * `halo/<layout>/max_shard` — the largest single shard's halo;
//! * `halo/<layout>/bytes_per_round` — exchanged bytes per round for the
//!   `u64` registers of the bench program.
//!
//! RCM exists to shrink the boundary, so `halo/rcm/entries` should come
//! out well below `halo/identity/entries` (the engine's property tests pin
//! the strict inequality; here it is measured and reported). Results land
//! in `BENCH_halo.json`; `SMST_BENCH_SMOKE=1` shrinks the sizes for CI.

use smst_bench::harness::{smoke_mode, BenchGroup};
use smst_engine::programs::MinIdFlood;
use smst_engine::{LayoutPolicy, ParallelSyncRunner, PinPolicy};
use smst_graph::generators::expander_graph;
use smst_graph::WeightedGraph;

const ROUNDS_PER_ITER: usize = 8;

fn halo_case(
    group: &mut BenchGroup,
    g: &WeightedGraph,
    threads: usize,
    layout: LayoutPolicy,
    tag: &str,
    iters: u32,
) {
    let program = MinIdFlood::new(0);
    let mut direct = ParallelSyncRunner::with_layout(&program, g.clone(), threads, layout);
    group.bench(&format!("{tag}/direct"), iters, || {
        direct.run_rounds(ROUNDS_PER_ITER);
        direct.rounds()
    });
    let mut halo =
        ParallelSyncRunner::with_layout(&program, g.clone(), threads, layout).halo_exchange(true);
    group.bench(&format!("{tag}/halo"), iters, || {
        halo.run_rounds(ROUNDS_PER_ITER);
        halo.rounds()
    });
    let mut pinned = ParallelSyncRunner::with_layout(&program, g.clone(), threads, layout)
        .halo_exchange(true)
        .pinning(PinPolicy::Cores);
    group.bench(&format!("{tag}/halo+pin"), iters, || {
        pinned.run_rounds(ROUNDS_PER_ITER);
        pinned.rounds()
    });
}

fn main() {
    let mut group = BenchGroup::new("halo");
    let (n, degree, threads, iters) = if smoke_mode() {
        (2_000usize, 8usize, 4usize, 10u32)
    } else {
        (100_000, 8, 4, 40)
    };
    let g = expander_graph(n, degree, 5);
    let program = MinIdFlood::new(0);
    for (label, layout) in [
        ("identity", LayoutPolicy::Identity),
        ("rcm", LayoutPolicy::Rcm),
    ] {
        halo_case(
            &mut group,
            &g,
            threads,
            layout,
            &format!("expander/{n}/threads={threads}/{label}"),
            iters,
        );
        let probe = ParallelSyncRunner::with_layout(&program, g.clone(), threads, layout)
            .halo_exchange(true);
        let plan = probe.halo_plan().expect("halo mode on");
        let max_shard = (0..plan.shard_count())
            .map(|s| plan.halo_size(s))
            .max()
            .unwrap_or(0);
        group.record_meta(&format!("halo/{label}/entries"), plan.total_halo() as f64);
        group.record_meta(&format!("halo/{label}/max_shard"), max_shard as f64);
        group.record_meta(
            &format!("halo/{label}/bytes_per_round"),
            plan.exchanged_bytes_per_round(std::mem::size_of::<u64>()) as f64,
        );
    }
    group.finish();
}
