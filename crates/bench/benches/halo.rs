//! Bench: the halo-exchange execution mode on the expander scenario.
//!
//! On low-diameter expanders (the KMW lower-bound topologies) almost every
//! neighbour read crosses a shard boundary, so this is where halo mode has
//! the most traffic to make explicit. The bench compares chunked rounds of
//! the direct path against the halo path (with and without the RCM
//! layout, with and without pinned workers) — every runner is built from
//! an [`EngineConfig`] envelope — and records the **halo geometry** in the
//! artifact's `meta` object:
//!
//! * `halo/<layout>/entries` — total halo slots over all shards (the
//!   registers crossing shard boundaries in each exchange step);
//! * `halo/<layout>/max_shard` — the largest single shard's halo;
//! * `halo/<layout>/bytes_per_round` — exchanged bytes per round for the
//!   `u64` registers of the bench program, as reported **per round by a
//!   [`RecordingObserver`]** (the one-engine-API measurement hook), plus
//!   `halo/<layout>/observed_round_ns` — the observer's mean per-round
//!   total over the observed rounds (wall-clock, indicative).
//!
//! RCM exists to shrink the boundary, so `halo/rcm/entries` should come
//! out well below `halo/identity/entries` (the engine's property tests pin
//! the strict inequality; here it is measured and reported). Results land
//! in `BENCH_halo.json`. The observed probe rounds — which carry the full
//! dispatch/compute/barrier/exchange phase split — are promoted to
//! `BENCH_rounds_halo.json` via a [`RoundsArtifact`], teeing the recording
//! observer with the env-gated telemetry sink ([`Telemetry::from_env`],
//! `SMST_TRACE_SAMPLE` → `TRACE_halo.jsonl`). `SMST_BENCH_SMOKE=1`
//! shrinks the sizes for CI.

use smst_bench::harness::{smoke_mode, BenchGroup};
use smst_engine::programs::MinIdFlood;
use smst_engine::{EngineConfig, LayoutPolicy, ParallelSyncRunner, PinPolicy};
use smst_graph::generators::expander_graph;
use smst_graph::WeightedGraph;
use smst_sim::{RecordingObserver, TeeObserver};
use smst_telemetry::{RoundsArtifact, Telemetry};

const ROUNDS_PER_ITER: usize = 8;

fn halo_case(
    group: &mut BenchGroup,
    g: &WeightedGraph,
    engine: &EngineConfig,
    tag: &str,
    iters: u32,
) {
    let program = MinIdFlood::new(0);
    let mut direct = ParallelSyncRunner::from_config(&program, g.clone(), engine)
        .expect("a sync envelope is valid");
    group.bench(&format!("{tag}/direct"), iters, || {
        direct.run_rounds(ROUNDS_PER_ITER);
        direct.rounds()
    });
    let mut halo = ParallelSyncRunner::from_config(&program, g.clone(), &engine.clone().halo(true))
        .expect("a sync halo envelope is valid");
    group.bench(&format!("{tag}/halo"), iters, || {
        halo.run_rounds(ROUNDS_PER_ITER);
        halo.rounds()
    });
    let mut pinned = ParallelSyncRunner::from_config(
        &program,
        g.clone(),
        &engine.clone().halo(true).pin(PinPolicy::Cores),
    )
    .expect("a pinned halo envelope is valid");
    group.bench(&format!("{tag}/halo+pin"), iters, || {
        pinned.run_rounds(ROUNDS_PER_ITER);
        pinned.rounds()
    });
}

fn main() {
    let mut group = BenchGroup::new("halo");
    let (n, degree, threads, iters) = if smoke_mode() {
        (2_000usize, 8usize, 4usize, 10u32)
    } else {
        (100_000, 8, 4, 40)
    };
    let g = expander_graph(n, degree, 5);
    let program = MinIdFlood::new(0);
    let telemetry = Telemetry::from_env("halo");
    let mut artifact = RoundsArtifact::new("rounds_halo");
    for (label, layout) in [
        ("identity", LayoutPolicy::Identity),
        ("rcm", LayoutPolicy::Rcm),
    ] {
        let engine = EngineConfig::new().threads(threads).layout(layout);
        halo_case(
            &mut group,
            &g,
            &engine,
            &format!("expander/{n}/threads={threads}/{label}"),
            iters,
        );
        // geometry probe: the static plan sizes from the concrete runner,
        // plus the per-round exchanged bytes as the RoundObserver reports
        // them — one typed runner serves both reads
        let mut probe = ParallelSyncRunner::from_config(
            &program,
            g.clone(),
            &EngineConfig::new()
                .threads(threads)
                .layout(layout)
                .halo(true),
        )
        .expect("a sync halo envelope is valid");
        let run = format!("n={n};degree={degree};threads={threads};layout={label}");
        let recording = RecordingObserver::new();
        let mut tee = TeeObserver::new().with(Box::new(recording.clone()));
        if let Some(observer) = telemetry.observer(&run) {
            tee.push(observer);
        }
        probe.set_observer(Box::new(tee));
        probe.run_rounds(4);
        let stats = recording.stats();
        assert_eq!(stats.len(), 4, "one callback per observed round");
        let plan = probe.halo_plan().expect("halo mode on");
        let max_shard = (0..plan.shard_count())
            .map(|s| plan.halo_size(s))
            .max()
            .unwrap_or(0);
        assert_eq!(
            stats[0].halo_bytes,
            plan.exchanged_bytes_per_round(std::mem::size_of::<u64>()) as u64,
            "observer-reported bytes must equal the plan's geometry"
        );
        group.record_meta(&format!("halo/{label}/entries"), plan.total_halo() as f64);
        group.record_meta(&format!("halo/{label}/max_shard"), max_shard as f64);
        group.record_meta(
            &format!("halo/{label}/bytes_per_round"),
            stats[0].halo_bytes as f64,
        );
        group.record_meta(
            &format!("halo/{label}/observed_round_ns"),
            recording.mean_round_ns(),
        );
        artifact.push(
            &format!("expander/{n}/threads={threads}/{label}"),
            &run,
            stats,
        );
    }
    artifact.finish();
    telemetry.flush().expect("flushing the halo trace");
    group.finish();
}
