//! Criterion bench: one synchronous round of the paper's verifier and a full
//! single-fault detection episode (the F-DET experiment).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smst_core::faults::FaultKind;
use smst_core::scheme::run_sync_fault_experiment;
use smst_core::MstVerificationScheme;
use smst_graph::NodeId;
use smst_sim::{FaultPlan, SyncRunner};

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");
    group.sample_size(10);
    for n in [16usize, 32] {
        let inst = smst_bench::mst_instance(n, 3 * n, 2);
        let scheme = MstVerificationScheme::new();
        let (labels, _) = scheme.mark(&inst).unwrap();
        let verifier = scheme.verifier(&inst, labels);
        group.bench_with_input(BenchmarkId::new("verifier_round", n), &n, |b, _| {
            let net = verifier.network();
            let mut runner = SyncRunner::new(&verifier, net);
            b.iter(|| runner.step_round())
        });
        group.bench_with_input(BenchmarkId::new("single_fault_episode", n), &n, |b, _| {
            b.iter(|| {
                run_sync_fault_experiment(
                    &inst,
                    &FaultPlan::single(NodeId(n / 2)),
                    FaultKind::SpDistance,
                    3,
                )
                .report
                .detection_time
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
