//! Bench: one synchronous round of the paper's verifier and a full
//! single-fault detection episode (the F-DET experiment). Results land in
//! `BENCH_detection.json`.
use smst_bench::harness::BenchGroup;
use smst_core::faults::FaultKind;
use smst_core::scheme::run_sync_fault_experiment;
use smst_core::MstVerificationScheme;
use smst_graph::NodeId;
use smst_sim::{FaultPlan, SyncRunner};

fn main() {
    let mut group = BenchGroup::new("detection");
    for n in [16usize, 32] {
        let inst = smst_bench::mst_instance(n, 3 * n, 2);
        let scheme = MstVerificationScheme::new();
        let (labels, _) = scheme.mark(&inst).unwrap();
        let verifier = scheme.verifier(&inst, labels);
        let net = verifier.network();
        let mut runner = SyncRunner::new(&verifier, net);
        group.bench(&format!("verifier_round/{n}"), 10, || runner.step_round());
        group.bench(&format!("single_fault_episode/{n}"), 10, || {
            run_sync_fault_experiment(
                &inst,
                &FaultPlan::single(NodeId(n / 2)),
                FaultKind::SpDistance,
                3,
            )
            .report
            .detection_time
        });
    }
    group.finish();
}
