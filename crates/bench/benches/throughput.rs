//! Bench: sequential vs. sharded round throughput.
//!
//! Runs the same program over the same graph with the sequential
//! [`SyncRunner`] and the pool-backed [`ParallelSyncRunner`] at several
//! thread counts, reporting rounds/s and the speedup over sequential. Two
//! workloads:
//!
//! * `flood` — the compact [`MinIdFlood`] register (memory-bound floor);
//! * `verifier` — the paper's full [`CoreVerifier`](smst_core::CoreVerifier)
//!   register (compute-heavy, the workload the engine exists for), with and
//!   without the RCM layout pass.
//!
//! On a multi-core host the `verifier/100k` case is the acceptance gauge:
//! ≥ 2× speedup at ≥ 4 threads. (On a single-core container the sharded
//! runner degenerates to the sequential sweep plus noise — the printed
//! speedup makes that visible rather than hiding it.) Results land in
//! `BENCH_throughput.json`; set `SMST_BENCH_SMOKE=1` for CI-sized runs.

use smst_bench::harness::{smoke_mode, BenchGroup};
use smst_core::MstVerificationScheme;
use smst_engine::programs::MinIdFlood;
use smst_engine::{EngineConfig, LayoutPolicy, ParallelSyncRunner};
use smst_graph::generators::random_connected_graph;
use smst_graph::mst::kruskal;
use smst_graph::NodeId;
use smst_labeling::Instance;
use smst_sim::{Network, SyncRunner};

// the threads=1 row isolates the engine's single-thread win (CSR layout,
// persistent pool, no per-round spawn) from actual parallel scaling
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn flood_case(group: &mut BenchGroup, n: usize, rounds: usize, iters: u32) {
    let g = random_connected_graph(n, 2 * n, 42);
    let program = MinIdFlood::new(0);
    // runners are built once; only the rounds are timed
    let mut seq_runner = SyncRunner::new(&program, Network::new(&program, g.clone()));
    let seq = group.bench(&format!("flood/{n}/sequential"), iters, || {
        seq_runner.run_rounds(rounds);
        seq_runner.rounds()
    });
    for threads in THREAD_COUNTS {
        let mut par_runner = ParallelSyncRunner::new(&program, g.clone(), threads);
        let par = group.bench(&format!("flood/{n}/threads={threads}"), iters, || {
            par_runner.run_rounds(rounds);
            par_runner.rounds()
        });
        println!(
            "    -> speedup over sequential at {} threads: {:.2}x",
            threads,
            seq.mean_ns / par.mean_ns
        );
    }
}

fn verifier_case(group: &mut BenchGroup, n: usize, rounds: usize, iters: u32) {
    let g = random_connected_graph(n, 2 * n, 7);
    let tree = kruskal(&g).rooted_at(&g, NodeId(0)).expect("connected");
    let inst = Instance::from_tree(g, &tree);
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme.mark(&inst).expect("correct instance");
    let verifier = scheme.verifier(&inst, labels);

    let mut seq_runner = SyncRunner::new(&verifier, verifier.network());
    let seq = group.bench(&format!("verifier/{n}/sequential"), iters, || {
        seq_runner.run_rounds(rounds);
        seq_runner.rounds()
    });
    println!(
        "    sequential: {:.0} node-rounds/s",
        (n * rounds) as f64 / seq.mean_secs()
    );
    for threads in THREAD_COUNTS {
        for layout in [LayoutPolicy::Identity, LayoutPolicy::Rcm] {
            let tag = match layout {
                LayoutPolicy::Identity => "",
                LayoutPolicy::Rcm => "/rcm",
            };
            let mut par_runner = ParallelSyncRunner::from_config(
                &verifier,
                inst.graph.clone(),
                &EngineConfig::new().threads(threads).layout(layout),
            )
            .expect("a sync envelope is valid");
            let par = group.bench(
                &format!("verifier/{n}/threads={threads}{tag}"),
                iters,
                || {
                    par_runner.run_rounds(rounds);
                    par_runner.rounds()
                },
            );
            println!(
                "    -> {:.0} node-rounds/s, speedup over sequential at {} threads{tag}: {:.2}x",
                (n * rounds) as f64 / par.mean_secs(),
                threads,
                seq.mean_ns / par.mean_ns
            );
        }
    }
    // correctness spot check: parallel equals sequential bit-for-bit, with
    // the layout pass on
    let mut a = SyncRunner::new(&verifier, verifier.network());
    let mut b = ParallelSyncRunner::from_config(
        &verifier,
        inst.graph.clone(),
        &EngineConfig::new().threads(4).layout(LayoutPolicy::Rcm),
    )
    .expect("a sync envelope is valid");
    a.run_rounds(5);
    b.run_rounds(5);
    assert!(
        a.network().states() == b.states_snapshot().as_slice(),
        "sharded run diverged from sequential"
    );
}

fn main() {
    let mut group = BenchGroup::new("throughput");
    if smoke_mode() {
        flood_case(&mut group, 2_000, 5, 3);
        verifier_case(&mut group, 2_000, 2, 2);
    } else {
        flood_case(&mut group, 100_000, 10, 5);
        verifier_case(&mut group, 100_000, 3, 3);
    }
    group.finish();
}
