//! Engine-native metric sweeps: the paper's detection-distance and memory
//! figures driven through [`ScenarioSpec`] instead of the sequential
//! [`Network`](smst_sim::Network) interop.
//!
//! The sequential sweeps in [`crate`] top out around 10³ nodes — every
//! round is a single-threaded sweep. These variants describe the same
//! experiments declaratively (graph family × fault burst × stop condition)
//! and execute them on the sharded runners, so the figures regenerate at
//! 100k+ nodes on a multi-core host and inherit the engine's determinism
//! contract (every point is a pure function of `(n, seed)`; thread count
//! and layout never change the numbers — pinned by the test below).

use smst_core::faults::{corrupt, FaultKind};
use smst_core::{CoreVerifier, MstVerificationScheme};
use smst_engine::{GraphFamily, LayoutPolicy, ScenarioSpec, StopCondition};
use smst_graph::mst::kruskal;
use smst_graph::{NodeId, WeightedGraph};
use smst_labeling::Instance;
use smst_sim::DetectionReport;

/// The graph family the engine sweeps run on: the random connected family
/// with the throughput-relevant density `m = 3n` (the same family and seed
/// scheme as the sequential sweeps, so small sizes are directly
/// comparable).
fn sweep_family(n: usize) -> GraphFamily {
    GraphFamily::RandomConnected { n, m: 3 * n }
}

/// Builds the paper's verifier for the scenario's graph: MST via Kruskal,
/// marker labels, verifier over the labelled instance.
fn verifier_for(graph: &WeightedGraph) -> CoreVerifier {
    let tree = kruskal(graph)
        .rooted_at(graph, NodeId(0))
        .expect("scenario graphs are connected");
    let instance = Instance::from_tree(graph.clone(), &tree);
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(&instance)
        .expect("a Kruskal tree is a correct MST instance");
    scheme.verifier(&instance, labels)
}

/// One point of the engine-native detection figure.
#[derive(Debug, Clone)]
pub struct EngineDetectionPoint {
    /// Number of nodes.
    pub n: usize,
    /// Maximum degree of the graph.
    pub max_degree: usize,
    /// Steps from fault injection to the first alarm (`None`: not detected
    /// within the budget).
    pub detection_steps: Option<usize>,
    /// Hop distance from the fault to the closest alarming node.
    pub detection_distance: usize,
    /// Worker threads the sweep ran with.
    pub threads: usize,
}

/// The engine-native detection sweep: warm the verifier up on a correct,
/// marker-labelled instance, hit one random register with a stored-piece
/// fault (a [`FaultBurst`](smst_engine::FaultBurst) at the warm-up
/// boundary), and measure synchronous detection time and distance — all
/// through one declarative [`ScenarioSpec`] per size.
pub fn engine_detection_sweep(
    sizes: &[usize],
    seed: u64,
    threads: usize,
    layout: LayoutPolicy,
) -> Vec<EngineDetectionPoint> {
    sizes
        .iter()
        .map(|&n| {
            let warmup = MstVerificationScheme::sync_budget(n);
            let budget = warmup + 4 * MstVerificationScheme::sync_budget(n) + 1;
            let spec = ScenarioSpec::new(sweep_family(n))
                .seed(seed)
                .threads(threads)
                .layout(layout)
                .fault_burst(warmup, 1, seed)
                .until(StopCondition::FirstAlarm);
            let mut i = 0u64;
            let (outcome, _verifier) = spec.run_with(
                verifier_for,
                |_v, state| {
                    corrupt(state, FaultKind::StoredPieceWeight, seed.wrapping_add(i));
                    i += 1;
                },
                budget,
            );
            let report = match outcome.report.first_alarm {
                Some(t) => DetectionReport::from_alarms(
                    outcome.network.graph(),
                    t,
                    outcome.report.alarm_nodes.clone(),
                    &outcome.report.injected_nodes,
                ),
                None => DetectionReport::not_detected(),
            };
            EngineDetectionPoint {
                n,
                max_degree: outcome.network.graph().max_degree(),
                detection_steps: report.detection_time,
                detection_distance: report.max_detection_distance,
                threads,
            }
        })
        .collect()
}

/// One point of the engine-native memory figure.
#[derive(Debug, Clone)]
pub struct EngineMemoryPoint {
    /// Number of nodes.
    pub n: usize,
    /// Steps executed before measuring (0 = the freshly marked
    /// configuration, matching the sequential figure).
    pub steps: usize,
    /// Maximum register bits of the paper's scheme (label + verifier
    /// state).
    pub max_bits: u64,
    /// Mean register bits across the network.
    pub mean_bits: f64,
    /// `max_bits / log₂ n` — bounded for the paper's scheme.
    pub words: f64,
}

/// The engine-native memory sweep: run the verifier fault-free for `steps`
/// synchronous steps on the engine and measure its per-node register bits.
/// With `steps == 0` this reproduces the sequential memory figure's
/// freshly-marked measurement; with a warm-up budget it measures the
/// registers the verifier actually carries in steady state (trains,
/// comparison machinery included).
pub fn engine_memory_sweep(
    sizes: &[usize],
    seed: u64,
    threads: usize,
    steps: usize,
) -> Vec<EngineMemoryPoint> {
    sizes
        .iter()
        .map(|&n| {
            let spec = ScenarioSpec::new(sweep_family(n))
                .seed(seed)
                .threads(threads)
                .until(StopCondition::Steps);
            let (outcome, verifier) = spec.run_with(verifier_for, |_v, _s| {}, steps);
            assert!(
                outcome.report.alarm_nodes.is_empty(),
                "a correct instance must not raise alarms"
            );
            let bits = outcome.network.memory_bits(&verifier);
            let max_bits = bits.iter().copied().max().unwrap_or(0);
            let mean_bits = if bits.is_empty() {
                0.0
            } else {
                bits.iter().copied().sum::<u64>() as f64 / bits.len() as f64
            };
            EngineMemoryPoint {
                n,
                steps,
                max_bits,
                mean_bits,
                words: max_bits as f64 / (n.max(2) as f64).log2(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_core::scheme::run_sync_fault_experiment;
    use smst_sim::FaultPlan;

    #[test]
    fn engine_detection_sweep_equals_the_sequential_experiment() {
        // same graph (family + seed), same fault plan, same per-fault
        // corruption seeds: the engine-native point must equal the
        // sequential driver's numbers exactly
        let (n, seed) = (16usize, 3u64);
        let point = engine_detection_sweep(&[n], seed, 2, LayoutPolicy::Rcm)
            .pop()
            .unwrap();
        let inst = crate::mst_instance(n, 3 * n, seed);
        let plan = FaultPlan::random(n, 1, seed);
        let seq = run_sync_fault_experiment(&inst, &plan, FaultKind::StoredPieceWeight, seed);
        assert_eq!(point.detection_steps, seq.report.detection_time);
        assert_eq!(point.detection_distance, seq.report.max_detection_distance);
        assert_eq!(point.max_degree, inst.graph.max_degree());
    }

    #[test]
    fn engine_detection_sweep_is_thread_and_layout_invariant() {
        let (n, seed) = (16usize, 5u64);
        let a = engine_detection_sweep(&[n], seed, 1, LayoutPolicy::Identity);
        let b = engine_detection_sweep(&[n], seed, 4, LayoutPolicy::Rcm);
        assert_eq!(a[0].detection_steps, b[0].detection_steps);
        assert_eq!(a[0].detection_distance, b[0].detection_distance);
    }

    #[test]
    fn engine_memory_sweep_matches_the_sequential_figure() {
        // steps == 0 measures the freshly marked configuration — exactly
        // what the sequential figure reports; bits must agree on the same
        // (n, seed)
        let seq = crate::memory_sweep(&[32], 3);
        let engine = engine_memory_sweep(&[32], 3, 2, 0);
        assert_eq!(engine[0].max_bits, seq[0].paper_bits);
        assert!(engine[0].words <= seq[0].paper_words + 1e-9);
    }
}
