//! Engine-native metric sweeps: the paper's detection-distance and memory
//! figures driven through [`ScenarioSpec`] instead of the sequential
//! [`Network`](smst_sim::Network) interop.
//!
//! The sequential sweeps in [`crate`] top out around 10³ nodes — every
//! round is a single-threaded sweep. These variants describe the same
//! experiments declaratively (graph family × fault burst × stop condition)
//! and execute them on the sharded runners, so the figures regenerate at
//! 100k+ nodes on a multi-core host and inherit the engine's determinism
//! contract (every point is a pure function of `(n, seed)`; thread count
//! and layout never change the numbers — pinned by the test below).

use smst_core::faults::{corrupt, FaultKind};
use smst_core::{CoreVerifier, Marker, MstVerificationScheme};
use smst_engine::{EngineConfig, GraphFamily, PoolHandle, ScenarioSpec, StopCondition};
use smst_graph::mst::kruskal;
use smst_graph::{NodeId, WeightedGraph};
use smst_labeling::Instance;
use smst_sim::DetectionReport;

/// The figure bins' env-gated size escape hatch: `$SMST_FIG_N` (a node
/// count) extends the engine-native figures beyond their small defaults —
/// the sweeps double from 128 up to the requested size, so a multi-core
/// host regenerates the figures at 100k+ nodes while CI and the default
/// invocation stay fast.
pub fn fig_size_override() -> Option<usize> {
    std::env::var("SMST_FIG_N").ok()?.parse().ok()
}

/// The sizes a figure bin should sweep: its small defaults, extended by
/// doubling up to [`fig_size_override`] when `$SMST_FIG_N` is set.
pub fn fig_sizes(defaults: &[usize]) -> Vec<usize> {
    let mut sizes: Vec<usize> = defaults.to_vec();
    if let Some(target) = fig_size_override() {
        let mut n = 128usize;
        while n < target {
            if !sizes.contains(&n) {
                sizes.push(n);
            }
            n *= 2;
        }
        if !sizes.contains(&target) {
            sizes.push(target);
        }
    }
    sizes.sort_unstable();
    sizes
}

/// The graph family the engine sweeps run on: the random connected family
/// with the throughput-relevant density `m = 3n` (the same family and seed
/// scheme as the sequential sweeps, so small sizes are directly
/// comparable).
fn sweep_family(n: usize) -> GraphFamily {
    GraphFamily::RandomConnected { n, m: 3 * n }
}

/// Builds the paper's verifier for the scenario's graph: MST via Kruskal,
/// marker labels, verifier over the labelled instance. Public because the
/// adversary campaign engine builds the same workload for its trials.
pub fn mst_verifier_for(graph: &WeightedGraph) -> CoreVerifier {
    let tree = kruskal(graph)
        .rooted_at(graph, NodeId(0))
        .expect("scenario graphs are connected");
    let instance = Instance::from_tree(graph.clone(), &tree);
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(&instance)
        .expect("a Kruskal tree is a correct MST instance");
    scheme.verifier(&instance, labels)
}

/// One point of the engine-native detection figure.
#[derive(Debug, Clone)]
pub struct EngineDetectionPoint {
    /// Number of nodes.
    pub n: usize,
    /// Maximum degree of the graph.
    pub max_degree: usize,
    /// Steps from fault injection to the first alarm (`None`: not detected
    /// within the budget).
    pub detection_steps: Option<usize>,
    /// Hop distance from the fault to the closest alarming node.
    pub detection_distance: usize,
    /// Worker threads the sweep ran with.
    pub threads: usize,
}

/// The engine-native detection sweep: warm the verifier up on a correct,
/// marker-labelled instance, hit one random register with a stored-piece
/// fault (a [`FaultBurst`](smst_engine::FaultBurst) at the warm-up
/// boundary), and measure synchronous detection time and distance — all
/// through one declarative [`ScenarioSpec`] per size, executed on
/// whatever path the [`EngineConfig`] envelope describes.
pub fn engine_detection_sweep(
    sizes: &[usize],
    seed: u64,
    engine: &EngineConfig,
) -> Vec<EngineDetectionPoint> {
    let threads = engine.threads;
    sizes
        .iter()
        .map(|&n| {
            let warmup = MstVerificationScheme::sync_budget(n);
            let budget = warmup + 4 * MstVerificationScheme::sync_budget(n) + 1;
            let spec = ScenarioSpec::new(sweep_family(n))
                .engine(engine.clone())
                .seed(seed)
                .fault_burst(warmup, 1, seed)
                .until(StopCondition::FirstAlarm);
            let mut i = 0u64;
            let (outcome, _verifier) = spec.run_with(
                mst_verifier_for,
                |_v, state| {
                    corrupt(state, FaultKind::StoredPieceWeight, seed.wrapping_add(i));
                    i += 1;
                },
                budget,
            );
            let report = match outcome.report.first_alarm {
                Some(t) => DetectionReport::from_alarms(
                    outcome.network.graph(),
                    t,
                    outcome.report.alarm_nodes.clone(),
                    &outcome.report.injected_nodes,
                ),
                None => DetectionReport::not_detected(),
            };
            EngineDetectionPoint {
                n,
                max_degree: outcome.network.graph().max_degree(),
                detection_steps: report.detection_time,
                detection_distance: report.max_detection_distance,
                threads,
            }
        })
        .collect()
}

/// One point of the engine-native detection-locality figure.
#[derive(Debug, Clone)]
pub struct EngineLocalityPoint {
    /// Number of injected faults `f`.
    pub faults: usize,
    /// Number of nodes.
    pub n: usize,
    /// Maximum hop distance from a fault to the closest alarming node.
    pub max_detection_distance: usize,
    /// Steps from injection to the first alarm (`None`: not detected).
    pub detection_steps: Option<usize>,
    /// Worker threads the sweep ran with.
    pub threads: usize,
}

/// The engine-native detection-locality sweep (`O(f log n)` detection
/// distance): inject `f` SP-distance faults at the warm-up boundary and
/// measure the maximum distance from a fault to the closest alarming node
/// — the sequential [`locality_sweep`](crate::locality_sweep) driven
/// through [`ScenarioSpec`] (same family, graph seed, plan seed `seed + f`
/// and corruption seeds, so shared sizes are pinned equal), executed on
/// whatever path the [`EngineConfig`] envelope describes.
pub fn engine_locality_sweep(
    n: usize,
    fault_counts: &[usize],
    seed: u64,
    engine: &EngineConfig,
) -> Vec<EngineLocalityPoint> {
    let threads = engine.threads;
    fault_counts
        .iter()
        .map(|&f| {
            let warmup = MstVerificationScheme::sync_budget(n);
            let budget = warmup + 4 * MstVerificationScheme::sync_budget(n) + 1;
            let spec = ScenarioSpec::new(sweep_family(n))
                .engine(engine.clone())
                .seed(seed)
                .fault_burst(warmup, f.min(n), seed + f as u64)
                .until(StopCondition::FirstAlarm);
            let mut i = 0u64;
            let (outcome, _verifier) = spec.run_with(
                mst_verifier_for,
                |_v, state| {
                    corrupt(state, FaultKind::SpDistance, seed.wrapping_add(i));
                    i += 1;
                },
                budget,
            );
            let report = match outcome.report.first_alarm {
                Some(t) => DetectionReport::from_alarms(
                    outcome.network.graph(),
                    t,
                    outcome.report.alarm_nodes.clone(),
                    &outcome.report.injected_nodes,
                ),
                None => DetectionReport::not_detected(),
            };
            EngineLocalityPoint {
                faults: f,
                n,
                max_detection_distance: report.max_detection_distance,
                detection_steps: report.detection_time,
                threads,
            }
        })
        .collect()
}

/// One point of the engine-native construction figure.
#[derive(Debug, Clone)]
pub struct EngineConstructionPoint {
    /// Number of nodes.
    pub n: usize,
    /// SYNC_MST rounds (Theorem 4.4: `O(n)`).
    pub sync_mst_rounds: u64,
    /// Marker rounds (label assignment, `O(n)`).
    pub marker_rounds: u64,
    /// `total / n` — roughly constant when the construction is linear.
    pub rounds_per_node: f64,
}

/// The engine-native construction sweep: SYNC_MST + marker rounds per
/// size, instances built through the [`GraphFamily`] scheme the scenario
/// engine uses (same family and seed as the sequential
/// [`construction_sweep`](crate::construction_sweep), so shared sizes are
/// pinned equal) and the sizes fanned out across the persistent worker
/// pool — the construction itself is the centralized reference algorithm,
/// so the pool parallelism is across instances, not rounds (only the
/// envelope's thread count is consulted).
pub fn engine_construction_sweep(
    sizes: &[usize],
    seed: u64,
    engine: &EngineConfig,
) -> Vec<EngineConstructionPoint> {
    let threads = engine.threads;
    let measure = |n: usize| {
        let graph = ScenarioSpec::new(sweep_family(n)).seed(seed).build_graph();
        let tree = kruskal(&graph)
            .rooted_at(&graph, NodeId(0))
            .expect("scenario graphs are connected");
        let instance = Instance::from_tree(graph, &tree);
        let (_, report) = Marker.label(&instance).expect("correct instance");
        EngineConstructionPoint {
            n,
            sync_mst_rounds: report.construction_rounds,
            marker_rounds: report.marker_rounds,
            rounds_per_node: report.total_rounds() as f64 / n as f64,
        }
    };
    PoolHandle::for_threads(threads.max(1)).map_indexed(sizes, |_i, &n| measure(n))
}

/// One point of the engine-native memory figure.
#[derive(Debug, Clone)]
pub struct EngineMemoryPoint {
    /// Number of nodes.
    pub n: usize,
    /// Steps executed before measuring (0 = the freshly marked
    /// configuration, matching the sequential figure).
    pub steps: usize,
    /// Maximum register bits of the paper's scheme (label + verifier
    /// state).
    pub max_bits: u64,
    /// Mean register bits across the network.
    pub mean_bits: f64,
    /// `max_bits / log₂ n` — bounded for the paper's scheme.
    pub words: f64,
}

/// The engine-native memory sweep: run the verifier fault-free for `steps`
/// synchronous steps on the engine and measure its per-node register bits.
/// With `steps == 0` this reproduces the sequential memory figure's
/// freshly-marked measurement; with a warm-up budget it measures the
/// registers the verifier actually carries in steady state (trains,
/// comparison machinery included).
pub fn engine_memory_sweep(
    sizes: &[usize],
    seed: u64,
    engine: &EngineConfig,
    steps: usize,
) -> Vec<EngineMemoryPoint> {
    sizes
        .iter()
        .map(|&n| {
            let spec = ScenarioSpec::new(sweep_family(n))
                .engine(engine.clone())
                .seed(seed)
                .until(StopCondition::Steps);
            let (outcome, verifier) = spec.run_with(mst_verifier_for, |_v, _s| {}, steps);
            assert!(
                outcome.report.alarm_nodes.is_empty(),
                "a correct instance must not raise alarms"
            );
            let bits = outcome.network.memory_bits(&verifier);
            let max_bits = bits.iter().copied().max().unwrap_or(0);
            let mean_bits = if bits.is_empty() {
                0.0
            } else {
                bits.iter().copied().sum::<u64>() as f64 / bits.len() as f64
            };
            EngineMemoryPoint {
                n,
                steps,
                max_bits,
                mean_bits,
                words: max_bits as f64 / (n.max(2) as f64).log2(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_core::scheme::run_sync_fault_experiment;
    use smst_sim::FaultPlan;

    #[test]
    fn engine_detection_sweep_equals_the_sequential_experiment() {
        // same graph (family + seed), same fault plan, same per-fault
        // corruption seeds: the engine-native point must equal the
        // sequential driver's numbers exactly
        let (n, seed) = (16usize, 3u64);
        let engine = EngineConfig::new()
            .threads(2)
            .layout(smst_engine::LayoutPolicy::Rcm);
        let point = engine_detection_sweep(&[n], seed, &engine).pop().unwrap();
        let inst = crate::mst_instance(n, 3 * n, seed);
        let plan = FaultPlan::random(n, 1, seed);
        let seq = run_sync_fault_experiment(&inst, &plan, FaultKind::StoredPieceWeight, seed);
        assert_eq!(point.detection_steps, seq.report.detection_time);
        assert_eq!(point.detection_distance, seq.report.max_detection_distance);
        assert_eq!(point.max_degree, inst.graph.max_degree());
    }

    #[test]
    fn engine_detection_sweep_is_envelope_invariant() {
        let (n, seed) = (16usize, 5u64);
        let a = engine_detection_sweep(&[n], seed, &EngineConfig::new());
        let b = engine_detection_sweep(
            &[n],
            seed,
            &EngineConfig::new()
                .threads(4)
                .layout(smst_engine::LayoutPolicy::Rcm)
                .halo(true),
        );
        let c = engine_detection_sweep(&[n], seed, &EngineConfig::reference());
        assert_eq!(a[0].detection_steps, b[0].detection_steps);
        assert_eq!(a[0].detection_distance, b[0].detection_distance);
        assert_eq!(a[0].detection_steps, c[0].detection_steps);
        assert_eq!(a[0].detection_distance, c[0].detection_distance);
    }

    #[test]
    fn engine_locality_sweep_equals_the_sequential_driver() {
        // same graph (family + seed), same plan seed (seed + f), same
        // corruption seeds: the engine-native locality point must equal
        // the sequential driver's distance exactly, for every shared f
        let (n, seed) = (16usize, 7u64);
        let engine = EngineConfig::new()
            .threads(2)
            .layout(smst_engine::LayoutPolicy::Rcm);
        for f in [1usize, 3] {
            let point = engine_locality_sweep(n, &[f], seed, &engine).pop().unwrap();
            let seq = crate::locality_sweep(n, &[f], seed).pop().unwrap();
            assert_eq!(point.max_detection_distance, seq.max_detection_distance);
            assert_eq!(point.faults, seq.faults);
        }
    }

    #[test]
    fn engine_locality_sweep_is_envelope_invariant() {
        let (n, seed) = (16usize, 9u64);
        let a = engine_locality_sweep(n, &[2], seed, &EngineConfig::new());
        let b = engine_locality_sweep(
            n,
            &[2],
            seed,
            &EngineConfig::new()
                .threads(4)
                .layout(smst_engine::LayoutPolicy::Rcm),
        );
        assert_eq!(a[0].max_detection_distance, b[0].max_detection_distance);
        assert_eq!(a[0].detection_steps, b[0].detection_steps);
    }

    #[test]
    fn engine_construction_sweep_equals_the_sequential_driver() {
        let sizes = [24usize, 40];
        let seq = crate::construction_sweep(&sizes, 4);
        for threads in [1usize, 3] {
            let engine =
                engine_construction_sweep(&sizes, 4, &EngineConfig::new().threads(threads));
            assert_eq!(engine.len(), seq.len());
            for (e, s) in engine.iter().zip(&seq) {
                assert_eq!(e.n, s.n, "threads {threads}");
                assert_eq!(e.sync_mst_rounds, s.sync_mst_rounds, "threads {threads}");
                assert_eq!(e.marker_rounds, s.marker_rounds, "threads {threads}");
            }
        }
    }

    #[test]
    fn fig_sizes_honours_defaults_without_the_env_gate() {
        // the env var is absent in the test environment; the defaults pass
        // through unchanged (sorted)
        if std::env::var_os("SMST_FIG_N").is_none() {
            assert_eq!(fig_sizes(&[16, 24, 32]), vec![16, 24, 32]);
        }
    }

    #[test]
    fn engine_memory_sweep_matches_the_sequential_figure() {
        // steps == 0 measures the freshly marked configuration — exactly
        // what the sequential figure reports; bits must agree on the same
        // (n, seed)
        let seq = crate::memory_sweep(&[32], 3);
        let engine = engine_memory_sweep(&[32], 3, &EngineConfig::new().threads(2), 0);
        assert_eq!(engine[0].max_bits, seq[0].paper_bits);
        assert!(engine[0].words <= seq[0].paper_words + 1e-9);
    }
}
