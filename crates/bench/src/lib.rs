//! Shared experiment drivers for the benchmark harness.
//!
//! Each public function regenerates one of the paper's evaluation artifacts
//! (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! recorded results). The `bin` targets print the tables; the `benches/`
//! targets time the underlying primitives with the in-repo [`harness`]
//! (Criterion is unavailable in the offline build environment).

#![forbid(unsafe_code)]

pub mod engine_metrics;
pub mod harness;

use smst_core::faults::FaultKind;
use smst_core::scheme::{run_sync_fault_experiment, MstVerificationScheme};
use smst_core::Marker;
use smst_graph::generators::random_connected_graph;
use smst_graph::mst::kruskal;
use smst_graph::NodeId;
use smst_labeling::kkp::KkpMstScheme;
use smst_labeling::scheme::max_label_bits;
use smst_labeling::{Instance, OneRoundScheme};
use smst_selfstab::{SelfStabilizingMst, Variant};
use smst_sim::FaultPlan;

/// Builds a correct MST instance on a random connected graph.
pub fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
    let g = random_connected_graph(n, m, seed);
    let tree = kruskal(&g).rooted_at(&g, NodeId(0)).expect("connected");
    Instance::from_tree(g, &tree)
}

/// One row of Table 1: a self-stabilizing MST construction variant with its
/// measured stabilization time and memory.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The variant (paper / 1-round labels / recompute checker).
    pub variant: Variant,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Measured stabilization rounds from an adversarial configuration.
    pub stabilization_rounds: u64,
    /// Maximum bits per node.
    pub memory_bits: u64,
}

/// Regenerates Table 1: stabilization time and memory of the three
/// self-stabilizing MST constructions, for each graph size.
pub fn table1(sizes: &[usize], seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = random_connected_graph(n, 3 * n, seed);
        for variant in Variant::all() {
            let outcome = SelfStabilizingMst::new(variant).stabilize_from_garbage(&g, seed);
            assert!(outcome.output_correct, "{variant:?} failed to stabilize");
            rows.push(Table1Row {
                variant,
                n,
                m: g.edge_count(),
                stabilization_rounds: outcome.total_rounds(),
                memory_bits: outcome.memory_bits_per_node,
            });
        }
    }
    rows
}

/// One point of the detection-time figure.
#[derive(Debug, Clone)]
pub struct DetectionPoint {
    /// Number of nodes.
    pub n: usize,
    /// Maximum degree of the graph.
    pub max_degree: usize,
    /// Rounds from fault injection to the first alarm (synchronous).
    pub detection_rounds: usize,
    /// Hop distance from the fault to the closest alarming node.
    pub detection_distance: usize,
}

/// Regenerates the detection-time figure: inject a single stored-piece fault
/// into a correct, marker-labelled instance and measure the synchronous
/// detection time (Theorem 8.5's `O(log² n)`-flavoured quantity; see
/// `DESIGN.md` on the extra logarithmic factor of the stop-and-wait train).
pub fn detection_sweep(sizes: &[usize], seed: u64) -> Vec<DetectionPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let inst = mst_instance(n, 3 * n, seed);
        let plan = FaultPlan::single(NodeId(n / 2));
        let outcome = run_sync_fault_experiment(&inst, &plan, FaultKind::StoredPieceWeight, seed);
        points.push(DetectionPoint {
            n,
            max_degree: inst.graph.max_degree(),
            detection_rounds: outcome.report.detection_time.unwrap_or(usize::MAX),
            detection_distance: outcome.report.max_detection_distance,
        });
    }
    points
}

/// One point of the detection-locality figure (`O(f log n)` detection
/// distance).
#[derive(Debug, Clone)]
pub struct LocalityPoint {
    /// Number of injected faults `f`.
    pub faults: usize,
    /// Number of nodes.
    pub n: usize,
    /// Maximum hop distance from a fault to the closest alarming node.
    pub max_detection_distance: usize,
}

/// Regenerates the detection-locality figure: inject `f` faults and measure
/// the maximum distance from a fault to the closest alarming node.
pub fn locality_sweep(n: usize, fault_counts: &[usize], seed: u64) -> Vec<LocalityPoint> {
    let mut points = Vec::new();
    for &f in fault_counts {
        let inst = mst_instance(n, 3 * n, seed);
        let plan = FaultPlan::random(n, f, seed + f as u64);
        let outcome = run_sync_fault_experiment(&inst, &plan, FaultKind::SpDistance, seed);
        points.push(LocalityPoint {
            faults: f,
            n,
            max_detection_distance: outcome.report.max_detection_distance,
        });
    }
    points
}

/// One point of the memory figure.
#[derive(Debug, Clone)]
pub struct MemoryPoint {
    /// Number of nodes.
    pub n: usize,
    /// Maximum register bits of the paper's scheme (label + verifier).
    pub paper_bits: u64,
    /// Maximum label bits of the `O(log² n)` 1-round baseline.
    pub one_round_bits: u64,
    /// `paper_bits / log₂ n` — constant for the paper's scheme.
    pub paper_words: f64,
    /// `one_round_bits / log₂ n` — grows like `log n` for the baseline.
    pub one_round_words: f64,
}

/// Regenerates the memory figure: per-node memory of the paper's scheme vs.
/// the `O(log² n)`-bit 1-round baseline.
pub fn memory_sweep(sizes: &[usize], seed: u64) -> Vec<MemoryPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let inst = mst_instance(n, 3 * n, seed);
        let scheme = MstVerificationScheme::new();
        let (labels, _) = scheme.mark(&inst).expect("correct instance");
        let verifier = scheme.verifier(&inst, labels);
        let paper_bits = verifier
            .network()
            .memory_bits(&verifier)
            .into_iter()
            .max()
            .unwrap_or(0);
        let kkp_labels = KkpMstScheme.mark(&inst).expect("correct instance");
        let one_round_bits = max_label_bits(&KkpMstScheme, &inst, &kkp_labels);
        let log_n = (n as f64).log2();
        points.push(MemoryPoint {
            n,
            paper_bits,
            one_round_bits,
            paper_words: paper_bits as f64 / log_n,
            one_round_words: one_round_bits as f64 / log_n,
        });
    }
    points
}

/// One point of the construction-time figure.
#[derive(Debug, Clone)]
pub struct ConstructionPoint {
    /// Number of nodes.
    pub n: usize,
    /// SYNC_MST rounds (Theorem 4.4: `O(n)`).
    pub sync_mst_rounds: u64,
    /// Marker rounds (label assignment, `O(n)`).
    pub marker_rounds: u64,
    /// `total / n` — roughly constant when the construction is linear.
    pub rounds_per_node: f64,
}

/// Regenerates the construction-time figure: SYNC_MST + marker rounds as a
/// function of `n`.
pub fn construction_sweep(sizes: &[usize], seed: u64) -> Vec<ConstructionPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let inst = mst_instance(n, 3 * n, seed);
        let (_, report) = Marker.label(&inst).expect("correct instance");
        points.push(ConstructionPoint {
            n,
            sync_mst_rounds: report.construction_rounds,
            marker_rounds: report.marker_rounds,
            rounds_per_node: report.total_rounds() as f64 / n as f64,
        });
    }
    points
}

/// The lower-bound demonstration (§9, Lemma 9.1): build two blow-up instances
/// `G′(τ)` that share the same topology, the same candidate components and
/// the same labels-visible structure, and differ **only** in one edge weight
/// placed on the heavy middle edge of a blown-up path — in one instance the
/// candidate tree is the MST, in the other it is not. A verifier whose
/// detection radius around the original nodes is `k ≤ τ` sees identical
/// views in both instances and therefore cannot reject the bad one, while the
/// paper's (Θ(log n)-round, O(log n)-bit) verifier does; this is the
/// mechanism behind the Ω(log n)-time lower bound at O(log n) bits.
#[derive(Debug, Clone)]
pub struct LowerBoundPoint {
    /// The blow-up parameter τ.
    pub tau: usize,
    /// The probe radius `k`.
    pub radius: usize,
    /// Whether radius-`k` views at the original nodes distinguish the non-MST
    /// instance from the MST instance.
    pub distinguishable: bool,
}

/// Regenerates the lower-bound figure.
pub fn lower_bound_sweep(tau: usize, seed: u64) -> Vec<LowerBoundPoint> {
    use smst_graph::blowup::blowup;
    use smst_graph::WeightedGraph;
    let g = random_connected_graph(8, 16, seed);
    let mst = kruskal(&g);
    let tree = mst.rooted_at(&g, NodeId(0)).expect("connected");
    // second weight assignment: raise one tree edge above every other weight,
    // so the *same* candidate tree is no longer minimal
    let heavy_edge = tree.edges()[0];
    let max_w = g.edges().iter().map(|e| e.weight).max().unwrap_or(1);
    let mut g_bad = WeightedGraph::new();
    for v in g.nodes() {
        g_bad.add_node_with_id(g.id(v));
    }
    for (eid, e) in g.edge_entries() {
        let w = if eid == heavy_edge {
            max_w + 1000
        } else {
            e.weight
        };
        g_bad.add_edge(e.u, e.v, w).expect("copying edges");
    }
    let tree_bad = smst_graph::RootedTree::from_edges(&g_bad, &tree.edges(), tree.root())
        .expect("same edge set");
    assert!(!smst_graph::mst::is_mst(&g_bad, &tree_bad.edges()));

    let correct = blowup(&g, &tree, tau);
    let tampered = blowup(&g_bad, &tree_bad, tau);

    // radius-k view of a node: distances, incident-edge weights visible within
    // the radius, and component-pointer orientation — everything a k-round
    // verifier anchored at that node can learn
    let view = |b: &smst_graph::blowup::BlowupResult, v: NodeId, k: usize| {
        let d = b.graph.bfs_distances(v);
        let mut sig: Vec<(usize, u64, bool)> = b
            .graph
            .nodes()
            .filter(|u| d[u.index()] <= k)
            .map(|u| {
                let w: u64 = b
                    .graph
                    .incident_edges(u)
                    .iter()
                    .filter(|&&e| d[b.graph.edge(e).other(u).index()] <= k)
                    .map(|&e| b.graph.weight(e))
                    .sum();
                (d[u.index()], w, b.components.pointer(u).is_some())
            })
            .collect();
        sig.sort_unstable();
        sig
    };

    let originals: Vec<NodeId> = g.nodes().collect();
    (0..=2 * tau + 1)
        .map(|radius| {
            let distinguishable = originals
                .iter()
                .any(|&v| view(&correct, v, radius) != view(&tampered, v, radius));
            LowerBoundPoint {
                tau,
                radius,
                distinguishable,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_orders_variants() {
        let rows = table1(&[24], 1);
        assert_eq!(rows.len(), 3);
        let get = |v: Variant| rows.iter().find(|r| r.variant == v).unwrap().clone();
        let paper = get(Variant::Paper);
        let recompute = get(Variant::Recompute);
        assert!(recompute.stabilization_rounds > paper.stabilization_rounds);
    }

    #[test]
    fn detection_is_polylogarithmic_in_practice() {
        let points = detection_sweep(&[16, 32], 2);
        for p in &points {
            assert!(
                p.detection_rounds < p.n * p.n,
                "detection should beat Θ(n²)"
            );
        }
    }

    #[test]
    fn memory_sweep_shows_the_gap_in_words() {
        let points = memory_sweep(&[32, 256], 3);
        // the baseline's words-per-log-n grows; the paper's stays bounded
        assert!(points[1].one_round_words > points[0].one_round_words * 1.05);
        assert!(points[1].paper_words < points[0].paper_words * 1.5);
    }

    #[test]
    fn construction_is_linear() {
        let points = construction_sweep(&[32, 128], 4);
        for p in &points {
            assert!(p.rounds_per_node < 120.0);
        }
    }

    #[test]
    fn lower_bound_views_are_identical_up_to_tau() {
        let tau = 3;
        let points = lower_bound_sweep(tau, 5);
        for p in &points {
            if p.radius <= tau {
                assert!(
                    !p.distinguishable,
                    "radius {} must not distinguish",
                    p.radius
                );
            }
        }
        assert!(
            points.last().unwrap().distinguishable,
            "the full radius must distinguish"
        );
        let first = points.iter().position(|p| p.distinguishable).unwrap();
        assert_eq!(first, tau + 1, "the threshold radius is exactly τ + 1");
    }
}
