//! Regenerates the memory figure: O(log n) bits for the paper's scheme vs.
//! O(log² n) bits for the 1-round baseline.
fn main() {
    let sizes = [32usize, 64, 128, 256, 512, 1024];
    println!("Per-node memory (bits, and 'words' of log n bits)");
    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>16}",
        "n", "paper bits", "paper words", "1-round bits", "1-round words"
    );
    for p in smst_bench::memory_sweep(&sizes, 11) {
        println!(
            "{:>6} {:>14} {:>16.1} {:>14} {:>16.1}",
            p.n, p.paper_bits, p.paper_words, p.one_round_bits, p.one_round_words
        );
    }
}
