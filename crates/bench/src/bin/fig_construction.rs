//! Regenerates the construction-time figure: SYNC_MST + marker rounds are O(n).
fn main() {
    let sizes = [32usize, 64, 128, 256, 512, 1024];
    println!("Construction + marker time (Theorem 4.4 / Corollary 6.11)");
    println!(
        "{:>6} {:>18} {:>15} {:>18}",
        "n", "SYNC_MST rounds", "marker rounds", "rounds per node"
    );
    for p in smst_bench::construction_sweep(&sizes, 13) {
        println!(
            "{:>6} {:>18} {:>15} {:>18.2}",
            p.n, p.sync_mst_rounds, p.marker_rounds, p.rounds_per_node
        );
    }
}
