//! Regenerates the detection-time figure (Theorem 8.5): rounds from a fault
//! to the first alarm, as a function of n — engine-native, so the sweep
//! parallelizes across the worker pool and scales to 100k+ nodes.
//!
//! Sizes are small by default; set `SMST_FIG_N=<n>` to extend the sweep
//! (doubling sizes up to `n`) on a multi-core host.

use smst_bench::engine_metrics::{engine_detection_sweep, fig_sizes};
use smst_engine::{EngineConfig, LayoutPolicy};

fn main() {
    let sizes = fig_sizes(&[16, 24, 32, 48, 64]);
    let engine = EngineConfig::new()
        .threads(smst_engine::default_threads())
        .layout(LayoutPolicy::Rcm);
    println!(
        "Detection time of the paper's verifier (engine-native, single stored-piece fault, {})",
        engine.describe()
    );
    println!(
        "{:>8} {:>6} {:>18} {:>20} {:>14}",
        "n", "Δ", "detection steps", "steps / log^3 n", "distance"
    );
    for p in engine_detection_sweep(&sizes, 7, &engine) {
        let l = (p.n as f64).log2();
        let steps = p
            .detection_steps
            .map(|t| t.to_string())
            .unwrap_or_else(|| "missed".to_string());
        let normalized = p
            .detection_steps
            .map(|t| format!("{:.2}", t as f64 / (l * l * l)))
            .unwrap_or_else(|| "—".to_string());
        let distance = if p.detection_steps.is_some() {
            p.detection_distance.to_string()
        } else {
            "—".to_string()
        };
        println!(
            "{:>8} {:>6} {:>18} {:>20} {:>14}",
            p.n, p.max_degree, steps, normalized, distance
        );
    }
}
