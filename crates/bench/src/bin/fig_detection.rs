//! Regenerates the detection-time figure (Theorem 8.5): rounds from a fault
//! to the first alarm, as a function of n.
fn main() {
    let sizes = [16usize, 24, 32, 48, 64];
    println!("Detection time of the paper's verifier (synchronous, single stored-piece fault)");
    println!(
        "{:>6} {:>6} {:>18} {:>20} {:>14}",
        "n", "Δ", "detection rounds", "rounds / log^3 n", "distance"
    );
    for p in smst_bench::detection_sweep(&sizes, 7) {
        let l = (p.n as f64).log2();
        println!(
            "{:>6} {:>6} {:>18} {:>20.2} {:>14}",
            p.n,
            p.max_degree,
            p.detection_rounds,
            p.detection_rounds as f64 / (l * l * l),
            p.detection_distance
        );
    }
}
