//! Regenerates the detection-time figure (Theorem 8.5): rounds from a fault
//! to the first alarm, as a function of n — engine-native, so the sweep
//! parallelizes across the worker pool and scales to 100k+ nodes.
//!
//! The largest sweep point is additionally replayed **observed**: the same
//! scenario re-run with per-round accounting attached (a
//! [`RecordingObserver`] teed with the env-gated telemetry sink), its
//! stream promoted to `BENCH_rounds_detection.json` — so the figure's
//! headline point ships with its full per-round phase split.
//!
//! Sizes are small by default; set `SMST_FIG_N=<n>` to extend the sweep
//! (doubling sizes up to `n`) on a multi-core host.

use smst_bench::engine_metrics::{engine_detection_sweep, fig_sizes, mst_verifier_for};
use smst_core::faults::{corrupt, FaultKind};
use smst_core::MstVerificationScheme;
use smst_engine::{EngineConfig, GraphFamily, LayoutPolicy, ScenarioSpec, StopCondition};
use smst_sim::{RecordingObserver, TeeObserver};
use smst_telemetry::{RoundsArtifact, Telemetry};

fn main() {
    let sizes = fig_sizes(&[16, 24, 32, 48, 64]);
    let engine = EngineConfig::new()
        .threads(smst_engine::default_threads())
        .layout(LayoutPolicy::Rcm);
    println!(
        "Detection time of the paper's verifier (engine-native, single stored-piece fault, {})",
        engine.describe()
    );
    println!(
        "{:>8} {:>6} {:>18} {:>20} {:>14}",
        "n", "Δ", "detection steps", "steps / log^3 n", "distance"
    );
    for p in engine_detection_sweep(&sizes, 7, &engine) {
        let l = (p.n as f64).log2();
        let steps = p
            .detection_steps
            .map(|t| t.to_string())
            .unwrap_or_else(|| "missed".to_string());
        let normalized = p
            .detection_steps
            .map(|t| format!("{:.2}", t as f64 / (l * l * l)))
            .unwrap_or_else(|| "—".to_string());
        let distance = if p.detection_steps.is_some() {
            p.detection_distance.to_string()
        } else {
            "—".to_string()
        };
        println!(
            "{:>8} {:>6} {:>18} {:>20} {:>14}",
            p.n, p.max_degree, steps, normalized, distance
        );
    }
    observed_replay(*sizes.last().expect("at least one size"), 7, &engine);
}

/// Replays one sweep point with per-round accounting attached and writes
/// the stream to `BENCH_rounds_detection.json` (plus sampled trace lines
/// when `SMST_TRACE_SAMPLE` is set).
fn observed_replay(n: usize, seed: u64, engine: &EngineConfig) {
    let warmup = MstVerificationScheme::sync_budget(n);
    let budget = warmup + 4 * MstVerificationScheme::sync_budget(n) + 1;
    let spec = ScenarioSpec::new(GraphFamily::RandomConnected { n, m: 3 * n })
        .engine(engine.clone())
        .seed(seed)
        .fault_burst(warmup, 1, seed)
        .until(StopCondition::FirstAlarm);
    let verifier = mst_verifier_for(&spec.build_graph());
    let telemetry = Telemetry::from_env("fig_detection");
    let run = format!("fam=rand:{n}x{m};gs={seed};at={warmup}", m = 3 * n);
    let recording = RecordingObserver::new();
    let mut tee = TeeObserver::new().with(Box::new(recording.clone()));
    if let Some(observer) = telemetry.observer(&run) {
        tee.push(observer);
    }
    let mut i = 0u64;
    let outcome = spec
        .run_observed(
            &verifier,
            |_v, state| {
                corrupt(state, FaultKind::StoredPieceWeight, seed.wrapping_add(i));
                i += 1;
            },
            budget,
            Box::new(tee),
        )
        .expect("the sweep envelope is valid");
    let stats = recording.stats();
    assert_eq!(
        stats.len(),
        outcome.report.steps_run,
        "one record per executed step"
    );
    // the warm-up dominates the step count (the polylog budget is ~10^5
    // steps even at small n); the artifact keeps the window around the
    // fault — a short converged prefix plus everything from injection to
    // the alarm — instead of megabytes of identical warm-up rounds
    let window: Vec<_> = stats.into_iter().skip(warmup.saturating_sub(8)).collect();
    let mut artifact = RoundsArtifact::new("rounds_detection");
    artifact.push(&format!("detection/random/{n}"), &run, window);
    artifact.finish();
    telemetry.flush().expect("flushing the fig_detection trace");
}
