//! Regenerates the detection-locality figure: detection distance O(f log n).
fn main() {
    let n = 64usize;
    let faults = [1usize, 2, 4, 8, 16];
    println!("Detection distance with f faults (n = {n})");
    println!(
        "{:>6} {:>24} {:>18}",
        "f", "max detection distance", "f · log2 n"
    );
    for p in smst_bench::locality_sweep(n, &faults, 21) {
        println!(
            "{:>6} {:>24} {:>18.1}",
            p.faults,
            p.max_detection_distance,
            p.faults as f64 * (n as f64).log2()
        );
    }
}
