//! Regenerates the detection-locality figure: detection distance O(f log n)
//! — engine-native, so the sweep parallelizes across the worker pool and
//! scales to 100k+ nodes.
//!
//! The node count is small by default; set `SMST_FIG_N=<n>` to run the
//! sweep at `n` nodes on a multi-core host.

use smst_bench::engine_metrics::{engine_locality_sweep, fig_size_override};
use smst_engine::LayoutPolicy;

fn main() {
    let n = fig_size_override().unwrap_or(64);
    let faults = [1usize, 2, 4, 8, 16];
    let threads = smst_engine::default_threads();
    println!("Detection distance with f faults (engine-native, n = {n}, {threads} threads)");
    println!(
        "{:>6} {:>24} {:>18}",
        "f", "max detection distance", "f · log2 n"
    );
    for p in engine_locality_sweep(n, &faults, 21, threads, LayoutPolicy::Rcm) {
        println!(
            "{:>6} {:>24} {:>18.1}",
            p.faults,
            p.max_detection_distance,
            p.faults as f64 * (n as f64).log2()
        );
    }
}
