//! Regenerates the detection-locality figure: detection distance O(f log n)
//! — engine-native, so the sweep parallelizes across the worker pool and
//! scales to 100k+ nodes.
//!
//! The node count is small by default; set `SMST_FIG_N=<n>` to run the
//! sweep at `n` nodes on a multi-core host.

use smst_bench::engine_metrics::{engine_locality_sweep, fig_size_override};
use smst_engine::{EngineConfig, LayoutPolicy};

fn main() {
    let n = fig_size_override().unwrap_or(64);
    let faults = [1usize, 2, 4, 8, 16];
    let engine = EngineConfig::new()
        .threads(smst_engine::default_threads())
        .layout(LayoutPolicy::Rcm);
    println!(
        "Detection distance with f faults (engine-native, n = {n}, {})",
        engine.describe()
    );
    println!(
        "{:>6} {:>24} {:>18}",
        "f", "max detection distance", "f · log2 n"
    );
    for p in engine_locality_sweep(n, &faults, 21, &engine) {
        println!(
            "{:>6} {:>24} {:>18.1}",
            p.faults,
            p.max_detection_distance,
            p.faults as f64 * (n as f64).log2()
        );
    }
}
