//! Regenerates the lower-bound demonstration of §9: on the blow-up G'(τ), a
//! verifier probing fewer than ~τ hops cannot distinguish a tampered (non-MST)
//! instance from a correct one.
fn main() {
    let tau = 4usize;
    println!(
        "Edge→path blow-up with τ = {tau}: can radius-k views distinguish a non-MST instance?"
    );
    println!("{:>8} {:>18}", "radius", "distinguishable");
    for p in smst_bench::lower_bound_sweep(tau, 3) {
        println!("{:>8} {:>18}", p.radius, p.distinguishable);
    }
}
