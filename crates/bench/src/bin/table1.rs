//! Regenerates Table 1 of the paper: self-stabilizing MST construction
//! algorithms compared by stabilization time and memory per node.
fn main() {
    let sizes = [32usize, 64, 128, 256];
    println!(
        "Table 1 — self-stabilizing MST construction (measured on random connected graphs, m = 3n)"
    );
    println!(
        "{:<38} {:>6} {:>7} {:>22} {:>16}",
        "algorithm", "n", "m", "stabilization rounds", "bits per node"
    );
    for row in smst_bench::table1(&sizes, 42) {
        println!(
            "{:<38} {:>6} {:>7} {:>22} {:>16}",
            row.variant.name(),
            row.n,
            row.m,
            row.stabilization_rounds,
            row.memory_bits
        );
    }
}
