//! A minimal wall-clock timing harness.
//!
//! The offline build environment cannot fetch Criterion, so the `benches/`
//! targets use `harness = false` and this module instead: warm-up, a fixed
//! number of timed iterations, and min / mean / max reporting. The numbers
//! are indicative, not statistically rigorous — for the repository's
//! purposes (ordering variants, spotting regressions of 2× and up, and the
//! sequential-vs-sharded speedup comparison) that is enough.

use std::hint::black_box;
use std::time::Instant;

/// Timing summary of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Case name (`group/case`).
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Mean iteration, nanoseconds.
    pub mean_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u128,
}

impl BenchResult {
    /// Mean iteration time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.mean_ns / 1e9
    }
}

/// Times `f` for `iters` iterations (after one untimed warm-up call),
/// prints a summary line, and returns the measurements.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> BenchResult {
    assert!(iters > 0, "at least one iteration is required");
    black_box(f());
    let mut min_ns = u128::MAX;
    let mut max_ns = 0u128;
    let mut total_ns = 0u128;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos();
        min_ns = min_ns.min(ns);
        max_ns = max_ns.max(ns);
        total_ns += ns;
    }
    let result = BenchResult {
        name: name.to_string(),
        iters,
        min_ns,
        mean_ns: total_ns as f64 / f64::from(iters),
        max_ns,
    };
    println!(
        "{:<44} {:>10} {:>10} {:>10}   ({} iters)",
        result.name,
        format_ns(result.min_ns as f64),
        format_ns(result.mean_ns),
        format_ns(result.max_ns as f64),
        result.iters,
    );
    result
}

/// Prints the header matching [`bench`]'s output columns.
pub fn header(group: &str) {
    println!("\n== {group} ==");
    println!("{:<44} {:>10} {:>10} {:>10}", "case", "min", "mean", "max");
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let r = bench("test/spin", 5, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(r.iters, 5);
        assert!(r.min_ns <= r.mean_ns as u128 + 1);
        assert!(r.mean_ns <= r.max_ns as f64 + 1.0);
        assert!(r.mean_secs() > 0.0);
    }

    #[test]
    fn formatting_covers_all_scales() {
        assert!(format_ns(5e2).ends_with("ns"));
        assert!(format_ns(5e4).ends_with("µs"));
        assert!(format_ns(5e7).ends_with("ms"));
        assert!(format_ns(5e9).ends_with('s'));
    }
}
