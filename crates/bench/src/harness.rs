//! A minimal wall-clock timing harness with machine-readable output.
//!
//! The offline build environment cannot fetch Criterion, so the `benches/`
//! targets use `harness = false` and this module instead: warm-up, a fixed
//! number of timed iterations, and min / median / mean / max reporting. The
//! numbers are indicative, not statistically rigorous — for the
//! repository's purposes (ordering variants, spotting regressions of 2×
//! and up, and the sequential-vs-sharded speedup comparison) that is
//! enough.
//!
//! To track the perf trajectory **across PRs**, group benches through
//! [`BenchGroup`]: on [`BenchGroup::finish`] every case's per-config
//! median/min/mean/max (in ns) is written to `BENCH_<group>.json` (in
//! `$SMST_BENCH_DIR`, default the working directory), which CI uploads as
//! an artifact. Benches honour `$SMST_BENCH_SMOKE` to shrink their sizes
//! for single-core smoke runs — see [`smoke_mode`].

use std::hint::black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Timing summary of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Case name (`group/case`).
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Median iteration, nanoseconds.
    pub median_ns: u128,
    /// Mean iteration, nanoseconds.
    pub mean_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u128,
}

impl BenchResult {
    /// Mean iteration time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.mean_ns / 1e9
    }

    /// Median iteration time in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns as f64 / 1e9
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"iters\":{},\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{:.1},\"max_ns\":{}}}",
            json_string(&self.name),
            self.iters,
            self.min_ns,
            self.median_ns,
            self.mean_ns,
            self.max_ns
        )
    }
}

/// Times `f` for `iters` iterations (after one untimed warm-up call),
/// prints a summary line, and returns the measurements.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> BenchResult {
    assert!(iters > 0, "at least one iteration is required");
    black_box(f());
    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed().as_nanos());
    }
    let total_ns: u128 = samples.iter().sum();
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    let result = BenchResult {
        name: name.to_string(),
        iters,
        min_ns: sorted[0],
        median_ns: median_of(&sorted),
        mean_ns: total_ns as f64 / f64::from(iters),
        max_ns: *sorted.last().unwrap(),
    };
    println!(
        "{:<44} {:>10} {:>10} {:>10} {:>10}   ({} iters)",
        result.name,
        format_ns(result.min_ns as f64),
        format_ns(result.median_ns as f64),
        format_ns(result.mean_ns),
        format_ns(result.max_ns as f64),
        result.iters,
    );
    result
}

/// The median of an ascending sample slice: the middle sample for odd
/// lengths, the midpoint of the two middle samples for even lengths.
/// Taking `sorted[len / 2]` alone — the upper middle — biased every even-
/// iteration-count trajectory number upward.
fn median_of(sorted: &[u128]) -> u128 {
    debug_assert!(!sorted.is_empty());
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2
    } else {
        sorted[mid]
    }
}

/// Prints the header matching [`bench()`]'s output columns.
pub fn header(group: &str) {
    println!("\n== {group} ==");
    println!(
        "{:<44} {:>10} {:>10} {:>10} {:>10}",
        "case", "min", "median", "mean", "max"
    );
}

/// A named collection of bench cases that serializes itself to
/// `BENCH_<group>.json` so the perf trajectory is tracked across PRs.
#[derive(Debug)]
pub struct BenchGroup {
    group: String,
    results: Vec<BenchResult>,
    /// Non-timing numbers worth tracking alongside the timings (halo
    /// sizes, exchanged bytes, …), serialized under `"meta"`.
    meta: Vec<(String, f64)>,
}

impl BenchGroup {
    /// Starts a group (prints the column header).
    pub fn new(group: &str) -> Self {
        header(group);
        BenchGroup {
            group: group.to_string(),
            results: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Runs one case through [`bench()`] and records its result.
    pub fn bench<R>(&mut self, case: &str, iters: u32, f: impl FnMut() -> R) -> BenchResult {
        let result = bench(&format!("{}/{case}", self.group), iters, f);
        self.results.push(result.clone());
        result
    }

    /// Records a non-timing metric in the artifact's `"meta"` object (and
    /// prints it, so console runs show it too).
    pub fn record_meta(&mut self, key: &str, value: f64) {
        println!("  meta {key} = {value}");
        self.meta.push((key.to_string(), value));
    }

    /// The recorded results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the group as a JSON object.
    pub fn to_json(&self) -> String {
        let results: Vec<String> = self.results.iter().map(BenchResult::to_json).collect();
        let meta: Vec<String> = self
            .meta
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_string(k)))
            .collect();
        format!(
            "{{\"schema\":\"smst-bench-v1\",\"group\":{},\"meta\":{{{}}},\"results\":[{}]}}\n",
            json_string(&self.group),
            meta.join(","),
            results.join(",")
        )
    }

    /// Writes `BENCH_<group>.json` into `dir` and returns its path.
    ///
    /// This is the injectable core of [`write_json`](Self::write_json):
    /// tests pass a directory instead of mutating the process-global
    /// `SMST_BENCH_DIR` (env mutation in a multithreaded test harness is a
    /// flake, and UB-adjacent in newer rustc).
    pub fn write_json_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.group));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Writes `BENCH_<group>.json` into [`bench_dir`] (the binary-level
    /// `$SMST_BENCH_DIR` default) and returns its path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        self.write_json_to(&bench_dir())
    }

    /// Writes the JSON artifact, printing where it went (panics on I/O
    /// errors — a bench run that silently loses its results is worse than
    /// one that fails).
    pub fn finish(self) -> PathBuf {
        let path = self.write_json().expect("writing the bench JSON artifact");
        println!("  results -> {}", path.display());
        path
    }
}

/// Where `BENCH_*.json` artifacts are written: `$SMST_BENCH_DIR` when set,
/// otherwise the current directory.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("SMST_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(".").to_path_buf())
}

/// `true` when `$SMST_BENCH_SMOKE` is set (to anything but `0`): benches
/// shrink to smoke-test sizes so CI can exercise them and upload the JSON
/// artifacts without a multi-minute run.
pub fn smoke_mode() -> bool {
    std::env::var_os("SMST_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Minimal JSON string escaping (bench case names are plain ASCII, but a
/// stray quote must not corrupt the artifact). Public so sibling artifact
/// writers (the adversary campaign engine's `CAMPAIGN_*.json`) share one
/// escaping rule with the bench JSONs.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let r = bench("test/spin", 5, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(r.iters, 5);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.max_ns);
        assert!(r.min_ns <= r.mean_ns as u128 + 1);
        assert!(r.mean_ns <= r.max_ns as f64 + 1.0);
        assert!(r.mean_secs() > 0.0);
        assert!(r.median_secs() > 0.0);
    }

    #[test]
    fn formatting_covers_all_scales() {
        assert!(format_ns(5e2).ends_with("ns"));
        assert!(format_ns(5e4).ends_with("µs"));
        assert!(format_ns(5e7).ends_with("ms"));
        assert!(format_ns(5e9).ends_with('s'));
    }

    #[test]
    fn group_serializes_valid_json() {
        let mut group = BenchGroup::new("unit_test_group");
        group.bench("case_a", 2, || 1 + 1);
        group.bench("case_b", 3, || 2 * 2);
        group.record_meta("halo_entries", 42.0);
        let json = group.to_json();
        assert!(json.starts_with("{\"schema\":\"smst-bench-v1\",\"group\":\"unit_test_group\""));
        assert_eq!(json.matches("\"name\":").count(), 2);
        assert_eq!(json.matches("\"median_ns\":").count(), 2);
        assert!(json.contains("\"meta\":{\"halo_entries\":42}"));
        // handwritten serializer: brackets and braces must balance
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn median_averages_the_two_middle_samples_on_even_counts() {
        // regression: `sorted[len / 2]` alone is the *upper* middle, which
        // biased every even-iteration-count median upward
        assert_eq!(median_of(&[10]), 10);
        assert_eq!(median_of(&[10, 20]), 15);
        assert_eq!(median_of(&[10, 20, 30]), 20);
        assert_eq!(median_of(&[10, 20, 30, 100]), 25);
        assert_eq!(median_of(&[1, 2, 3, 4, 5, 6]), 3, "(3 + 4) / 2 rounds down");
        // an outlier-heavy tail must not drag an even-count median up
        assert_eq!(median_of(&[1, 1, 1_000_000, 1_000_000_000]), 500_000);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn group_writes_the_artifact_file() {
        // regression: this used to `set_var("SMST_BENCH_DIR")` — process-
        // global env mutation races the other test threads reading
        // `bench_dir()`; the injectable `write_json_to` needs no env at all
        let dir = std::env::temp_dir().join("smst_bench_harness_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut group = BenchGroup::new("artifact_roundtrip");
        group.bench("spin", 1, || 7u64);
        let path = group.write_json_to(&dir).unwrap();
        assert_eq!(path.parent().unwrap(), dir.as_path());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"group\":\"artifact_roundtrip\""));
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("BENCH_"));
        std::fs::remove_file(path).ok();
    }
}
