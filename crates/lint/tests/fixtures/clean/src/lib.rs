#![forbid(unsafe_code)]

pub fn compliant() -> u64 {
    42
}
