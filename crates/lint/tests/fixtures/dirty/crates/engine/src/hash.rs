// A hash-ordered container in a deterministic module: `hash-order`.
use std::collections::HashMap;

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}
