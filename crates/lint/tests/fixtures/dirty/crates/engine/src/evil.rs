// `unsafe` outside the allowlisted core, with no SAFETY comment:
// `unsafe-file` + `safety-comment` on the same line.
pub fn sneak(p: *const u32) -> u32 {
    unsafe { *p }
}
