// The allowlisted unsafe core: a documented site passes, an
// undocumented one still needs its SAFETY comment.
pub fn documented(p: *const u32) -> u32 {
    // SAFETY: fixture — the caller pins `p` to a live allocation.
    unsafe { *p }
}

pub fn filler_a() -> u32 {
    1
}

pub fn filler_b() -> u32 {
    2
}

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}
