// The fixture acceptor registry: one live tag, one ghost with no
// writer (`schema-parity` at the ghost's const line).
pub const SCHEMA_GOOD: &str = "smst-good-v1";
pub const SCHEMA_GHOST: &str = "smst-ghost-v1";
