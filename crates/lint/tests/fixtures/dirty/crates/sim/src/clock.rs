// A wall-clock read on a deterministic path: `clock`.
pub fn step() -> std::time::Instant {
    std::time::Instant::now()
}
