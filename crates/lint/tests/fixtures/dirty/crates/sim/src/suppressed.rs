// One justified suppression, one reason-less suppression, one unused one.
pub fn observed() -> std::time::Instant {
    // smst-lint: allow(clock, reason = "fixture: observer-gated timing")
    std::time::Instant::now()
}

// smst-lint: allow(clock)
pub fn reasonless() -> u64 {
    0
}

// smst-lint: allow(rng, reason = "fixture: nothing to suppress here")
pub fn idle() -> u64 {
    1
}
