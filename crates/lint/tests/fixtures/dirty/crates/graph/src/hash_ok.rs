// The graph crate is not in the deterministic set: HashMap is fine here.
use std::collections::HashMap;

pub fn degree_index() -> HashMap<u32, u32> {
    HashMap::new()
}
