// Ambient randomness three ways: `rng` at each site.
use std::collections::hash_map::RandomState;

pub fn entropy() -> u64 {
    let mut rng = thread_rng();
    let x: u64 = random();
    x
}
