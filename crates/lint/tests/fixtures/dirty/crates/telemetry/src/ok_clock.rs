// Telemetry is on the clock allowlist: no diagnostic.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
