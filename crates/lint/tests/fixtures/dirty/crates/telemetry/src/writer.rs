// Emits one accepted tag and one orphan tag: `schema-parity` at the
// orphan's emitting site.
pub fn good_header() -> String {
    "{\"schema\":\"smst-good-v1\"}".to_string()
}

pub fn orphan_header() -> String {
    "{\"schema\":\"smst-orphan-v1\"}".to_string()
}
