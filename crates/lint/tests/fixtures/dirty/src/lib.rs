// A crate root with no crate-level unsafe attribute: `unsafe-attr`.
pub fn entry() -> u32 {
    7
}
