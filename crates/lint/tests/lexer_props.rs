//! Property tests for the lexer: the token classes that make the rule
//! engine trustworthy (strings and comments can never leak identifiers;
//! lifetimes are never chars; lines stay exact) hold over generated
//! inputs, not just the handwritten unit cases.

use proptest::prelude::*;
use smst_lint::lexer::{lex, TokenKind};

/// A safe content alphabet for raw-string bodies: quotes, hashes, and
/// newlines included (the characters that break naive lexers), but no
/// way to spell the `"###` closing delimiter because `#` never follows
/// `"` (index 1 maps `#`, index 0 maps `"`, and we drop that pairing
/// when building).
fn content_char(i: usize) -> char {
    const ALPHABET: [char; 10] = ['"', '#', 'a', 'z', '_', ' ', '\n', '\\', '\'', '/'];
    ALPHABET[i % ALPHABET.len()]
}

fn build_content(indices: &[usize]) -> String {
    let mut s = String::new();
    for &i in indices {
        let c = content_char(i);
        // never let `"` be followed by `#`: the only way to close an
        // `r###"…"###` literal early
        if c == '#' && s.ends_with('"') {
            s.push('x');
        }
        s.push(c);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn raw_strings_never_leak_identifiers(indices in proptest::collection::vec(0usize..10, 0..40)) {
        let content = build_content(&indices);
        let src = format!("let s = r###\"{content}\"###;\nInstant\n");
        let tokens = lex(&src);
        // the raw string is one Str token carrying the full literal
        let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert!(strs[0].text.contains(&content));
        // nothing inside the literal became an identifier: the only
        // idents are `let`, `s`, and the `Instant` after the string
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "s", "Instant"]);
        // and the trailing ident's line accounts for every newline in the body
        let newlines = content.matches('\n').count();
        let instant = tokens.iter().find(|t| t.text == "Instant").unwrap();
        prop_assert_eq!(instant.line, newlines + 2);
    }

    #[test]
    fn nested_block_comments_swallow_identifiers(depth in 1usize..6) {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("{open} Instant::now() thread_rng {close}\nafter\n");
        let tokens = lex(&src);
        prop_assert!(tokens.iter().all(|t| t.kind != TokenKind::Ident || t.text == "after"));
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::BlockComment).count(),
            1
        );
    }

    #[test]
    fn chars_and_lifetimes_never_misclassify(letter in 0usize..26, closed in proptest::bool::ANY) {
        let c = (b'a' + letter as u8) as char;
        let src = if closed {
            format!("let x = '{c}';\n")
        } else {
            format!("fn f<'{c}>(x: &'{c} str) {{}}\n")
        };
        let tokens = lex(&src);
        let chars = tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        let lifetimes = tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        if closed {
            prop_assert_eq!((chars, lifetimes), (1, 0));
        } else {
            prop_assert_eq!((chars, lifetimes), (0, 2));
        }
    }

    #[test]
    fn lines_stay_exact_through_leading_newlines(blank in 0usize..30) {
        let src = format!("{}unsafe {{ }}\n", "\n".repeat(blank));
        let tokens = lex(&src);
        let site = tokens.iter().find(|t| t.text == "unsafe").unwrap();
        prop_assert_eq!(site.line, blank + 1);
    }

    #[test]
    fn lexing_is_total_on_arbitrary_soup(indices in proptest::collection::vec(0usize..96, 0..120)) {
        // printable ASCII soup, including every delimiter the lexer
        // special-cases — must never panic, and every token must carry a
        // plausible line number
        let src: String = indices.iter().map(|&i| (32 + (i as u8 % 95)) as char).collect();
        let line_count = src.matches('\n').count() + 1;
        let tokens = lex(&src);
        for t in &tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count);
        }
    }
}
