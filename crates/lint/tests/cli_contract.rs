//! The `smst-lint` CLI exit-code contract, matching `smst-analyze`:
//! 0 clean, 1 unsuppressed diagnostics, 2 unreadable source or bad
//! usage. Also pins the `--format json` / `--out` artifact plumbing.

use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smst-lint"))
}

#[test]
fn clean_tree_exits_zero() {
    let out = lint()
        .args(["--root"])
        .arg(fixture("clean"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 diagnostics"), "{text}");
}

#[test]
fn diagnostics_exit_one() {
    let out = lint()
        .args(["--root"])
        .arg(fixture("dirty"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn unreadable_root_exits_two() {
    let out = lint()
        .args(["--root", "/nonexistent/smst-lint-root"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_usage_exits_two() {
    let out = lint().args(["--frmat", "json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lint().args(["--format", "yaml"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lint().args(["--root"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_format_and_out_dir_write_the_artifact() {
    let out_dir = std::env::temp_dir().join(format!("smst-lint-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    std::fs::create_dir_all(&out_dir).unwrap();
    let out = lint()
        .args(["--format", "json", "--name", "fixture", "--root"])
        .arg(fixture("dirty"))
        .arg("--out")
        .arg(&out_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let written = std::fs::read_to_string(out_dir.join("ANALYSIS_lint.json")).unwrap();
    // stdout and the artifact are the same bytes, and match the golden file
    assert_eq!(stdout, written);
    let golden = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ANALYSIS_lint.json"),
    )
    .unwrap();
    assert_eq!(written, golden);
    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn help_exits_zero() {
    let out = lint().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout).unwrap().contains("usage:"));
}
