//! The golden-file test: linting the dirty fixture tree under the
//! repo-default config must reproduce `tests/golden/ANALYSIS_lint.json`
//! byte-for-byte. Any rule, renderer, or sort-order change shows up here
//! as a diff against a reviewed artifact, not as silent drift.

use smst_lint::report::render_json;
use smst_lint::rules::LintConfig;
use std::path::Path;

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn dirty_fixture_artifact_is_pinned_byte_for_byte() {
    let run = smst_lint::lint_root(&fixture("dirty"), &LintConfig::repo_default()).unwrap();
    let rendered = render_json("fixture", run.files, &run.diagnostics);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ANALYSIS_lint.json");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        rendered,
        golden,
        "lint output drifted from {}; if the change is intentional, \
         regenerate the golden file with \
         `cargo run -p smst-lint -- --root crates/lint/tests/fixtures/dirty \
         --name fixture --format json`",
        golden_path.display()
    );
}

#[test]
fn dirty_fixture_hits_every_rule_class_once_or_more() {
    let run = smst_lint::lint_root(&fixture("dirty"), &LintConfig::repo_default()).unwrap();
    let fired: std::collections::BTreeSet<&str> = run.diagnostics.iter().map(|d| d.rule).collect();
    for rule in smst_lint::rules::RULES {
        assert!(
            fired.contains(rule),
            "rule {rule} never fired on the fixture"
        );
    }
    assert!(fired.contains(smst_lint::rules::RULE_BAD_SUPPRESSION));
    assert!(fired.contains(smst_lint::rules::RULE_UNUSED_SUPPRESSION));
    // exactly one diagnostic is suppressed, and it carries its reason
    let suppressed: Vec<_> = run.diagnostics.iter().filter(|d| d.suppressed).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(
        suppressed[0].reason.as_deref(),
        Some("fixture: observer-gated timing")
    );
}

#[test]
fn clean_fixture_is_empty() {
    let run = smst_lint::lint_root(&fixture("clean"), &LintConfig::repo_default()).unwrap();
    assert_eq!(run.files, 1);
    assert!(run.diagnostics.is_empty(), "{:?}", run.diagnostics);
    assert_eq!(run.unsuppressed(), 0);
}
