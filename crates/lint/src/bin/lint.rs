//! `smst-lint` — walk a workspace, enforce the invariant rules, emit
//! `ANALYSIS_lint.json`.
//!
//! ```text
//! smst-lint [--root DIR] [--format text|json] [--out DIR] [--name NAME]
//! ```
//!
//! Exit codes follow the `smst-analyze` convention: 0 clean, 1 at least
//! one unsuppressed diagnostic, 2 unreadable source or bad usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use smst_lint::report;
use smst_lint::rules::LintConfig;

const USAGE: &str = "usage: smst-lint [--root DIR] [--format text|json] [--out DIR] [--name NAME]

Walks every .rs file under --root (default: the current directory),
enforces the repo invariants (clock / unsafe / rng / hash-order /
schema-parity hygiene), and prints the report.

  --root DIR      workspace root to scan (default .)
  --format FMT    report format: text (default) or json (the
                  smst-lint-v1 document)
  --out DIR       also write ANALYSIS_lint.json under DIR
  --name NAME     root label recorded in the artifact (default: workspace)

exit status: 0 clean, 1 unsuppressed diagnostics, 2 unreadable source
or bad usage.";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let mut found = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            match args.get(i + 1) {
                Some(v) => found = Some(v.as_str()),
                None => return Err(format!("{flag} requires a value")),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(found)
}

fn run() -> Result<u8, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(0);
    }
    let known = ["--root", "--format", "--out", "--name"];
    let mut i = 0;
    while i < args.len() {
        if known.contains(&args[i].as_str()) {
            i += 2;
        } else {
            return Err(format!("unknown argument `{}`\n{USAGE}", args[i]));
        }
    }
    let root = PathBuf::from(flag_value(&args, "--root")?.unwrap_or("."));
    let format = flag_value(&args, "--format")?.unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("--format must be text or json, got `{format}`"));
    }
    let out_dir = flag_value(&args, "--out")?.map(PathBuf::from);
    let name = flag_value(&args, "--name")?.unwrap_or("workspace");

    let cfg = LintConfig::repo_default();
    let run = smst_lint::lint_root(&root, &cfg).map_err(|e| e.to_string())?;

    let json = report::render_json(name, run.files, &run.diagnostics);
    match format {
        "json" => print!("{json}"),
        _ => print!("{}", report::render_text(name, run.files, &run.diagnostics)),
    }
    if let Some(dir) = out_dir {
        let path: &Path = &dir.join("ANALYSIS_lint.json");
        std::fs::write(path, &json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("smst-lint: wrote {}", path.display());
    }
    Ok(if run.unsuppressed() == 0 { 0 } else { 1 })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("smst-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
