//! A lightweight Rust lexer: just enough token structure for invariant
//! linting.
//!
//! This is **not** a full Rust front-end. It exists to answer exactly the
//! questions the rule engine asks — "is this `Instant` an identifier in
//! code or a word in a comment?", "what line does this `unsafe` start
//! on?", "what schema tags hide inside this string literal?" — which
//! means it must classify the handful of constructs that routinely fool
//! regex-based linters:
//!
//! * **raw strings** `r"…"`, `r#"…"#` (any hash depth), plus byte and
//!   raw-byte strings `b"…"` / `br#"…"#`;
//! * **raw identifiers** `r#match` (an identifier, not a raw string);
//! * **nested block comments** `/* a /* b */ c */` (Rust nests them;
//!   C-style lexers end at the first `*/`);
//! * **lifetimes vs char literals**: `'a` (lifetime) vs `'a'` (char) vs
//!   `'\''` (escaped char).
//!
//! Everything else — numbers, punctuation — is tokenized coarsely: rules
//! only ever look at identifiers, comments, and string contents. Lexing
//! never fails; malformed input degrades to punctuation tokens rather
//! than an error, because a linter that dies on the file it is judging
//! reports nothing at all.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `Instant`, `r#match`, …).
    Ident,
    /// A string literal of any flavor (plain, raw, byte, raw-byte); the
    /// token text includes the delimiters.
    Str,
    /// A character literal (`'a'`, `'\n'`, `'\''`).
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A `//` line comment (doc comments included), text without the
    /// trailing newline.
    LineComment,
    /// A `/* … */` block comment, nesting handled, text including
    /// delimiters.
    BlockComment,
    /// A numeric literal (coarse: digits/alphanumerics, no `.`).
    Number,
    /// Any single other character (operators, brackets, `#`, …).
    Punct,
}

/// One lexed token: kind, 1-based start line, and source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token's source text (delimiters included for strings and
    /// comments).
    pub text: String,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. Infallible: unrecognized or unterminated
/// constructs degrade to the longest sensible token rather than an error.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: usize, text: String) {
        self.out.push(Token { kind, line, text });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.plain_string();
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if is_ident_start(c) {
                self.ident_or_prefixed_string();
            } else {
                let line = self.line;
                self.bump();
                self.push(TokenKind::Punct, line, c.to_string());
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, line, text);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        // an unterminated comment swallows the rest of the file — the
        // conservative reading for a linter
        self.push(TokenKind::BlockComment, line, text);
    }

    /// A `"…"` string with `\` escapes (also the body of `b"…"`).
    fn plain_string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        text.push(self.bump().expect("caller saw the opening quote"));
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Str, line, text);
    }

    /// A `r"…"` / `r#"…"#` raw string starting at the current `#`-or-quote
    /// position; `prefix` is the already-consumed `r`/`br`. Returns false
    /// (consuming nothing) if what follows is not actually a raw string.
    fn raw_string(&mut self, prefix: &str, line: usize) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        let mut text = String::from(prefix);
        for _ in 0..=hashes {
            text.push(self.bump().expect("counted above"));
        }
        'scan: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    text.push(self.bump().expect("peeked above"));
                }
                break;
            }
        }
        self.push(TokenKind::Str, line, text);
        true
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // deliberately excludes `.`: `0..n` must lex as number-punct-
            // punct-ident, and rules never care about float structure
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, line, text);
    }

    fn ident_or_prefixed_string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (text.as_str(), self.peek(0)) {
            // raw identifier r#match — an identifier, not a raw string
            ("r", Some('#')) if self.peek(1).is_some_and(is_ident_start) => {
                self.bump();
                let mut name = String::from("r#");
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Ident, line, name);
            }
            ("r" | "br", Some('#' | '"')) => {
                let prefix = text.clone();
                if !self.raw_string(&prefix, line) {
                    self.push(TokenKind::Ident, line, text);
                }
            }
            ("b", Some('"')) => {
                // byte string: same escape rules as a plain string
                let start = self.out.len();
                self.plain_string();
                let inner = self.out.remove(start);
                self.push(TokenKind::Str, line, format!("b{}", inner.text));
            }
            _ => self.push(TokenKind::Ident, line, text),
        }
    }

    /// `'a'` (char) vs `'a` (lifetime) vs `'\''` (escaped char).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        match self.peek(1) {
            Some('\\') => {
                // definitely a char literal: consume until the closing
                // quote, honouring escapes
                let mut text = String::new();
                text.push(self.bump().expect("opening quote"));
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, line, text);
            }
            Some(c1) if is_ident_start(c1) => {
                // 'abc' → char, 'abc → lifetime: scan the word, then look
                // for a closing quote
                let mut word_len = 0usize;
                while self.peek(1 + word_len).is_some_and(is_ident_continue) {
                    word_len += 1;
                }
                let closed = self.peek(1 + word_len) == Some('\'');
                let mut text = String::new();
                for _ in 0..(1 + word_len + usize::from(closed)) {
                    text.push(self.bump().expect("peeked above"));
                }
                let kind = if closed {
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                };
                self.push(kind, line, text);
            }
            Some(c1) if c1 != '\'' && self.peek(2) == Some('\'') => {
                // '1', '{', ' ' …
                let mut text = String::new();
                for _ in 0..3 {
                    text.push(self.bump().expect("peeked above"));
                }
                self.push(TokenKind::Char, line, text);
            }
            _ => {
                // lone quote (malformed): degrade to punctuation
                self.bump();
                self.push(TokenKind::Punct, line, "'".to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_comments_and_strings_classify() {
        let toks = kinds("let x = \"a // not a comment\"; // real comment");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_string()));
        assert_eq!(toks[3].0, TokenKind::Str);
        assert!(toks[3].1.contains("not a comment"));
        assert_eq!(toks.last().unwrap().0, TokenKind::LineComment);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds("r#\"has \"quotes\" inside\"# after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "r#\"has \"quotes\" inside\"#");
        assert_eq!(toks[1], (TokenKind::Ident, "after".to_string()));
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        let toks = kinds("r#match x");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds("b\"bytes\" br##\"raw # bytes\"## end");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[1].1, "br##\"raw # bytes\"##");
        assert_eq!(toks[2], (TokenKind::Ident, "end".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_at_depth_zero() {
        let toks = kinds("/* a /* nested */ b */ code");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; let c = 'a'; let q = '\\''; let s = 'static");
        assert_eq!(toks[1].0, TokenKind::Lifetime);
        assert_eq!(toks[1].1, "'a");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\''");
        assert_eq!(toks.last().unwrap().0, TokenKind::Lifetime);
        assert_eq!(toks.last().unwrap().1, "'static");
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("a\n/* x\ny */\nb \"s\nt\" c");
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5, "string newline advanced the line counter");
    }

    #[test]
    fn ranges_do_not_glue_into_floats() {
        let toks = kinds("for i in 0..n {}");
        assert_eq!(toks[3], (TokenKind::Number, "0".to_string()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[5], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[6], (TokenKind::Ident, "n".to_string()));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("\"never closed");
        lex("/* never closed");
        lex("r###\"never closed");
        lex("'");
        lex("r#");
    }
}
