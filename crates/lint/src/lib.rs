//! # smst-lint — the in-tree invariant lint engine
//!
//! The equivalence suites (`config_runner_equivalence`,
//! `chaos_determinism`, the halo/pool pinning tests) all assume
//! bit-for-bit replay. The invariants that make replay true are
//! conventions, not types: wall-clock reads stay on observed paths,
//! entropy flows only through seeded `smst-rng` streams, deterministic
//! modules never iterate hash-ordered containers, and `unsafe` lives
//! only in the pool's buffer core with a written safety argument per
//! site. This crate turns those conventions into machine-checked rules.
//!
//! ## Rule catalog
//!
//! | rule | meaning |
//! |------|---------|
//! | `clock` | `Instant::now()` / `SystemTime` outside the clock allowlist |
//! | `unsafe-file` | `unsafe` outside the allowlisted unsafe core |
//! | `safety-comment` | `unsafe` without an adjacent `// SAFETY:` comment |
//! | `unsafe-attr` | crate root without `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` |
//! | `rng` | `thread_rng` / `random()` / `RandomState` anywhere |
//! | `hash-order` | `HashMap` / `HashSet` in a deterministic module |
//! | `schema-parity` | `smst-*-v1` tag emitted with no `analyze::ingest` acceptor, or vice versa |
//! | `bad-suppression` | malformed / reason-less suppression (never suppressible) |
//! | `unused-suppression` | suppression matching no diagnostic (never suppressible) |
//!
//! Suppress a finding with a plain line comment on (or directly above)
//! the offending line; the reason is mandatory:
//!
//! ```text
//! smst-lint: allow(clock, reason = "observer-gated round timing")
//! ```
//!
//! The analysis is lexical, not semantic: the [`lexer`] tokenizes real
//! Rust (raw strings, nested block comments, lifetimes vs char
//! literals) so identifier checks never fire inside strings or
//! comments, but it does not resolve paths — `use std::time::Instant as
//! Clock` would evade the clock rule. For this repo's conventions
//! (idiomatic call sites, reviewed suppressions) that trade keeps the
//! engine dependency-free and fast enough to run on every push.
//!
//! The CLI (`smst-lint`) walks a workspace, prints diagnostics, writes
//! the `smst-lint-v1` artifact (`ANALYSIS_lint.json`) that
//! `smst-analyze ingest` accepts, and exits 0 (clean), 1 (unsuppressed
//! diagnostics), or 2 (unreadable source) — the same contract as
//! `smst-analyze check`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

use rules::{Diagnostic, LintConfig, SourceFile};
use walk::ScanError;

/// The outcome of linting one root: everything the CLI and the tests
/// need to render reports and decide exit codes.
#[derive(Debug)]
pub struct LintRun {
    /// How many `.rs` files the walk visited.
    pub files: usize,
    /// All diagnostics, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintRun {
    /// Diagnostics no suppression covers — nonzero means the gate fails.
    pub fn unsuppressed(&self) -> usize {
        rules::unsuppressed(&self.diagnostics)
    }
}

/// Walks `root`, lexes every `.rs` file, and runs the full rule set
/// under `cfg`. Unreadable files abort with [`ScanError`] (the CLI's
/// exit 2); lexing itself is infallible.
pub fn lint_root(root: &Path, cfg: &LintConfig) -> Result<LintRun, ScanError> {
    let rel_paths = walk::collect_sources(root, &cfg.skip_dirs)?;
    let mut sources = Vec::with_capacity(rel_paths.len());
    for rel in &rel_paths {
        let text = fs::read_to_string(root.join(rel)).map_err(|source| ScanError {
            path: root.join(rel),
            source,
        })?;
        sources.push(SourceFile::parse(walk::rel_display(rel), &text));
    }
    let diagnostics = rules::run_lints(&sources, cfg);
    Ok(LintRun {
        files: sources.len(),
        diagnostics,
    })
}
