//! The invariant rules, the suppression grammar, and the engine that
//! applies both to a lexed workspace.
//!
//! Every rule encodes one convention the equivalence suites silently
//! assume (see the crate docs for the catalog). Rules work on
//! [`Token`] streams, never raw text, so words in
//! comments or strings can not trip identifier-based checks.
//!
//! # Suppressions
//!
//! A diagnostic is suppressed by a **plain** `//` line comment (doc
//! comments do not count) of the form
//!
//! ```text
//! smst-lint: allow(<rule>, reason = "<why this site is exempt>")
//! ```
//!
//! after the `//`. A trailing comment suppresses its own line; a comment
//! alone on a line suppresses the next line that carries code. The reason
//! is mandatory — a suppression that cannot say why it exists is a
//! [`RULE_BAD_SUPPRESSION`] diagnostic, and one that matches no
//! diagnostic is [`RULE_UNUSED_SUPPRESSION`]: the suppression inventory
//! must stay exactly as large as the set of real, justified exemptions.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// Rule id: wall-clock read (`Instant::now` / `SystemTime`) outside the
/// clock allowlist.
pub const RULE_CLOCK: &str = "clock";
/// Rule id: `unsafe` in a file outside the unsafe allowlist.
pub const RULE_UNSAFE_FILE: &str = "unsafe-file";
/// Rule id: `unsafe` without an adjacent `// SAFETY:` comment.
pub const RULE_SAFETY_COMMENT: &str = "safety-comment";
/// Rule id: crate root missing `#![forbid(unsafe_code)]` /
/// `#![deny(unsafe_code)]`.
pub const RULE_UNSAFE_ATTR: &str = "unsafe-attr";
/// Rule id: ambient randomness (`thread_rng` / `random()` /
/// `RandomState`).
pub const RULE_RNG: &str = "rng";
/// Rule id: hash-ordered container (`HashMap` / `HashSet`) in a
/// deterministic module.
pub const RULE_HASH_ORDER: &str = "hash-order";
/// Rule id: schema tag emitted with no acceptor, or accepted but never
/// emitted.
pub const RULE_SCHEMA_PARITY: &str = "schema-parity";
/// Meta rule id: a suppression comment that does not parse, names an
/// unknown rule, or omits its reason. Never suppressible.
pub const RULE_BAD_SUPPRESSION: &str = "bad-suppression";
/// Meta rule id: a well-formed suppression that matched no diagnostic.
/// Never suppressible.
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// The suppressible rules, in catalog order (the meta rules are not:
/// a suppression can only name these).
pub const RULES: [&str; 7] = [
    RULE_CLOCK,
    RULE_UNSAFE_FILE,
    RULE_SAFETY_COMMENT,
    RULE_UNSAFE_ATTR,
    RULE_RNG,
    RULE_HASH_ORDER,
    RULE_SCHEMA_PARITY,
];

/// What the engine checks and where. Paths are workspace-relative with
/// `/` separators; matching is by prefix, so `crates/telemetry/` covers
/// the whole crate and `crates/engine/src/pool.rs` exactly one file.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Files allowed to read the wall clock.
    pub clock_allow: Vec<String>,
    /// Files allowed to contain `unsafe` at all ([`RULE_SAFETY_COMMENT`]
    /// still applies inside them).
    pub unsafe_allow: Vec<String>,
    /// Modules whose code must be iteration-order deterministic: any
    /// `HashMap`/`HashSet` here is flagged (`BTreeMap`/`Vec` are the
    /// sanctioned containers — without type inference, possession is the
    /// checkable proxy for iteration).
    pub deterministic: Vec<String>,
    /// The schema-parity acceptor file: every `smst-*-v1` tag emitted
    /// anywhere else must appear in a `const` item here, and vice versa.
    pub acceptor_file: String,
    /// Directory names skipped entirely during the walk.
    pub skip_dirs: Vec<String>,
    /// How many lines above an `unsafe` token a `// SAFETY:` comment may
    /// start and still count as adjacent.
    pub safety_window: usize,
}

impl LintConfig {
    /// The repository's own invariants — what the CI `lint-gate` runs.
    pub fn repo_default() -> Self {
        let own = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        LintConfig {
            // telemetry and the bench harness exist to measure wall time;
            // examples print demo timings; the pool's phased paths time
            // dispatch/compute/barrier/exchange (and never read the clock
            // unobserved — pinned by the round_latency bench)
            // the net transport polls connect/accept deadlines, and the
            // remote coordinator times observed rounds plus the worker
            // teardown grace period — wall time never feeds round state
            // (pinned by the remote_equivalence bit-for-bit suite)
            clock_allow: own(&[
                "crates/telemetry/",
                "crates/bench/",
                "crates/engine/src/pool.rs",
                "crates/net/src/remote.rs",
                "crates/net/src/transport.rs",
                "examples/",
            ]),
            unsafe_allow: own(&["crates/engine/src/pool.rs"]),
            deterministic: own(&[
                "crates/engine/",
                "crates/sim/",
                "crates/telemetry/",
                "crates/adversary/",
                "crates/analyze/",
                "crates/lint/",
                "crates/net/",
                "crates/rng/",
            ]),
            acceptor_file: "crates/analyze/src/ingest.rs".to_string(),
            skip_dirs: own(&["target", ".git", "fixtures"]),
            safety_window: 10,
        }
    }
}

/// One finding, suppressed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired (one of the `RULE_*` ids).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong, specifically.
    pub message: String,
    /// Whether a line-scoped suppression covers it.
    pub suppressed: bool,
    /// The suppression's mandatory reason, when suppressed.
    pub reason: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if let Some(reason) = &self.reason {
            write!(f, " (suppressed: {reason})")?;
        }
        Ok(())
    }
}

/// One lexed source file, ready for the rule engine.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Lexes `text` as the file at `rel_path`.
    pub fn parse(rel_path: impl Into<String>, text: &str) -> Self {
        SourceFile {
            rel_path: rel_path.into(),
            tokens: lex(text),
        }
    }
}

/// A parsed, well-formed suppression comment.
#[derive(Debug, Clone)]
struct Suppression {
    rule: &'static str,
    reason: String,
    comment_line: usize,
    target_line: usize,
    used: bool,
}

fn path_matches(rel_path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p.as_str()))
}

/// Is this a crate root (`src/lib.rs` of some crate, or the workspace
/// root's `src/lib.rs`)?
fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs" || rel_path.ends_with("/src/lib.rs")
}

/// Extracts every `smst-…-v1` schema tag embedded in `text`.
fn schema_tags(text: &str) -> Vec<String> {
    let mut tags = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("smst-") {
        let tail = &rest[at..];
        let end = tail
            .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
            .unwrap_or(tail.len());
        let candidate = &tail[..end];
        // shape: smst-<family>-v1 with a non-empty family
        if let Some(family) = candidate
            .strip_prefix("smst-")
            .and_then(|s| s.strip_suffix("-v1"))
        {
            if !family.is_empty() {
                tags.push(candidate.to_string());
            }
        }
        rest = &rest[at + 5..];
    }
    tags
}

/// The engine: runs every rule over `files` under `cfg`, applies
/// suppressions, and returns the diagnostics sorted by
/// `(file, line, rule)`.
pub fn run_lints(files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressions: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    let mut bad: Vec<Diagnostic> = Vec::new();
    // (tag, file, line, on_const_line) across the whole workspace
    let mut tag_sites: Vec<(String, String, usize, bool)> = Vec::new();

    for file in files {
        let (sup, mut bad_here) = collect_suppressions(file);
        suppressions.insert(file.rel_path.clone(), sup);
        bad.append(&mut bad_here);
        lint_file(file, cfg, &mut diags, &mut tag_sites);
    }
    schema_parity(cfg, &tag_sites, &mut diags);

    // line-scoped suppression: same file, same rule, matching target line
    for d in &mut diags {
        if let Some(sups) = suppressions.get_mut(&d.file) {
            if let Some(s) = sups
                .iter_mut()
                .find(|s| s.rule == d.rule && s.target_line == d.line)
            {
                s.used = true;
                d.suppressed = true;
                d.reason = Some(s.reason.clone());
            }
        }
    }
    for (file, sups) in &suppressions {
        for s in sups.iter().filter(|s| !s.used) {
            diags.push(Diagnostic {
                rule: RULE_UNUSED_SUPPRESSION,
                file: file.clone(),
                line: s.comment_line,
                message: format!(
                    "suppression for `{}` matches no diagnostic on line {}; delete it",
                    s.rule, s.target_line
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
    diags.append(&mut bad);
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    diags
}

/// Count of diagnostics no suppression covers — the gate's exit signal.
pub fn unsuppressed(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| !d.suppressed).count()
}

fn push(diags: &mut Vec<Diagnostic>, rule: &'static str, file: &str, line: usize, message: String) {
    diags.push(Diagnostic {
        rule,
        file: file.to_string(),
        line,
        message,
        suppressed: false,
        reason: None,
    });
}

/// Parses every suppression comment in `file`; malformed ones become
/// [`RULE_BAD_SUPPRESSION`] diagnostics immediately.
fn collect_suppressions(file: &SourceFile) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    // lines carrying at least one non-comment token, for trailing vs
    // standalone placement and next-code-line targeting
    let code_lines: Vec<usize> = {
        let mut lines: Vec<usize> = file
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|t| t.line)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    };
    for token in &file.tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        // plain `//` only: doc comments (`///`, `//!`) routinely *quote*
        // the grammar without meaning it
        let body = &token.text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("smst-lint:") else {
            continue;
        };
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                let trailing = code_lines.binary_search(&token.line).is_ok();
                let target_line = if trailing {
                    token.line
                } else {
                    let next = code_lines.partition_point(|&l| l <= token.line);
                    code_lines.get(next).copied().unwrap_or(token.line + 1)
                };
                sups.push(Suppression {
                    rule,
                    reason,
                    comment_line: token.line,
                    target_line,
                    used: false,
                });
            }
            Err(why) => bad.push(Diagnostic {
                rule: RULE_BAD_SUPPRESSION,
                file: file.rel_path.clone(),
                line: token.line,
                message: why,
                suppressed: false,
                reason: None,
            }),
        }
    }
    (sups, bad)
}

/// Parses the `allow(<rule>, reason = "…")` tail of a suppression.
fn parse_allow(rest: &str) -> Result<(&'static str, String), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.trim_end().strip_suffix(')'))
    else {
        return Err(format!(
            "suppression must be `allow(<rule>, reason = \"…\")`, got `{}`",
            rest.trim()
        ));
    };
    let (rule_text, tail) = match inner.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => {
            return Err(format!(
                "suppression of `{}` is missing its mandatory reason",
                inner.trim()
            ))
        }
    };
    let Some(rule) = RULES.iter().find(|r| **r == rule_text) else {
        return Err(format!(
            "unknown rule `{rule_text}` (suppressible rules: {})",
            RULES.join(", ")
        ));
    };
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or("");
    if reason.trim().is_empty() {
        return Err(format!(
            "suppression of `{rule_text}` is missing its mandatory reason"
        ));
    }
    Ok((rule, reason.trim().to_string()))
}

/// All single-file rules over one source file.
fn lint_file(
    file: &SourceFile,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
    tag_sites: &mut Vec<(String, String, usize, bool)>,
) {
    let path = file.rel_path.as_str();
    // comment-free view for identifier/sequence matching
    let code: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let comments: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let ident_at = |i: usize, text: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    };
    let punct_at = |i: usize, text: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
    };
    // lines whose code tokens include `const` — the acceptor shape for
    // schema parity
    let const_lines: Vec<usize> = {
        let mut lines: Vec<usize> = code
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "const")
            .map(|t| t.line)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    };

    let clock_allowed = path_matches(path, &cfg.clock_allow);
    let unsafe_allowed = path_matches(path, &cfg.unsafe_allow);
    let deterministic = path_matches(path, &cfg.deterministic);
    let mut has_unsafe_attr = false;

    for (i, t) in code.iter().enumerate() {
        if t.kind == TokenKind::Str {
            for tag in schema_tags(&t.text) {
                let on_const = const_lines.binary_search(&t.line).is_ok();
                tag_sites.push((tag, path.to_string(), t.line, on_const));
            }
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant"
                if !clock_allowed
                    && punct_at(i + 1, ":")
                    && punct_at(i + 2, ":")
                    && ident_at(i + 3, "now") =>
            {
                push(
                    diags,
                    RULE_CLOCK,
                    path,
                    t.line,
                    "`Instant::now()` outside the clock allowlist: wall time must \
                     not leak into deterministic round state"
                        .to_string(),
                );
            }
            "SystemTime" if !clock_allowed => {
                push(
                    diags,
                    RULE_CLOCK,
                    path,
                    t.line,
                    "`SystemTime` outside the clock allowlist".to_string(),
                );
            }
            "unsafe" => {
                if !unsafe_allowed {
                    push(
                        diags,
                        RULE_UNSAFE_FILE,
                        path,
                        t.line,
                        "`unsafe` outside the allowlisted unsafe core".to_string(),
                    );
                }
                let covered = comments.iter().any(|c| {
                    c.text.contains("SAFETY:")
                        && c.line <= t.line
                        && c.line + cfg.safety_window >= t.line
                });
                if !covered {
                    push(
                        diags,
                        RULE_SAFETY_COMMENT,
                        path,
                        t.line,
                        format!(
                            "`unsafe` without a `// SAFETY:` comment within the \
                             {} lines above it",
                            cfg.safety_window
                        ),
                    );
                }
            }
            "thread_rng" | "RandomState" => {
                push(
                    diags,
                    RULE_RNG,
                    path,
                    t.line,
                    format!(
                        "`{}` is ambient randomness; seeded `smst-rng` streams are \
                         the only sanctioned entropy",
                        t.text
                    ),
                );
            }
            "random" if punct_at(i + 1, "(") => {
                // qualified calls — `FaultPlan::random(n, f, seed)`,
                // `rng.random()` — are seeded constructors/methods and
                // sanctioned; the ambient forms are the bare free
                // function (`use rand::random`) and `rand::random()`
                let qualified = i >= 1
                    && (punct_at(i - 1, ":") || punct_at(i - 1, ".") || ident_at(i - 1, "fn"));
                let via_rand = i >= 3
                    && punct_at(i - 1, ":")
                    && punct_at(i - 2, ":")
                    && ident_at(i - 3, "rand");
                if !qualified || via_rand {
                    push(
                        diags,
                        RULE_RNG,
                        path,
                        t.line,
                        "`random()` is ambient randomness; seeded `smst-rng` \
                         streams are the only sanctioned entropy"
                            .to_string(),
                    );
                }
            }
            "HashMap" | "HashSet" if deterministic => {
                push(
                    diags,
                    RULE_HASH_ORDER,
                    path,
                    t.line,
                    format!(
                        "`{}` in a deterministic module: iteration order is \
                         seed-dependent, use `BTreeMap`/`BTreeSet`/`Vec`",
                        t.text
                    ),
                );
            }
            // #![forbid(unsafe_code)] / #![deny(unsafe_code)]
            "forbid" | "deny"
                if i >= 3
                    && punct_at(i - 3, "#")
                    && punct_at(i - 2, "!")
                    && punct_at(i - 1, "[")
                    && punct_at(i + 1, "(")
                    && ident_at(i + 2, "unsafe_code") =>
            {
                has_unsafe_attr = true;
            }
            _ => {}
        }
    }

    if is_crate_root(path) && !has_unsafe_attr {
        push(
            diags,
            RULE_UNSAFE_ATTR,
            path,
            1,
            "crate root lacks `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`".to_string(),
        );
    }
}

/// The cross-file check: every emitted tag must have an acceptor `const`,
/// every acceptor must correspond to a real writer.
fn schema_parity(
    cfg: &LintConfig,
    tag_sites: &[(String, String, usize, bool)],
    diags: &mut Vec<Diagnostic>,
) {
    let mut accepted: BTreeMap<&str, usize> = BTreeMap::new();
    for (tag, file, line, on_const) in tag_sites {
        if file == &cfg.acceptor_file && *on_const {
            accepted.entry(tag).or_insert(*line);
        }
    }
    let mut emitted: BTreeMap<&str, ()> = BTreeMap::new();
    for (tag, file, line, _) in tag_sites {
        if file == &cfg.acceptor_file {
            continue;
        }
        emitted.insert(tag, ());
        if !accepted.contains_key(tag.as_str()) {
            push(
                diags,
                RULE_SCHEMA_PARITY,
                file,
                *line,
                format!(
                    "schema tag \"{tag}\" has no acceptor const in {}",
                    cfg.acceptor_file
                ),
            );
        }
    }
    for (tag, line) in &accepted {
        if !emitted.contains_key(tag) {
            push(
                diags,
                RULE_SCHEMA_PARITY,
                &cfg.acceptor_file,
                *line,
                format!("acceptor for \"{tag}\" matches no writer: dead schema version"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
        run_lints(&[SourceFile::parse(path, src)], cfg)
    }

    fn bare_config() -> LintConfig {
        LintConfig {
            clock_allow: vec![],
            unsafe_allow: vec![],
            deterministic: vec!["det/".to_string()],
            acceptor_file: "accept.rs".to_string(),
            skip_dirs: vec![],
            safety_window: 10,
        }
    }

    #[test]
    fn clock_reads_flag_with_exact_lines() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let diags = lint_one("a.rs", src, &bare_config());
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].rule, diags[0].line), (RULE_CLOCK, 2));
        // the word in a comment or string never fires
        let quiet = "// Instant::now() in prose\nconst S: &str = \"Instant::now()\";\n";
        assert!(lint_one("a.rs", quiet, &bare_config()).is_empty());
    }

    #[test]
    fn clock_allowlist_is_a_path_prefix() {
        let mut cfg = bare_config();
        cfg.clock_allow = vec!["timing/".to_string()];
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(lint_one("timing/x.rs", src, &cfg).is_empty());
        assert_eq!(lint_one("other/x.rs", src, &cfg).len(), 1);
    }

    #[test]
    fn unsafe_needs_allowlist_and_safety_comment() {
        let cfg = {
            let mut c = bare_config();
            c.unsafe_allow = vec!["core.rs".to_string()];
            c
        };
        let documented = "// SAFETY: pinned by the dispatch protocol.\nunsafe { work() }\n";
        assert!(lint_one("core.rs", documented, &cfg).is_empty());
        // allowlisted file, missing comment: safety-comment still fires
        let bare = "unsafe { work() }\n";
        let diags = lint_one("core.rs", bare, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_SAFETY_COMMENT);
        // non-allowlisted file: both rules fire
        let diags = lint_one("elsewhere.rs", documented, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_UNSAFE_FILE);
    }

    #[test]
    fn safety_window_is_bounded() {
        let mut cfg = bare_config();
        cfg.unsafe_allow = vec!["core.rs".to_string()];
        cfg.safety_window = 2;
        let far = "// SAFETY: too far away.\nfn a() {}\nfn b() {}\nunsafe { work() }\n";
        let diags = lint_one("core.rs", far, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].rule, diags[0].line), (RULE_SAFETY_COMMENT, 4));
    }

    #[test]
    fn crate_roots_need_an_unsafe_attribute() {
        let cfg = bare_config();
        assert_eq!(
            lint_one("crates/x/src/lib.rs", "pub fn f() {}\n", &cfg)[0].rule,
            RULE_UNSAFE_ATTR
        );
        assert!(lint_one(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &cfg
        )
        .is_empty());
        assert!(lint_one(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![deny(unsafe_code)]\npub fn f() {}\n",
            &cfg
        )
        .is_empty());
        // non-root files carry no such obligation
        assert!(lint_one("crates/x/src/other.rs", "pub fn f() {}\n", &cfg).is_empty());
    }

    #[test]
    fn ambient_randomness_is_flagged_everywhere() {
        let src = "let a = thread_rng();\nlet b = random();\nuse std::collections::hash_map::RandomState;\n";
        let diags = lint_one("any.rs", src, &bare_config());
        let rules: Vec<_> = diags.iter().map(|d| (d.rule, d.line)).collect();
        assert_eq!(rules, vec![(RULE_RNG, 1), (RULE_RNG, 2), (RULE_RNG, 3)]);
        // `random` as a plain word (no call) is not entropy
        assert!(lint_one("any.rs", "let random = 3;\n", &bare_config()).is_empty());
    }

    #[test]
    fn seeded_random_constructors_and_methods_are_sanctioned() {
        let cfg = bare_config();
        assert!(lint_one("a.rs", "let p = FaultPlan::random(n, f, seed);\n", &cfg).is_empty());
        assert!(lint_one("a.rs", "let v = rng.random();\n", &cfg).is_empty());
        // defining a seeded constructor named `random` is fine too
        assert!(lint_one(
            "a.rs",
            "pub fn random(n: usize, seed: u64) -> Self {}\n",
            &cfg
        )
        .is_empty());
        // ...but the rand crate's ambient entry points still flag
        assert_eq!(lint_one("a.rs", "let v = rand::random();\n", &cfg).len(), 1);
        assert_eq!(lint_one("a.rs", "let v = random();\n", &cfg).len(), 1);
    }

    #[test]
    fn hash_containers_flag_only_in_deterministic_modules() {
        let src = "use std::collections::HashMap;\n";
        let cfg = bare_config();
        assert_eq!(lint_one("det/writer.rs", src, &cfg).len(), 1);
        assert!(lint_one("free/reader.rs", src, &cfg).is_empty());
    }

    #[test]
    fn schema_parity_checks_both_directions() {
        let cfg = bare_config();
        // tags are assembled at runtime so this test file never becomes an
        // emitter in the workspace's own lint run
        let orphan = format!("smst-orph{}-v1", "an");
        let ghost = format!("smst-gho{}-v1", "st");
        let good = format!("smst-go{}-v1", "od");
        let writer = format!(
            "fn emit() -> String {{ format!(\"{{{{\\\"schema\\\":\\\"{orphan}\\\"}}}}\") }}\nconst T: &str = \"{good}\";\n"
        );
        let acceptor =
            format!("pub const SCHEMA_GOOD: &str = \"{good}\";\npub const SCHEMA_GHOST: &str = \"{ghost}\";\n");
        let files = [
            SourceFile::parse("writer.rs", &writer),
            SourceFile::parse("accept.rs", &acceptor),
        ];
        let diags = run_lints(&files, &cfg);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_SCHEMA_PARITY);
        assert_eq!(diags[0].file, "accept.rs");
        assert!(diags[0].message.contains(&ghost));
        assert_eq!(diags[1].file, "writer.rs");
        assert!(diags[1].message.contains(&orphan));
    }

    #[test]
    fn suppression_round_trips_reason_onto_the_diagnostic() {
        let src = "// smst-lint: allow(clock, reason = \"observer-gated timing\")\n\
                   let t = Instant::now();\n";
        let diags = lint_one("a.rs", src, &bare_config());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed);
        assert_eq!(diags[0].reason.as_deref(), Some("observer-gated timing"));
        assert_eq!(unsuppressed(&diags), 0);
    }

    #[test]
    fn trailing_suppressions_cover_their_own_line() {
        let src = "let t = Instant::now(); // smst-lint: allow(clock, reason = \"demo timing\")\n";
        let diags = lint_one("a.rs", src, &bare_config());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed);
    }

    #[test]
    fn standalone_suppressions_skip_blank_lines_to_the_next_code_line() {
        let src = "// smst-lint: allow(clock, reason = \"demo\")\n\n\nlet t = Instant::now();\n";
        let diags = lint_one("a.rs", src, &bare_config());
        assert!(diags[0].suppressed, "{diags:?}");
    }

    #[test]
    fn reasons_are_mandatory() {
        let src = "// smst-lint: allow(clock)\nlet t = Instant::now();\n";
        let diags = lint_one("a.rs", src, &bare_config());
        let bad: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RULE_BAD_SUPPRESSION)
            .collect();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("mandatory reason"), "{bad:?}");
        // and the clock diagnostic stays unsuppressed
        assert_eq!(unsuppressed(&diags), 2);
    }

    #[test]
    fn unknown_rules_and_malformed_grammar_are_bad_suppressions() {
        let unknown = "// smst-lint: allow(telepathy, reason = \"x\")\nfn f() {}\n";
        let diags = lint_one("a.rs", unknown, &bare_config());
        assert_eq!(diags[0].rule, RULE_BAD_SUPPRESSION);
        assert!(diags[0].message.contains("unknown rule"));
        let malformed = "// smst-lint: disallow(clock)\nfn f() {}\n";
        let diags = lint_one("a.rs", malformed, &bare_config());
        assert_eq!(diags[0].rule, RULE_BAD_SUPPRESSION);
    }

    #[test]
    fn unused_suppressions_are_flagged() {
        let src = "// smst-lint: allow(clock, reason = \"nothing here\")\nfn f() {}\n";
        let diags = lint_one("a.rs", src, &bare_config());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_UNUSED_SUPPRESSION);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn doc_comments_quoting_the_grammar_are_inert() {
        let src = "/// smst-lint: allow(clock, reason = \"just documentation\")\nfn f() {}\n";
        assert!(lint_one("a.rs", src, &bare_config()).is_empty());
        let inner = "//! smst-lint: allow(clock, reason = \"also documentation\")\nfn f() {}\n";
        assert!(lint_one("a.rs", inner, &bare_config()).is_empty());
    }

    #[test]
    fn diagnostics_sort_by_file_line_rule() {
        let a = SourceFile::parse("b.rs", "let t = SystemTime::now();\n");
        let b = SourceFile::parse("a.rs", "let t = thread_rng();\nlet u = Instant::now();\n");
        let diags = run_lints(&[a, b], &bare_config());
        let keys: Vec<_> = diags.iter().map(|d| (d.file.as_str(), d.line)).collect();
        assert_eq!(keys, vec![("a.rs", 1), ("a.rs", 2), ("b.rs", 1)]);
    }
}
