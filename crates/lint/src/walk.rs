//! Deterministic workspace traversal: collect every `.rs` file under a
//! root, sorted, skipping build products and fixture trees.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A source file the walker could not read — the CLI turns this into
/// exit code 2, matching `smst-analyze`'s unreadable-input convention.
#[derive(Debug)]
pub struct ScanError {
    /// The path that failed.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot read {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ScanError {}

/// Recursively collects every `.rs` file under `root`, skipping any
/// directory whose *name* appears in `skip_dirs`. Paths come back
/// workspace-relative with `/` separators, sorted bytewise, so the lint
/// run is reproducible across filesystems.
pub fn collect_sources(root: &Path, skip_dirs: &[String]) -> Result<Vec<PathBuf>, ScanError> {
    let mut out = Vec::new();
    walk(root, root, skip_dirs, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(
    root: &Path,
    dir: &Path,
    skip_dirs: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), ScanError> {
    let entries = fs::read_dir(dir).map_err(|source| ScanError {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| ScanError {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if skip_dirs.iter().any(|d| d.as_str() == name) {
                continue;
            }
            walk(root, &path, skip_dirs, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Renders a path workspace-relative with `/` separators regardless of
/// host OS, for stable diagnostics and artifacts.
pub fn rel_display(path: &Path) -> String {
    let mut s = String::new();
    for comp in path.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smst-lint-walk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn walks_sorted_and_skips_named_dirs() {
        let root = scratch("sorted");
        fs::create_dir_all(root.join("b/src")).unwrap();
        fs::create_dir_all(root.join("a")).unwrap();
        fs::create_dir_all(root.join("target/debug")).unwrap();
        fs::write(root.join("b/src/lib.rs"), "").unwrap();
        fs::write(root.join("a/main.rs"), "").unwrap();
        fs::write(root.join("a/notes.txt"), "").unwrap();
        fs::write(root.join("target/debug/gen.rs"), "").unwrap();
        let got = collect_sources(&root, &["target".to_string()]).unwrap();
        let rels: Vec<String> = got.iter().map(|p| rel_display(p)).collect();
        assert_eq!(rels, vec!["a/main.rs", "b/src/lib.rs"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_is_a_scan_error() {
        let root = scratch("missing").join("nope");
        let err = collect_sources(&root, &[]).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }
}
