//! Rendering: the `smst-lint-v1` artifact (`ANALYSIS_lint.json`) and the
//! human-readable text report.
//!
//! The JSON writer is hand-rolled and fully deterministic — same
//! diagnostics in, same bytes out — so golden tests can pin the artifact
//! byte-for-byte and `smst-analyze check` can diff runs structurally.

use crate::rules::{unsuppressed, Diagnostic};

/// The schema tag `smst-analyze ingest` accepts for lint artifacts.
pub const SCHEMA_LINT: &str = "smst-lint-v1";

/// Escapes `s` as a JSON string body (same rules as the telemetry and
/// analyze writers: quote, backslash, the common controls, `\u` for the
/// rest).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the full `smst-lint-v1` document. `root_name` labels what was
/// scanned ("workspace" for the real run, "fixture" in tests) and
/// `files` is how many sources the walk visited.
pub fn render_json(root_name: &str, files: usize, diags: &[Diagnostic]) -> String {
    let total = diags.len();
    let open = unsuppressed(diags);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA_LINT)));
    out.push_str(&format!("  \"root\": {},\n", json_string(root_name)));
    out.push_str(&format!("  \"files\": {files},\n"));
    out.push_str(&format!(
        "  \"summary\": {{ \"total\": {total}, \"suppressed\": {}, \"unsuppressed\": {open} }},\n",
        total - open
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&render_diag(d));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_diag(d: &Diagnostic) -> String {
    let reason = match &d.reason {
        Some(r) => json_string(r),
        None => "null".to_string(),
    };
    format!(
        "{{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suppressed\": {}, \"reason\": {} }}",
        json_string(d.rule),
        json_string(&d.file),
        d.line,
        json_string(&d.message),
        d.suppressed,
        reason
    )
}

/// Renders the human-readable report: one line per diagnostic plus a
/// summary tail.
pub fn render_text(root_name: &str, files: usize, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let open = unsuppressed(diags);
    out.push_str(&format!(
        "smst-lint: {root_name}: {files} files, {} diagnostics ({} suppressed, {open} unsuppressed)\n",
        diags.len(),
        diags.len() - open
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, suppressed: bool) -> Diagnostic {
        Diagnostic {
            rule,
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "a \"quoted\" message".to_string(),
            suppressed,
            reason: suppressed.then(|| "because\ttabs".to_string()),
        }
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let diags = vec![diag(crate::rules::RULE_CLOCK, true)];
        let a = render_json("fixture", 3, &diags);
        let b = render_json("fixture", 3, &diags);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"smst-lint-v1\""));
        assert!(a.contains("a \\\"quoted\\\" message"));
        assert!(a.contains("because\\ttabs"));
        assert!(a.contains("\"suppressed\": 1, \"unsuppressed\": 0"));
    }

    #[test]
    fn empty_run_renders_an_empty_array() {
        let json = render_json("workspace", 0, &[]);
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"total\": 0"));
    }

    #[test]
    fn text_report_tallies_suppressed_and_open() {
        let diags = vec![
            diag(crate::rules::RULE_CLOCK, true),
            diag(crate::rules::RULE_RNG, false),
        ];
        let text = render_text("workspace", 42, &diags);
        assert!(text.contains("42 files, 2 diagnostics (1 suppressed, 1 unsuppressed)"));
        assert!(text.contains("[rng]"));
    }
}
