//! `CAMPAIGN_<name>.json` artifacts — the campaign analogue of the bench
//! harness's `BENCH_<group>.json`.
//!
//! Serialized with the same hand-rolled writer discipline (and the same
//! [`json_string`] escaping) as [`smst_bench::harness`], written into the
//! same [`bench_dir`] (`$SMST_BENCH_DIR`, default the working directory),
//! so CI uploads campaign finds alongside the bench trajectory with one
//! artifact rule.

use crate::campaign::{CampaignReport, TrialRecord};
use crate::shrink::ShrinkResult;
use smst_bench::harness::{bench_dir, json_string};
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn option_json(value: Option<usize>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn record_json(record: &TrialRecord, budget: usize) -> String {
    format!(
        "{{\"id\":{},\"daemon\":{},\"nodes\":{},\"score\":{},\"missed\":{},\
         \"baseline_score\":{},\"baseline_missed\":{},\"regret\":{},\
         \"detection\":{},\"recovered\":{},\"injected\":{}}}",
        json_string(&record.id),
        json_string(&record.daemon),
        record.outcome.node_count,
        record.outcome.score.value(budget),
        record.outcome.score.is_missed(),
        record.baseline.score.value(budget),
        record.baseline.score.is_missed(),
        record.regret,
        option_json(record.outcome.detection),
        option_json(record.outcome.recovered),
        record.outcome.injected_faults,
    )
}

/// Serializes a campaign report (and, optionally, the shrunk best find) as
/// one JSON object.
pub fn campaign_json(
    report: &CampaignReport,
    budget: usize,
    shrunk: Option<&ShrinkResult>,
) -> String {
    let records: Vec<String> = report
        .records
        .iter()
        .map(|r| record_json(r, budget))
        .collect();
    let best = report
        .best()
        .map(|r| record_json(r, budget))
        .unwrap_or_else(|| "null".to_string());
    let shrunk_json = match shrunk {
        Some(result) => format!(
            "{{\"id\":{},\"accepted\":{},\"evaluated\":{},\"nodes\":{},\
             \"score\":{},\"missed\":{}}}",
            json_string(&result.spec.id()),
            result.accepted,
            result.evaluated,
            result.outcome.node_count,
            result.outcome.score.value(budget),
            result.outcome.score.is_missed(),
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"schema\":\"smst-campaign-v1\",\"campaign\":{},\
         \"random_trials\":{},\"guided_trials\":{},\
         \"best\":{best},\"shrunk\":{shrunk_json},\"records\":[{}]}}\n",
        json_string(&report.name),
        report.random_trials,
        report.guided_trials,
        records.join(",")
    )
}

/// Writes `CAMPAIGN_<name>.json` into [`bench_dir`] and returns its path.
///
/// # Panics
///
/// Panics on I/O errors — a campaign that silently loses its finds is
/// worse than one that fails.
pub fn write_campaign_artifact(
    report: &CampaignReport,
    budget: usize,
    shrunk: Option<&ShrinkResult>,
) -> PathBuf {
    write_campaign_artifact_in(&bench_dir(), report, budget, shrunk)
}

/// [`write_campaign_artifact`] into an explicit directory.
pub fn write_campaign_artifact_in(
    dir: &Path,
    report: &CampaignReport,
    budget: usize,
    shrunk: Option<&ShrinkResult>,
) -> PathBuf {
    let path = dir.join(format!("CAMPAIGN_{}.json", report.name));
    let mut file = std::fs::File::create(&path).expect("creating the campaign JSON artifact");
    file.write_all(campaign_json(report, budget, shrunk).as_bytes())
        .expect("writing the campaign JSON artifact");
    println!("  campaign results -> {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSpec};
    use crate::shrink::shrink;
    use crate::trial::Workload;
    use smst_engine::GraphFamily;

    #[test]
    fn campaign_json_is_balanced_and_complete() {
        let mut spec = CampaignSpec::new("artifact_unit", Workload::Monitor);
        spec.families = vec![GraphFamily::Path { n: 16 }];
        spec.random_trials = 4;
        spec.guided_rounds = 0;
        spec.budget = 64;
        let report = run_campaign(&spec);
        let best = report.best().expect("trials ran").spec.clone();
        let shrunk = shrink(&best, |_s| true);
        let json = campaign_json(&report, spec.budget, Some(&shrunk));
        assert!(json.starts_with("{\"schema\":\"smst-campaign-v1\",\"campaign\":\"artifact_unit\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // every record appears once, plus the duplicated best-record object
        assert_eq!(
            json.matches("\"regret\":").count(),
            report.records.len() + 1,
            "every record serialized"
        );
        assert!(json.contains("\"shrunk\":{\"id\":"));
    }

    #[test]
    fn artifact_file_round_trips() {
        // an explicit directory, not the SMST_BENCH_DIR override: tests
        // must not mutate process-global env under the parallel harness
        let dir = std::env::temp_dir().join("smst_adversary_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = CampaignSpec::new("artifact_roundtrip", Workload::Monitor);
        spec.families = vec![GraphFamily::Path { n: 12 }];
        spec.random_trials = 2;
        spec.guided_rounds = 0;
        spec.budget = 48;
        let report = run_campaign(&spec);
        let path = write_campaign_artifact_in(&dir, &report, spec.budget, None);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"campaign\":\"artifact_roundtrip\""));
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("CAMPAIGN_"));
        std::fs::remove_file(path).ok();
    }
}
