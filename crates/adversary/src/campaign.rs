//! Campaigns: seeded random + guided search over schedule × fault ×
//! topology space.
//!
//! A [`CampaignSpec`] names the search space (graph families, fault kinds
//! and counts, daemons) and the budgets; [`run_campaign`] samples it with a
//! seeded RNG, scores every trial against its round-robin baseline
//! (**regret** — how much later the adversarial schedule makes the scored
//! event), then runs a guided phase that mutates the best finds. Trials
//! execute in parallel on the engine's persistent
//! [`WorkerPool`](smst_engine::WorkerPool) (each trial single-threaded, the
//! pool fanning the trial list out), and the whole campaign is a pure
//! function of its spec — re-running it reproduces every record.

use crate::trial::{run_trial, DaemonSpec, TrialOutcome, TrialSpec, Workload};
use smst_core::faults::FaultKind;
use smst_engine::{GraphFamily, PinPolicy, PoolHandle};
use smst_rng::{Rng, SeedableRng, StdRng};

/// The search space and budgets of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (also names the `CAMPAIGN_<name>.json` artifact).
    pub name: String,
    /// The program and metric every trial runs.
    pub workload: Workload,
    /// Topology families to sample from.
    pub families: Vec<GraphFamily>,
    /// Register-corruption kinds ([`Workload::Verifier`] only; the flood
    /// workloads ignore the kind).
    pub fault_kinds: Vec<FaultKind>,
    /// Fault-count options.
    pub fault_counts: Vec<usize>,
    /// Daemons to sample from.
    pub daemons: Vec<DaemonSpec>,
    /// Graph seeds to sample from.
    pub graph_seeds: Vec<u64>,
    /// Burst step of every trial.
    pub inject_at: usize,
    /// Step budget of every trial.
    pub budget: usize,
    /// Trials in the random phase.
    pub random_trials: usize,
    /// Guided-mutation rounds after the random phase.
    pub guided_rounds: usize,
    /// How many top finds seed each guided round.
    pub keep_top: usize,
    /// Campaign seed (sampling and mutation randomness).
    pub seed: u64,
    /// Worker threads the trial fan-out uses.
    pub threads: usize,
    /// Core pinning of the fan-out workers (wall-clock only; campaign
    /// records are placement-invariant).
    pub pin: PinPolicy,
}

impl CampaignSpec {
    /// A small, fully seeded campaign over every daemon shape, ready to
    /// customize field by field.
    pub fn new(name: &str, workload: Workload) -> Self {
        CampaignSpec {
            name: name.to_string(),
            workload,
            families: vec![
                GraphFamily::Path { n: 32 },
                GraphFamily::Caterpillar { spine: 10, legs: 2 },
                GraphFamily::RandomConnected { n: 32, m: 48 },
            ],
            fault_kinds: vec![FaultKind::SpDistance],
            fault_counts: vec![1, 2],
            daemons: vec![
                DaemonSpec::RoundRobin { batch: 1 },
                DaemonSpec::RoundRobin { batch: 8 },
                DaemonSpec::Random {
                    seed: 1,
                    extra_factor: 1,
                    batch: 4,
                },
                DaemonSpec::Pivot {
                    pivot: 0,
                    repeats: 2,
                    batch: 1,
                },
                DaemonSpec::BoundaryStall {
                    shards: 2,
                    repeats: 1,
                },
                DaemonSpec::ShardStarve {
                    shards: 2,
                    repeats: 1,
                },
                DaemonSpec::CutFocus {
                    source_seed: 0,
                    repeats: 1,
                },
            ],
            graph_seeds: vec![1, 2],
            inject_at: 2,
            budget: 160,
            random_trials: 24,
            guided_rounds: 2,
            keep_top: 4,
            seed: 0,
            threads: 1,
            pin: PinPolicy::None,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> TrialSpec {
        let pick = |rng: &mut StdRng, len: usize| rng.gen_range(0..len.max(1));
        TrialSpec {
            workload: self.workload,
            family: self.families[pick(rng, self.families.len())].clone(),
            graph_seed: self.graph_seeds[pick(rng, self.graph_seeds.len())],
            daemon: self.daemons[pick(rng, self.daemons.len())].clone(),
            fault_kind: self.fault_kinds[pick(rng, self.fault_kinds.len())],
            fault_count: self.fault_counts[pick(rng, self.fault_counts.len())],
            fault_seed: rng.gen_range(0..1 << 16),
            inject_at: self.inject_at,
            budget: self.budget,
        }
    }
}

/// One evaluated trial: the spec's id, its outcome, the round-robin
/// baseline's outcome, and the regret between them.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Replayable trial id.
    pub id: String,
    /// Human-readable daemon descriptor.
    pub daemon: String,
    /// The full spec.
    pub spec: TrialSpec,
    /// The adversarial outcome.
    pub outcome: TrialOutcome,
    /// The outcome under [`TrialSpec::round_robin_baseline`].
    pub baseline: TrialOutcome,
    /// `score − baseline_score` in scalar steps (positive: the adversarial
    /// schedule made the event strictly later).
    pub regret: i64,
}

impl TrialRecord {
    fn from_parts(
        spec: TrialSpec,
        outcome: TrialOutcome,
        baseline: TrialOutcome,
        budget: usize,
    ) -> TrialRecord {
        let regret = outcome.score.value(budget) as i64 - baseline.score.value(budget) as i64;
        TrialRecord {
            id: spec.id(),
            daemon: spec.daemon.encode(),
            spec,
            outcome,
            baseline,
            regret,
        }
    }
}

/// What a campaign found, sorted by regret (best find first).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Every evaluated trial, best regret first.
    pub records: Vec<TrialRecord>,
    /// Trials evaluated in the random phase.
    pub random_trials: usize,
    /// Trials evaluated in the guided phase.
    pub guided_trials: usize,
}

impl CampaignReport {
    /// The best find (highest regret), if any trial ran.
    pub fn best(&self) -> Option<&TrialRecord> {
        self.records.first()
    }
}

/// Runs `specs` in parallel on the worker pool (each trial runs
/// single-threaded; the pool fans the list out), preserving order.
fn run_all(specs: &[TrialSpec], threads: usize, pin: PinPolicy) -> Vec<TrialOutcome> {
    PoolHandle::for_threads_with(threads.max(1), pin).map_indexed(specs, |_i, spec| run_trial(spec))
}

/// Evaluates `specs` against their round-robin baselines, memoizing the
/// baselines: campaigns share few distinct `(graph, fault)` points across
/// many daemons, so each baseline runs once per campaign phase instead of
/// once per trial (and a trial that *is* its own baseline is not run
/// twice).
fn evaluate_all(
    specs: Vec<TrialSpec>,
    budget: usize,
    threads: usize,
    pin: PinPolicy,
) -> Vec<TrialRecord> {
    let mut baseline_specs: Vec<TrialSpec> = Vec::new();
    let mut baseline_index: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for spec in &specs {
        let baseline = spec.round_robin_baseline();
        if let std::collections::btree_map::Entry::Vacant(slot) =
            baseline_index.entry(baseline.id())
        {
            slot.insert(baseline_specs.len());
            baseline_specs.push(baseline);
        }
    }
    let baseline_outcomes = run_all(&baseline_specs, threads, pin);
    // a spec equal to its own baseline reuses the memoized outcome
    let to_run: Vec<TrialSpec> = specs
        .iter()
        .filter(|s| s.daemon != DaemonSpec::RoundRobin { batch: 1 })
        .cloned()
        .collect();
    let mut run_outcomes = run_all(&to_run, threads, pin).into_iter();
    specs
        .into_iter()
        .map(|spec| {
            let baseline =
                baseline_outcomes[baseline_index[&spec.round_robin_baseline().id()]].clone();
            let outcome = if spec.daemon == (DaemonSpec::RoundRobin { batch: 1 }) {
                baseline.clone()
            } else {
                run_outcomes
                    .next()
                    .expect("one outcome per non-baseline spec")
            };
            TrialRecord::from_parts(spec, outcome, baseline, budget)
        })
        .collect()
}

/// Deterministic neighbourhood of a good find: small parameter nudges the
/// guided phase explores around it.
fn mutations(spec: &TrialSpec, rng: &mut StdRng) -> Vec<TrialSpec> {
    let mut out = Vec::new();
    let mut push = |daemon: DaemonSpec| {
        out.push(TrialSpec {
            daemon,
            ..spec.clone()
        });
    };
    match spec.daemon {
        DaemonSpec::RoundRobin { batch } => push(DaemonSpec::RoundRobin { batch: batch * 2 }),
        DaemonSpec::Random {
            seed,
            extra_factor,
            batch,
        } => {
            push(DaemonSpec::Random {
                seed: seed + 1,
                extra_factor,
                batch,
            });
            push(DaemonSpec::Random {
                seed,
                extra_factor,
                batch: batch * 2,
            });
        }
        DaemonSpec::Pivot {
            pivot,
            repeats,
            batch,
        } => push(DaemonSpec::Pivot {
            pivot,
            repeats: repeats + 1,
            batch,
        }),
        DaemonSpec::BoundaryStall { shards, repeats } => {
            push(DaemonSpec::BoundaryStall {
                shards: shards + 1,
                repeats,
            });
            push(DaemonSpec::BoundaryStall {
                shards,
                repeats: repeats + 1,
            });
        }
        DaemonSpec::ShardStarve { shards, repeats } => {
            push(DaemonSpec::ShardStarve {
                shards: shards + 1,
                repeats,
            });
            push(DaemonSpec::ShardStarve {
                shards,
                repeats: repeats + 1,
            });
        }
        DaemonSpec::CutFocus {
            source_seed,
            repeats,
        } => {
            push(DaemonSpec::CutFocus {
                source_seed: source_seed + 1,
                repeats,
            });
            push(DaemonSpec::CutFocus {
                source_seed,
                repeats: repeats + 1,
            });
        }
    }
    // a fresh fault placement keeps the fault dimension moving too
    out.push(TrialSpec {
        fault_seed: rng.gen_range(0..1 << 16),
        ..spec.clone()
    });
    out
}

/// Runs a campaign: seeded random sampling, parallel evaluation, guided
/// mutation of the top finds, and a regret-sorted report.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    assert!(
        !spec.families.is_empty()
            && !spec.daemons.is_empty()
            && !spec.fault_counts.is_empty()
            && !spec.fault_kinds.is_empty()
            && !spec.graph_seeds.is_empty(),
        "campaign `{}` has an empty search dimension",
        spec.name
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let random: Vec<TrialSpec> = (0..spec.random_trials)
        .map(|_| spec.sample(&mut rng))
        .collect();
    let mut records = evaluate_all(random, spec.budget, spec.threads, spec.pin);
    let random_count = records.len();

    let mut guided_count = 0usize;
    for _ in 0..spec.guided_rounds {
        let mut by_regret: Vec<usize> = (0..records.len()).collect();
        by_regret.sort_by_key(|&i| (-records[i].regret, records[i].id.clone()));
        let seen: std::collections::BTreeSet<String> =
            records.iter().map(|r| r.id.clone()).collect();
        let mut next: Vec<TrialSpec> = Vec::new();
        for &i in by_regret.iter().take(spec.keep_top) {
            for candidate in mutations(&records[i].spec, &mut rng) {
                if !seen.contains(&candidate.id()) && !next.iter().any(|s| s.id() == candidate.id())
                {
                    next.push(candidate);
                }
            }
        }
        guided_count += next.len();
        records.extend(evaluate_all(next, spec.budget, spec.threads, spec.pin));
    }

    records.sort_by(|a, b| b.regret.cmp(&a.regret).then_with(|| a.id.cmp(&b.id)));
    CampaignReport {
        name: spec.name.clone(),
        records,
        random_trials: random_count,
        guided_trials: guided_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> CampaignSpec {
        let mut spec = CampaignSpec::new("unit", Workload::Monitor);
        spec.families = vec![GraphFamily::Path { n: 24 }];
        spec.graph_seeds = vec![1];
        spec.random_trials = 8;
        spec.guided_rounds = 1;
        spec.keep_top = 2;
        spec.budget = 96;
        spec
    }

    #[test]
    fn campaigns_are_reproducible() {
        let spec = tiny_campaign();
        let a = run_campaign(&spec);
        let b = run_campaign(&spec);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.regret, y.regret);
        }
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let spec = tiny_campaign();
        let mut parallel = tiny_campaign();
        parallel.threads = 4;
        parallel.pin = PinPolicy::Cores;
        let a = run_campaign(&spec);
        let b = run_campaign(&parallel);
        assert_eq!(
            a.records.iter().map(|r| &r.id).collect::<Vec<_>>(),
            b.records.iter().map(|r| &r.id).collect::<Vec<_>>()
        );
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.outcome, y.outcome, "{}", x.id);
        }
    }

    #[test]
    fn guided_phase_adds_unseen_trials() {
        let report = run_campaign(&tiny_campaign());
        assert!(report.guided_trials > 0);
        assert_eq!(
            report.records.len(),
            report.random_trials + report.guided_trials
        );
        let mut ids: Vec<&String> = report.records.iter().map(|r| &r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), report.records.len(), "no duplicate trials");
    }

    #[test]
    #[should_panic(expected = "empty search dimension")]
    fn empty_dimensions_are_rejected() {
        let mut spec = tiny_campaign();
        spec.daemons.clear();
        let _ = run_campaign(&spec);
    }
}
