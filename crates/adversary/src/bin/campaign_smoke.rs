//! A tiny seeded campaign for CI: exercises the whole pipeline (search →
//! baseline regret → shrink → replay) in seconds and writes
//! `CAMPAIGN_smoke.json` for the artifact upload. The campaign's best find
//! is additionally replayed **observed** — teeing a [`RecordingObserver`]
//! with the env-gated telemetry sink — and its per-round stream is written
//! to `BENCH_rounds_campaign.json`, keyed by the replayable `TrialId`.
//! `SMST_BENCH_SMOKE=1` shrinks the trial count further (the default sizes
//! are already small).

use smst_adversary::{
    beats_round_robin_memo, run_campaign, run_trial, run_trial_observed, shrink_trial,
    write_campaign_artifact, CampaignSpec, TrialSpec, Workload,
};
use smst_bench::harness::smoke_mode;
use smst_sim::{RecordingObserver, TeeObserver};
use smst_telemetry::{RoundsArtifact, Telemetry};

fn main() {
    let mut spec = CampaignSpec::new("smoke", Workload::Monitor);
    spec.seed = 7;
    spec.threads = smst_engine::default_threads();
    if smoke_mode() {
        spec.random_trials = 12;
        spec.guided_rounds = 1;
    }
    println!(
        "campaign `{}`: {} random trials + {} guided rounds over {} daemons × {} families",
        spec.name,
        spec.random_trials,
        spec.guided_rounds,
        spec.daemons.len(),
        spec.families.len()
    );
    let report = run_campaign(&spec);
    let best = report.best().expect("the campaign ran trials").clone();
    println!(
        "best find: regret {:+} ({} vs round-robin {}) — {}",
        best.regret,
        best.outcome.score.value(spec.budget),
        best.baseline.score.value(spec.budget),
        best.id
    );

    // regret > 0 alone is not enough: a Missed best score out-ranks every
    // measured one but fails the shrinker's beats_round_robin precondition
    let shrunk = if best.regret > 0 && !best.outcome.score.is_missed() {
        let result = shrink_trial(&best.spec, beats_round_robin_memo());
        println!(
            "shrunk to {} nodes / budget {} after {} accepted moves ({} evaluated): {}",
            result.spec.family.node_count(),
            result.spec.budget,
            result.accepted,
            result.evaluated,
            result.spec.id()
        );
        // the shrunk id must replay identically — fail the smoke job loudly
        // if determinism ever regresses
        let replayed = TrialSpec::from_id(&result.spec.id()).expect("ids parse");
        assert_eq!(
            run_trial(&replayed),
            run_trial(&result.spec),
            "shrunk trial did not replay identically"
        );
        Some(result)
    } else {
        println!("no adversarial daemon beat round-robin in this tiny space");
        None
    };
    write_campaign_artifact(&report, spec.budget, shrunk.as_ref());

    // observed replay of the best find (shrunk if available): the
    // deterministic trial, re-run with per-round accounting attached, its
    // stream promoted to BENCH_rounds_campaign.json keyed by the TrialId
    let replay_spec = shrunk.map(|s| s.spec).unwrap_or(best.spec);
    let trial_id = replay_spec.id();
    let telemetry = Telemetry::from_env("campaign_smoke");
    let recording = RecordingObserver::new();
    let mut tee = TeeObserver::new().with(Box::new(recording.clone()));
    if let Some(observer) = telemetry.observer(&trial_id) {
        tee.push(observer);
    }
    let observed = run_trial_observed(&replay_spec, Box::new(tee));
    assert_eq!(
        observed,
        run_trial(&replay_spec),
        "attaching an observer changed the trial outcome"
    );
    let stats = recording.stats();
    assert_eq!(stats.len(), observed.steps_run, "one record per step run");
    let mut artifact = RoundsArtifact::new("rounds_campaign");
    artifact.push(&format!("campaign/{}/best", spec.name), &trial_id, stats);
    artifact.finish();
    telemetry.flush().expect("flushing the campaign trace");
}
