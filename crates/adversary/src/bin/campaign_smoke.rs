//! A tiny seeded campaign for CI: exercises the whole pipeline (search →
//! baseline regret → shrink → replay) in seconds and writes
//! `CAMPAIGN_smoke.json` for the artifact upload. `SMST_BENCH_SMOKE=1`
//! shrinks the trial count further (the default sizes are already small).

use smst_adversary::{
    beats_round_robin_memo, run_campaign, run_trial, shrink_trial, write_campaign_artifact,
    CampaignSpec, TrialSpec, Workload,
};
use smst_bench::harness::smoke_mode;

fn main() {
    let mut spec = CampaignSpec::new("smoke", Workload::Monitor);
    spec.seed = 7;
    spec.threads = smst_engine::default_threads();
    if smoke_mode() {
        spec.random_trials = 12;
        spec.guided_rounds = 1;
    }
    println!(
        "campaign `{}`: {} random trials + {} guided rounds over {} daemons × {} families",
        spec.name,
        spec.random_trials,
        spec.guided_rounds,
        spec.daemons.len(),
        spec.families.len()
    );
    let report = run_campaign(&spec);
    let best = report.best().expect("the campaign ran trials").clone();
    println!(
        "best find: regret {:+} ({} vs round-robin {}) — {}",
        best.regret,
        best.outcome.score.value(spec.budget),
        best.baseline.score.value(spec.budget),
        best.id
    );

    // regret > 0 alone is not enough: a Missed best score out-ranks every
    // measured one but fails the shrinker's beats_round_robin precondition
    let shrunk = if best.regret > 0 && !best.outcome.score.is_missed() {
        let result = shrink_trial(&best.spec, beats_round_robin_memo());
        println!(
            "shrunk to {} nodes / budget {} after {} accepted moves ({} evaluated): {}",
            result.spec.family.node_count(),
            result.spec.budget,
            result.accepted,
            result.evaluated,
            result.spec.id()
        );
        // the shrunk id must replay identically — fail the smoke job loudly
        // if determinism ever regresses
        let replayed = TrialSpec::from_id(&result.spec.id()).expect("ids parse");
        assert_eq!(
            run_trial(&replayed),
            run_trial(&result.spec),
            "shrunk trial did not replay identically"
        );
        Some(result)
    } else {
        println!("no adversarial daemon beat round-robin in this tiny space");
        None
    };
    write_campaign_artifact(&report, spec.budget, shrunk.as_ref());
}
