//! A seeded verify-forever chaos campaign for CI: periodic, burst and
//! Poisson fault schedules endured on the engine's self-healing pool,
//! with worker-level chaos layered on top. Every schedule runs twice —
//! clean, and with an injected worker panic recovered under a
//! [`RecoveryPolicy`] — and the two outcomes must match **bit-for-bit**
//! (recovery is invisible in the deterministic trace). A hung-worker
//! injection must trip the barrier watchdog as a typed
//! [`PoolError::BarrierTimeout`] instead of deadlocking. Writes the
//! per-wave books to `BENCH_chaos.json` and the campaign summary (cases +
//! pool self-healing counters) to `CAMPAIGN_chaos.json`.
//! `SMST_BENCH_SMOKE=1` shrinks the graph.

use smst_adversary::chaos::{
    record_chaos_metrics, record_pool_metrics, write_chaos_campaign_artifact, ChaosCase,
    ChaosCaseRecord,
};
use smst_bench::harness::smoke_mode;
use smst_engine::programs::AlarmedFlood;
use smst_engine::{
    EngineConfig, GraphFamily, InjectionSpec, ParallelSyncRunner, PoolError, PoolHandle,
    RecoveryPolicy, ScenarioSpec,
};
use smst_sim::FaultSchedule;
use smst_telemetry::{names, ChaosArtifact, FlightRecorder, Metrics};
use std::time::Duration;

fn main() {
    // the barrier watchdog needs a real barrier, so at least two parts
    let threads = smst_engine::default_threads().clamp(2, 8);
    let n = if smoke_mode() { 96 } else { 192 };
    let family = GraphFamily::Expander { n, degree: 4 };
    // the AlarmedFlood garbage decays in ~log2(BOGUS / n) ≈ 14 steps, plus
    // the expander's diameter to re-converge (~28 steps in total): waves
    // 30 steps apart leave every wave room to quiesce before the next one
    // fires, and the budget leaves the last wave room to quiesce too
    let steps = 95;
    let schedules = [
        ("periodic", FaultSchedule::periodic(30, 6, 23).offset(5)),
        ("burst", FaultSchedule::bursts([5, 35, 65], 8, 91)),
        ("poisson", FaultSchedule::poisson(0.02, 4, 7)),
    ];
    println!(
        "chaos campaign: {} schedules × {} steps on {n}-node expander, {threads} threads",
        schedules.len(),
        steps
    );

    // hold one handle for the whole campaign: the pool registry frees a
    // pool when its last handle drops, which would zero the self-healing
    // counters between cases
    let pool = PoolHandle::for_threads(threads);
    let metrics = Metrics::new();
    let mut artifact = ChaosArtifact::new("chaos");
    let mut records = Vec::new();
    for (name, schedule) in schedules {
        let case = ChaosCase::new(name, family.clone(), schedule, steps)
            .seed(11)
            .threads(threads);
        let clean = case.run().expect("a valid chaos case");
        // the injected twin: a pool-worker panic mid-campaign (part 1, a
        // real pooled thread, so the retirement/respawn machinery runs),
        // retried away under the recovery policy — it must reproduce the
        // clean run bit-for-bit
        let chaotic = case
            .clone()
            .recovery(RecoveryPolicy::retries(2).backoff(Duration::from_millis(1)))
            .inject(InjectionSpec::panic_at(7, 1))
            .run()
            .expect("the injected panic is retried away");
        let invisible = chaotic == clean;
        assert!(
            invisible,
            "case `{name}`: recovery leaked into the deterministic trace"
        );
        println!(
            "  {name}: {} waves, {} detected, {} quiesced, mean detection {:?}, \
             mean quiescence {:?}, recovery invisible",
            clean.report.waves.len(),
            clean.report.detected_waves(),
            clean.report.quiesced_waves(),
            clean.report.mean_detection_latency(),
            clean.report.mean_quiescence(),
        );
        record_chaos_metrics(&metrics, &clean.report);
        artifact.push(case.chaos_run(&clean.report));
        records.push(ChaosCaseRecord::new(&case, clean.report).recovery_invisible(invisible));
    }

    // the acceptance schedules must have measured both latencies
    for record in &records {
        if record.case == "periodic" || record.case == "burst" {
            assert!(
                record.report.mean_detection_latency().is_some(),
                "case `{}` measured no detection latency",
                record.case
            );
            assert!(
                record.report.mean_quiescence().is_some(),
                "case `{}` measured no quiescence",
                record.case
            );
        }
    }

    // a hung worker must become a typed timeout within the watchdog, not
    // a deadlock — the watchdog guards the round barrier inside
    // multi-round chunks, so drive a chunked run directly
    let watchdog = Duration::from_millis(100);
    let graph = ScenarioSpec::new(family).seed(11).build_graph();
    let program = AlarmedFlood::new(0, n as u64 - 1);
    let stalled_config = EngineConfig::new()
        .threads(threads)
        .recovery(RecoveryPolicy::retries(2).watchdog(watchdog))
        .inject(InjectionSpec::stall_at(3, 1, 800));
    let mut stalled = ParallelSyncRunner::from_config(&program, graph, &stalled_config)
        .expect("a valid stall envelope");
    // the flight recorder rides along as an observer: when the watchdog
    // trips, its final ring-buffer window becomes the postmortem artifact
    let flight = FlightRecorder::new(32);
    stalled.set_observer(Box::new(flight.clone()));
    // smst-lint: allow(clock, reason = "smoke binary prints watchdog wall time for the operator readout")
    let started = std::time::Instant::now();
    match stalled.try_run_rounds(8) {
        Err(PoolError::BarrierTimeout { timeout }) => {
            assert_eq!(timeout, watchdog, "the configured watchdog surfaced");
            println!(
                "  stall: barrier watchdog tripped after {:?} (limit {watchdog:?})",
                started.elapsed()
            );
            let reason = format!("barrier timeout after {timeout:?}");
            let path = flight
                .write_json("chaos_stall", &reason)
                .expect("writing the flight-recorder artifact");
            println!(
                "  flight -> {} ({} of {} rounds retained)",
                path.display(),
                flight.len(),
                flight.rounds_seen()
            );
        }
        other => panic!("a hung worker must trip the watchdog, got {other:?}"),
    }

    record_pool_metrics(&metrics, pool.pool().stats());
    let snapshot = metrics.snapshot();
    assert!(
        snapshot.counters[names::POOL_WORKER_PANICS] >= records.len() as u64,
        "every injected panic is accounted"
    );
    assert!(
        snapshot.counters[names::POOL_BARRIER_TIMEOUTS] >= 1,
        "the tripped watchdog is accounted"
    );
    println!(
        "  pool: {} panics, {} respawns, {} barrier timeouts; chaos: {} waves, {} faults",
        snapshot.counters[names::POOL_WORKER_PANICS],
        snapshot.counters[names::POOL_WORKER_RESPAWNS],
        snapshot.counters[names::POOL_BARRIER_TIMEOUTS],
        snapshot.counters[names::CHAOS_WAVES],
        snapshot.counters[names::CHAOS_FAULTS],
    );

    artifact.finish();
    write_chaos_campaign_artifact("chaos", &records, pool.pool().stats());
}
