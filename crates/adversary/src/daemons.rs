//! Adversarial **batch** daemons: fairness-preserving schedules the central
//! [`Daemon`](smst_sim::Daemon) enum cannot express.
//!
//! The central daemon activates one node at a time; chunking its sequence
//! ([`ChunkedDaemon`](smst_sim::ChunkedDaemon)) can only form batches out
//! of *positions* in that sequence. The daemons here pick their batches by
//! *identity* — interior vs. boundary nodes of a sharding, whole shards,
//! the endpoints of a graph cut — which is exactly the extra freedom the
//! distributed-daemon model grants the adversary (cf. the KMW lower-bound
//! construction: an adversarially scheduled neighbourhood). All of them
//! keep the fairness contract (every node activated at least once per time
//! unit) and are pure functions of `(n, unit_index)`, so campaigns stay
//! replayable.
//!
//! The common mechanism: information crosses an edge at least one hop per
//! time unit no matter what the daemon does, but a *benign* schedule (index
//! order) can push a value across an entire index-increasing path in one
//! unit. These daemons arrange their batches so that information flowing
//! towards a protected region (another shard, the far side of a cut) makes
//! **exactly one hop per unit**, pinning executions to the worst case the
//! fairness bound allows.

use smst_graph::{NodeId, WeightedGraph};
use smst_sim::{ActivationBatch, BatchDaemon};

/// Splits `0..n` into `shards` near-equal contiguous ranges (the same
/// shape the engine's sharder uses), returning the range of each shard.
fn contiguous_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n.max(1));
    (0..shards)
        .map(|s| (n * s / shards, n * (s + 1) / shards))
        .collect()
}

/// The shard index of node `v` under [`contiguous_ranges`].
fn shard_of(ranges: &[(usize, usize)], v: usize) -> usize {
    ranges
        .iter()
        .position(|&(lo, hi)| v >= lo && v < hi)
        .expect("ranges cover 0..n")
}

/// `unit_batches` in terms of `for_each_batch` — the adversarial daemons
/// keep a single source of schedule truth (the borrowing visitor) and
/// materialize owned batches only for inspection.
fn collect_batches(daemon: &dyn BatchDaemon, n: usize, unit_index: usize) -> Vec<ActivationBatch> {
    let mut batches = Vec::new();
    daemon.for_each_batch(n, unit_index, &mut |batch| batches.push(batch.to_vec()));
    batches
}

/// Boundary-stalling daemon: interiors churn, boundaries trickle.
///
/// Nodes are split into `shards` contiguous ranges; a node is *boundary*
/// if any graph neighbour lives in another range. Each time unit activates
/// every shard's interior as one simultaneous batch, `repeats + 1` times
/// over, and only then the whole boundary as a single simultaneous batch.
/// Interiors therefore mix intra-shard state all unit long while reading
/// only the *previous* unit's boundary registers — cross-shard information
/// advances one boundary hop per unit, however fast the interiors run.
#[derive(Debug, Clone)]
pub struct StallDaemon {
    n: usize,
    repeats: usize,
    shards: usize,
    interiors: Vec<ActivationBatch>,
    boundary: ActivationBatch,
}

impl StallDaemon {
    /// Builds the daemon for `graph` with `shards` contiguous shards and
    /// `repeats` extra interior sweeps per time unit.
    pub fn new(graph: &WeightedGraph, shards: usize, repeats: usize) -> Self {
        let n = graph.node_count();
        let ranges = contiguous_ranges(n, shards);
        let mut interiors: Vec<ActivationBatch> = vec![Vec::new(); ranges.len()];
        let mut boundary: ActivationBatch = Vec::new();
        for v in 0..n {
            let s = shard_of(&ranges, v);
            let crosses = graph
                .neighbors(NodeId(v))
                .any(|u| shard_of(&ranges, u.index()) != s);
            if crosses {
                boundary.push(NodeId(v));
            } else {
                interiors[s].push(NodeId(v));
            }
        }
        interiors.retain(|batch| !batch.is_empty());
        StallDaemon {
            n,
            repeats,
            shards: ranges.len(),
            interiors,
            boundary,
        }
    }
}

impl BatchDaemon for StallDaemon {
    fn unit_batches(&self, n: usize, unit_index: usize) -> Vec<ActivationBatch> {
        collect_batches(self, n, unit_index)
    }

    fn for_each_batch(&self, n: usize, _unit_index: usize, visit: &mut dyn FnMut(&[NodeId])) {
        assert_eq!(
            n, self.n,
            "StallDaemon was built for {} nodes, scheduled for {n}",
            self.n
        );
        for _ in 0..=self.repeats {
            for interior in &self.interiors {
                visit(interior);
            }
        }
        if !self.boundary.is_empty() {
            visit(&self.boundary);
        }
    }

    fn clone_box(&self) -> Box<dyn BatchDaemon> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("stall(shards={},repeats={})", self.shards, self.repeats)
    }
}

/// Shard-starving daemon: one shard per unit runs exactly once, first.
///
/// Nodes are split into `shards` contiguous ranges; in time unit `u` the
/// shard `u % shards` is *starved*: all of its nodes fire simultaneously at
/// the very start of the unit (reading only previous-unit registers) and
/// never again, while every other shard is swept `repeats + 1` more times.
/// The starved shard exports its state but imports nothing new for a whole
/// unit, and the starvation rotates — a moving bottleneck no central
/// schedule chunking can reproduce, because the batch membership follows
/// shard identity, not sequence position.
#[derive(Debug, Clone)]
pub struct StarveDaemon {
    n: usize,
    repeats: usize,
    shard_nodes: Vec<ActivationBatch>,
}

impl StarveDaemon {
    /// Builds the daemon with `shards` contiguous shards and `repeats`
    /// extra sweeps of the non-starved shards per time unit.
    ///
    /// Only the node count of `graph` matters (the shards are contiguous
    /// index ranges); the graph parameter keeps the constructor signature
    /// uniform across the adversarial daemons.
    pub fn new(graph: &WeightedGraph, shards: usize, repeats: usize) -> Self {
        let n = graph.node_count();
        let shard_nodes = contiguous_ranges(n, shards)
            .into_iter()
            .map(|(lo, hi)| (lo..hi).map(NodeId).collect())
            .collect();
        StarveDaemon {
            n,
            repeats,
            shard_nodes,
        }
    }
}

impl BatchDaemon for StarveDaemon {
    fn unit_batches(&self, n: usize, unit_index: usize) -> Vec<ActivationBatch> {
        collect_batches(self, n, unit_index)
    }

    fn for_each_batch(&self, n: usize, unit_index: usize, visit: &mut dyn FnMut(&[NodeId])) {
        assert_eq!(
            n, self.n,
            "StarveDaemon was built for {} nodes, scheduled for {n}",
            self.n
        );
        let starved = unit_index % self.shard_nodes.len().max(1);
        if !self.shard_nodes[starved].is_empty() {
            visit(&self.shard_nodes[starved]);
        }
        for _ in 0..=self.repeats {
            for (s, nodes) in self.shard_nodes.iter().enumerate() {
                if s != starved && !nodes.is_empty() {
                    visit(nodes);
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn BatchDaemon> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!(
            "starve(shards={},repeats={})",
            self.shard_nodes.len(),
            self.repeats
        )
    }
}

/// Cut-focused daemon: one side of a graph cut is shielded behind its cut
/// endpoints.
///
/// The node set is bisected by BFS order from a seeded source into a near
/// half `A` and a far half `B`; the *cut endpoints* are the `B`-nodes with
/// a neighbour in `A`. Each unit activates the cut endpoints exactly once,
/// first (they read only previous-unit `A` registers), then sweeps the rest
/// of `B` `repeats + 1` times, then `A` `repeats + 1` times. Information
/// from `A` enters `B` through a single stale snapshot per unit — the far
/// side is effectively one round behind however many activations it gets.
#[derive(Debug, Clone)]
pub struct CutFocusDaemon {
    n: usize,
    repeats: usize,
    source: usize,
    cut_endpoints: ActivationBatch,
    far_interior: ActivationBatch,
    near: ActivationBatch,
}

impl CutFocusDaemon {
    /// Builds the daemon for `graph`, bisecting by BFS order from node
    /// `source_seed % n`, with `repeats` extra sweeps per side per unit.
    pub fn new(graph: &WeightedGraph, source_seed: u64, repeats: usize) -> Self {
        let n = graph.node_count();
        let source = if n == 0 {
            0
        } else {
            (source_seed % n as u64) as usize
        };
        let dist = graph.bfs_distances(NodeId(source));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (dist[v], v));
        let near_count = n.div_ceil(2);
        let mut in_near = vec![false; n];
        for &v in order.iter().take(near_count) {
            in_near[v] = true;
        }
        let near: ActivationBatch = (0..n).filter(|&v| in_near[v]).map(NodeId).collect();
        let mut cut_endpoints: ActivationBatch = Vec::new();
        let mut far_interior: ActivationBatch = Vec::new();
        for v in 0..n {
            if in_near[v] {
                continue;
            }
            if graph.neighbors(NodeId(v)).any(|u| in_near[u.index()]) {
                cut_endpoints.push(NodeId(v));
            } else {
                far_interior.push(NodeId(v));
            }
        }
        CutFocusDaemon {
            n,
            repeats,
            source,
            cut_endpoints,
            far_interior,
            near,
        }
    }
}

impl BatchDaemon for CutFocusDaemon {
    fn unit_batches(&self, n: usize, unit_index: usize) -> Vec<ActivationBatch> {
        collect_batches(self, n, unit_index)
    }

    fn for_each_batch(&self, n: usize, _unit_index: usize, visit: &mut dyn FnMut(&[NodeId])) {
        assert_eq!(
            n, self.n,
            "CutFocusDaemon was built for {} nodes, scheduled for {n}",
            self.n
        );
        if !self.cut_endpoints.is_empty() {
            visit(&self.cut_endpoints);
        }
        for _ in 0..=self.repeats {
            if !self.far_interior.is_empty() {
                visit(&self.far_interior);
            }
        }
        for _ in 0..=self.repeats {
            if !self.near.is_empty() {
                visit(&self.near);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn BatchDaemon> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("cut(source={},repeats={})", self.source, self.repeats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{path_graph, random_connected_graph};

    fn covers_all(batches: &[ActivationBatch], n: usize) -> bool {
        let mut seen = vec![false; n];
        for batch in batches {
            for v in batch {
                seen[v.index()] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }

    #[test]
    fn stall_daemon_is_fair_and_deterministic() {
        let g = random_connected_graph(30, 70, 3);
        let daemon = StallDaemon::new(&g, 4, 2);
        for unit in 0..4 {
            let batches = daemon.unit_batches(30, unit);
            assert!(covers_all(&batches, 30), "unit {unit}");
            assert_eq!(batches, daemon.unit_batches(30, unit));
        }
        assert_eq!(daemon.describe(), "stall(shards=4,repeats=2)");
    }

    #[test]
    fn starve_daemon_rotates_the_starved_shard() {
        let g = path_graph(12, 0);
        let daemon = StarveDaemon::new(&g, 3, 1);
        for unit in 0..6 {
            let batches = daemon.unit_batches(12, unit);
            assert!(covers_all(&batches, 12));
            // the starved shard (unit % 3) appears exactly once
            let starved_lo = 12 * (unit % 3) / 3;
            let count = batches
                .iter()
                .filter(|b| b.contains(&NodeId(starved_lo)))
                .count();
            assert_eq!(count, 1, "starved shard must fire exactly once");
        }
    }

    #[test]
    fn cut_daemon_partitions_into_near_cut_and_far() {
        let g = random_connected_graph(25, 60, 5);
        let daemon = CutFocusDaemon::new(&g, 7, 1);
        let batches = daemon.unit_batches(25, 0);
        assert!(covers_all(&batches, 25));
        // cut endpoints fire exactly once per unit
        let first = &batches[0];
        for later in &batches[1..] {
            for v in first {
                assert!(!later.contains(v), "cut endpoint {v:?} fired twice");
            }
        }
    }

    #[test]
    #[should_panic(expected = "was built for")]
    fn node_count_mismatch_is_loud() {
        let g = path_graph(8, 0);
        let daemon = StallDaemon::new(&g, 2, 0);
        let _ = daemon.unit_batches(9, 0);
    }

    #[test]
    fn tiny_graphs_are_handled() {
        for n in [1usize, 2, 3] {
            let g = path_graph(n, 0);
            for daemon in [
                Box::new(StallDaemon::new(&g, 4, 1)) as Box<dyn BatchDaemon>,
                Box::new(StarveDaemon::new(&g, 4, 1)),
                Box::new(CutFocusDaemon::new(&g, 3, 1)),
            ] {
                assert!(
                    covers_all(&daemon.unit_batches(n, 0), n),
                    "{daemon:?} n={n}"
                );
            }
        }
    }
}
