//! Counterexample shrinking: delta-debugging a failing trial down to a
//! minimal, replayable reproduction.
//!
//! Given a [`TrialSpec`] and an *interestingness* predicate (e.g. "still
//! detects strictly later than round-robin"), [`shrink`] greedily applies
//! shrinking moves — fewer faults, a smaller graph, a shorter schedule
//! prefix (budget), earlier injection, tamer daemon parameters — re-running
//! the trial after each candidate move and keeping the first one that stays
//! interesting. The result is **1-minimal**: no single move preserves the
//! predicate, and its [`TrialSpec::id`] replays the counterexample in one
//! line.

use crate::trial::{DaemonSpec, TrialSpec};
use smst_engine::GraphFamily;

/// Smaller versions of a family (halved sizes, floored at a handful of
/// nodes so every workload stays well-defined).
fn smaller_families(family: &GraphFamily) -> Vec<GraphFamily> {
    let half = |n: usize| n / 2;
    let mut out = Vec::new();
    match *family {
        GraphFamily::Path { n } => out.push(GraphFamily::Path { n: half(n) }),
        GraphFamily::Ring { n } => out.push(GraphFamily::Ring { n: half(n) }),
        GraphFamily::Grid { rows, cols } => {
            out.push(GraphFamily::Grid {
                rows: half(rows).max(1),
                cols,
            });
            out.push(GraphFamily::Grid {
                rows,
                cols: half(cols).max(1),
            });
        }
        GraphFamily::Star { n } => out.push(GraphFamily::Star { n: half(n) }),
        GraphFamily::Caterpillar { spine, legs } => {
            out.push(GraphFamily::Caterpillar {
                spine: half(spine).max(1),
                legs,
            });
            if legs > 0 {
                out.push(GraphFamily::Caterpillar {
                    spine,
                    legs: half(legs),
                });
            }
        }
        GraphFamily::RandomConnected { n, m } => out.push(GraphFamily::RandomConnected {
            n: half(n),
            m: half(m),
        }),
        GraphFamily::Expander { n, degree } => {
            out.push(GraphFamily::Expander { n: half(n), degree })
        }
        GraphFamily::Complete { n } => out.push(GraphFamily::Complete { n: half(n) }),
        GraphFamily::KmwClusterTree { levels, delta } => {
            if levels > 1 {
                out.push(GraphFamily::KmwClusterTree {
                    levels: levels - 1,
                    delta,
                });
            }
            if delta > 2 {
                out.push(GraphFamily::KmwClusterTree {
                    levels,
                    delta: delta - 1,
                });
            }
        }
        GraphFamily::KmwHybrid { levels, delta } => {
            if levels > 2 {
                out.push(GraphFamily::KmwHybrid {
                    levels: levels - 1,
                    delta,
                });
            }
            if delta > 3 {
                out.push(GraphFamily::KmwHybrid {
                    levels,
                    delta: delta - 1,
                });
            }
        }
    }
    out.retain(|f| f.node_count() >= 4 && f != family);
    out
}

/// Tamer versions of a daemon (halved repeats / shards / batch — a
/// counterexample that survives with weaker adversarial pressure is a
/// stronger finding).
fn tamer_daemons(daemon: &DaemonSpec) -> Vec<DaemonSpec> {
    let mut out = Vec::new();
    match *daemon {
        DaemonSpec::RoundRobin { batch } => {
            if batch > 1 {
                out.push(DaemonSpec::RoundRobin { batch: batch / 2 });
            }
        }
        DaemonSpec::Random {
            seed,
            extra_factor,
            batch,
        } => {
            if extra_factor > 0 {
                out.push(DaemonSpec::Random {
                    seed,
                    extra_factor: extra_factor / 2,
                    batch,
                });
            }
            if batch > 1 {
                out.push(DaemonSpec::Random {
                    seed,
                    extra_factor,
                    batch: batch / 2,
                });
            }
        }
        DaemonSpec::Pivot {
            pivot,
            repeats,
            batch,
        } => {
            if repeats > 0 {
                out.push(DaemonSpec::Pivot {
                    pivot,
                    repeats: repeats / 2,
                    batch,
                });
            }
        }
        DaemonSpec::BoundaryStall { shards, repeats } => {
            if repeats > 0 {
                out.push(DaemonSpec::BoundaryStall {
                    shards,
                    repeats: repeats / 2,
                });
            }
            if shards > 2 {
                out.push(DaemonSpec::BoundaryStall {
                    shards: shards / 2,
                    repeats,
                });
            }
        }
        DaemonSpec::ShardStarve { shards, repeats } => {
            if repeats > 0 {
                out.push(DaemonSpec::ShardStarve {
                    shards,
                    repeats: repeats / 2,
                });
            }
            if shards > 2 {
                out.push(DaemonSpec::ShardStarve {
                    shards: shards / 2,
                    repeats,
                });
            }
        }
        DaemonSpec::CutFocus {
            source_seed,
            repeats,
        } => {
            if repeats > 0 {
                out.push(DaemonSpec::CutFocus {
                    source_seed,
                    repeats: repeats / 2,
                });
            }
        }
    }
    out
}

/// The candidate single-move shrinks of a spec, most aggressive first.
fn candidates(spec: &TrialSpec) -> Vec<TrialSpec> {
    let mut out = Vec::new();
    // fewer faults
    if spec.fault_count > 1 {
        for count in [1, spec.fault_count / 2] {
            if count < spec.fault_count {
                out.push(TrialSpec {
                    fault_count: count,
                    ..spec.clone()
                });
            }
        }
    }
    // smaller graph
    for family in smaller_families(&spec.family) {
        out.push(TrialSpec {
            family,
            ..spec.clone()
        });
    }
    // shorter schedule prefix
    let floor = spec.inject_at + 1;
    for budget in [spec.budget / 2, (spec.budget * 3) / 4, spec.budget - 1] {
        if budget >= floor && budget < spec.budget {
            out.push(TrialSpec {
                budget,
                ..spec.clone()
            });
        }
    }
    // earlier injection
    if spec.inject_at > 0 {
        out.push(TrialSpec {
            inject_at: spec.inject_at / 2,
            ..spec.clone()
        });
    }
    // tamer daemon
    for daemon in tamer_daemons(&spec.daemon) {
        out.push(TrialSpec {
            daemon,
            ..spec.clone()
        });
    }
    out.dedup_by_key(|s| s.id());
    out
}

/// What [`shrink`] produced.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The 1-minimal spec (equal to the input when nothing shrank).
    pub spec: TrialSpec,
    /// The minimal spec's outcome (so consumers need not re-run it).
    pub outcome: crate::trial::TrialOutcome,
    /// Shrinking moves accepted.
    pub accepted: usize,
    /// Candidate trials evaluated (accepted + rejected).
    pub evaluated: usize,
}

/// Greedily minimizes `spec` while `interesting` holds.
///
/// The predicate is re-evaluated by *running* every candidate, so it can
/// compare against baselines, inspect outcomes, or assert arbitrary
/// properties. Deterministic: same spec + same predicate ⇒ same minimum.
///
/// # Panics
///
/// Panics if the input spec itself is not interesting — shrinking a
/// non-counterexample silently would hide a broken search.
pub fn shrink<F>(spec: &TrialSpec, mut interesting: F) -> ShrinkResult
where
    F: FnMut(&TrialSpec) -> bool,
{
    assert!(
        interesting(spec),
        "refusing to shrink a trial that is not a counterexample: {}",
        spec.id()
    );
    let mut current = spec.clone();
    let mut accepted = 0usize;
    let mut evaluated = 0usize;
    // bounded: every accepted move strictly reduces (count, nodes, budget,
    // inject_at, daemon params), so the loop terminates; the cap is a
    // safety net against a pathological predicate
    for _ in 0..10_000 {
        let mut advanced = false;
        for candidate in candidates(&current) {
            evaluated += 1;
            if interesting(&candidate) {
                current = candidate;
                accepted += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    let outcome = crate::trial::run_trial(&current);
    ShrinkResult {
        spec: current,
        outcome,
        accepted,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::{beats_round_robin, run_trial, Workload};
    use smst_core::faults::FaultKind;

    fn wide_spec() -> TrialSpec {
        TrialSpec {
            workload: Workload::Monitor,
            family: GraphFamily::Path { n: 48 },
            graph_seed: 3,
            daemon: DaemonSpec::BoundaryStall {
                shards: 4,
                repeats: 3,
            },
            fault_kind: FaultKind::SpDistance,
            fault_count: 4,
            // seed 14: all four faults land far from the monitor, so the
            // stalled schedule is 7 units vs round-robin's 1
            fault_seed: 14,
            inject_at: 4,
            budget: 300,
        }
    }

    #[test]
    fn shrinks_to_one_minimal_and_replays() {
        let spec = wide_spec();
        let result = shrink(&spec, beats_round_robin);
        assert!(result.accepted > 0, "a wide spec must shrink somewhere");
        assert!(result.spec.family.node_count() <= spec.family.node_count());
        assert!(result.spec.budget <= spec.budget);
        assert!(result.spec.fault_count <= spec.fault_count);
        // 1-minimality: no single move stays interesting
        for candidate in candidates(&result.spec) {
            assert!(
                !beats_round_robin(&candidate),
                "shrunk spec has a smaller interesting neighbour: {}",
                candidate.id()
            );
        }
        // the shrunk id replays identically, and the stored outcome is it
        let replayed = TrialSpec::from_id(&result.spec.id()).unwrap();
        assert_eq!(run_trial(&replayed), result.outcome);
        assert!(beats_round_robin(&replayed));
    }

    #[test]
    #[should_panic(expected = "refusing to shrink")]
    fn rejects_non_counterexamples() {
        let _ = shrink(&wide_spec(), |_s| false);
    }

    #[test]
    fn smaller_families_respect_the_floor() {
        assert!(smaller_families(&GraphFamily::Path { n: 4 }).is_empty());
        let smaller = smaller_families(&GraphFamily::Grid { rows: 4, cols: 4 });
        assert!(smaller.iter().all(|f| f.node_count() >= 4));
        assert!(!smaller.is_empty());
    }
}
