//! Trials: one adversarial execution, fully described by a replayable id.
//!
//! A [`TrialSpec`] names everything that determines an execution — the
//! workload, the graph family and seed, the daemon, the fault plan and the
//! step budget — and serializes to a one-line `TrialId` string that
//! [`TrialSpec::from_id`] parses back. Running the same spec twice yields
//! the same [`TrialOutcome`] bit for bit (the engine's determinism
//! contract), so any worst case a campaign finds is a one-line
//! reproduction.

use crate::daemons::{CutFocusDaemon, StallDaemon, StarveDaemon};
use smst_bench::engine_metrics::mst_verifier_for;
use smst_core::faults::{corrupt, FaultKind};
use smst_engine::programs::{MinIdFlood, MonitorFlood};
use smst_engine::{EngineConfig, GraphFamily, ScenarioSpec, StopCondition};
use smst_graph::WeightedGraph;
use smst_sim::{BatchDaemon, ChunkedDaemon, Daemon, RoundObserver};

/// A replayable daemon descriptor: every daemon a campaign can schedule,
/// with its parameters, in a form that encodes into a `TrialId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonSpec {
    /// Central round-robin, chunked into `batch` simultaneous activations.
    RoundRobin {
        /// Simultaneous activations per batch.
        batch: usize,
    },
    /// Central seeded-random daemon, chunked.
    Random {
        /// Schedule seed.
        seed: u64,
        /// Extra activations per unit, as a multiple of `n`.
        extra_factor: usize,
        /// Simultaneous activations per batch.
        batch: usize,
    },
    /// Central pivot-favouring adversarial daemon, chunked.
    Pivot {
        /// The favoured node.
        pivot: usize,
        /// Extra pivot activations per unit.
        repeats: usize,
        /// Simultaneous activations per batch.
        batch: usize,
    },
    /// Boundary-stalling adversarial batch daemon ([`StallDaemon`]).
    BoundaryStall {
        /// Contiguous shards.
        shards: usize,
        /// Extra interior sweeps per unit.
        repeats: usize,
    },
    /// Shard-starving adversarial batch daemon ([`StarveDaemon`]).
    ShardStarve {
        /// Contiguous shards.
        shards: usize,
        /// Extra sweeps of the non-starved shards per unit.
        repeats: usize,
    },
    /// Cut-focused adversarial batch daemon ([`CutFocusDaemon`]).
    CutFocus {
        /// BFS-bisection source seed.
        source_seed: u64,
        /// Extra sweeps per side per unit.
        repeats: usize,
    },
}

impl DaemonSpec {
    /// Instantiates the daemon for a concrete graph (adversarial batch
    /// daemons precompute their node sets from the topology).
    pub fn build(&self, graph: &WeightedGraph) -> Box<dyn BatchDaemon> {
        match *self {
            DaemonSpec::RoundRobin { batch } => {
                Box::new(ChunkedDaemon::new(Daemon::RoundRobin, batch))
            }
            DaemonSpec::Random {
                seed,
                extra_factor,
                batch,
            } => Box::new(ChunkedDaemon::new(
                Daemon::Random { seed, extra_factor },
                batch,
            )),
            DaemonSpec::Pivot {
                pivot,
                repeats,
                batch,
            } => Box::new(ChunkedDaemon::new(
                Daemon::Adversarial {
                    pivot,
                    pivot_repeats: repeats,
                },
                batch,
            )),
            DaemonSpec::BoundaryStall { shards, repeats } => {
                Box::new(StallDaemon::new(graph, shards, repeats))
            }
            DaemonSpec::ShardStarve { shards, repeats } => {
                Box::new(StarveDaemon::new(graph, shards, repeats))
            }
            DaemonSpec::CutFocus {
                source_seed,
                repeats,
            } => Box::new(CutFocusDaemon::new(graph, source_seed, repeats)),
        }
    }

    /// `true` for the genuinely distributed (batch-identity) daemons the
    /// central enum cannot express.
    pub fn is_adversarial_batch(&self) -> bool {
        matches!(
            self,
            DaemonSpec::BoundaryStall { .. }
                | DaemonSpec::ShardStarve { .. }
                | DaemonSpec::CutFocus { .. }
        )
    }

    /// The compact id-field encoding (also the display form campaigns and
    /// artifacts use).
    pub fn encode(&self) -> String {
        match *self {
            DaemonSpec::RoundRobin { batch } => format!("rr:{batch}"),
            DaemonSpec::Random {
                seed,
                extra_factor,
                batch,
            } => format!("rnd:{seed}:{extra_factor}:{batch}"),
            DaemonSpec::Pivot {
                pivot,
                repeats,
                batch,
            } => format!("piv:{pivot}:{repeats}:{batch}"),
            DaemonSpec::BoundaryStall { shards, repeats } => format!("stall:{shards}:{repeats}"),
            DaemonSpec::ShardStarve { shards, repeats } => format!("starve:{shards}:{repeats}"),
            DaemonSpec::CutFocus {
                source_seed,
                repeats,
            } => format!("cut:{source_seed}:{repeats}"),
        }
    }

    fn decode(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let num = |i: usize| -> Result<usize, String> {
            parts
                .get(i)
                .ok_or_else(|| format!("daemon spec `{s}` is missing field {i}"))?
                .parse::<usize>()
                .map_err(|e| format!("daemon spec `{s}` field {i}: {e}"))
        };
        // exact field counts: a mis-transcribed id (extra or missing
        // fields) must error, never silently replay a different daemon
        let exact = |fields: usize| -> Result<(), String> {
            if parts.len() == fields {
                Ok(())
            } else {
                Err(format!(
                    "daemon spec `{s}` has {} fields, expected {fields}",
                    parts.len()
                ))
            }
        };
        match parts[0] {
            "rr" => {
                exact(2)?;
                Ok(DaemonSpec::RoundRobin { batch: num(1)? })
            }
            "rnd" => {
                exact(4)?;
                Ok(DaemonSpec::Random {
                    seed: num(1)? as u64,
                    extra_factor: num(2)?,
                    batch: num(3)?,
                })
            }
            "piv" => {
                exact(4)?;
                Ok(DaemonSpec::Pivot {
                    pivot: num(1)?,
                    repeats: num(2)?,
                    batch: num(3)?,
                })
            }
            "stall" => {
                exact(3)?;
                Ok(DaemonSpec::BoundaryStall {
                    shards: num(1)?,
                    repeats: num(2)?,
                })
            }
            "starve" => {
                exact(3)?;
                Ok(DaemonSpec::ShardStarve {
                    shards: num(1)?,
                    repeats: num(2)?,
                })
            }
            "cut" => {
                exact(3)?;
                Ok(DaemonSpec::CutFocus {
                    source_seed: num(1)? as u64,
                    repeats: num(2)?,
                })
            }
            other => Err(format!("unknown daemon kind `{other}`")),
        }
    }
}

/// The program a trial executes and the metric it scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// [`MonitorFlood`]: a bogus identity must *propagate* to the monitor
    /// node before the alarm fires — detection time is the daemon-dependent
    /// information-flow time from the fault to the monitor. Cheap enough
    /// for large campaigns.
    Monitor,
    /// [`MinIdFlood`] corrupted to garbage: scored by **stabilization**
    /// time (units until every node accepts again).
    Heal,
    /// The paper's verifier ([`mst_verifier_for`]) with a [`FaultKind`]
    /// register corruption: the real workload, polylog warm-up included —
    /// use small sizes.
    Verifier,
}

impl Workload {
    fn encode(self) -> &'static str {
        match self {
            Workload::Monitor => "mon",
            Workload::Heal => "heal",
            Workload::Verifier => "ver",
        }
    }

    fn decode(s: &str) -> Result<Self, String> {
        match s {
            "mon" => Ok(Workload::Monitor),
            "heal" => Ok(Workload::Heal),
            "ver" => Ok(Workload::Verifier),
            other => Err(format!("unknown workload `{other}`")),
        }
    }
}

fn encode_fault_kind(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::RootsString => "roots",
        FaultKind::EndpString => "endp",
        FaultKind::SpDistance => "sp",
        FaultKind::StoredPieceWeight => "stored",
        FaultKind::PartRoot => "part",
        FaultKind::TrainBuffers => "trains",
    }
}

fn decode_fault_kind(s: &str) -> Result<FaultKind, String> {
    match s {
        "roots" => Ok(FaultKind::RootsString),
        "endp" => Ok(FaultKind::EndpString),
        "sp" => Ok(FaultKind::SpDistance),
        "stored" => Ok(FaultKind::StoredPieceWeight),
        "part" => Ok(FaultKind::PartRoot),
        "trains" => Ok(FaultKind::TrainBuffers),
        other => Err(format!("unknown fault kind `{other}`")),
    }
}

fn encode_family(family: &GraphFamily) -> String {
    match *family {
        GraphFamily::Path { n } => format!("path:{n}"),
        GraphFamily::Ring { n } => format!("ring:{n}"),
        GraphFamily::Grid { rows, cols } => format!("grid:{rows}x{cols}"),
        GraphFamily::Star { n } => format!("star:{n}"),
        GraphFamily::Caterpillar { spine, legs } => format!("cat:{spine}x{legs}"),
        GraphFamily::RandomConnected { n, m } => format!("rand:{n}x{m}"),
        GraphFamily::Expander { n, degree } => format!("exp:{n}x{degree}"),
        GraphFamily::Complete { n } => format!("k:{n}"),
        GraphFamily::KmwClusterTree { levels, delta } => format!("kmw:{levels}x{delta}"),
        GraphFamily::KmwHybrid { levels, delta } => format!("kmwh:{levels}x{delta}"),
    }
}

fn decode_family(s: &str) -> Result<GraphFamily, String> {
    let (kind, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("family `{s}` has no `:`"))?;
    let one = || -> Result<usize, String> {
        rest.parse::<usize>()
            .map_err(|e| format!("family `{s}`: {e}"))
    };
    let two = || -> Result<(usize, usize), String> {
        let (a, b) = rest
            .split_once('x')
            .ok_or_else(|| format!("family `{s}` needs AxB"))?;
        Ok((
            a.parse().map_err(|e| format!("family `{s}`: {e}"))?,
            b.parse().map_err(|e| format!("family `{s}`: {e}"))?,
        ))
    };
    match kind {
        "path" => Ok(GraphFamily::Path { n: one()? }),
        "ring" => Ok(GraphFamily::Ring { n: one()? }),
        "grid" => two().map(|(rows, cols)| GraphFamily::Grid { rows, cols }),
        "star" => Ok(GraphFamily::Star { n: one()? }),
        "cat" => two().map(|(spine, legs)| GraphFamily::Caterpillar { spine, legs }),
        "rand" => two().map(|(n, m)| GraphFamily::RandomConnected { n, m }),
        "exp" => two().map(|(n, degree)| GraphFamily::Expander { n, degree }),
        "k" => Ok(GraphFamily::Complete { n: one()? }),
        "kmw" => two().map(|(levels, delta)| GraphFamily::KmwClusterTree { levels, delta }),
        "kmwh" => two().map(|(levels, delta)| GraphFamily::KmwHybrid { levels, delta }),
        other => Err(format!("unknown family `{other}`")),
    }
}

/// Everything that determines one adversarial execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSpec {
    /// The program and scoring metric.
    pub workload: Workload,
    /// Topology family.
    pub family: GraphFamily,
    /// Graph seed.
    pub graph_seed: u64,
    /// The schedule.
    pub daemon: DaemonSpec,
    /// Register-corruption kind (used by [`Workload::Verifier`]; the flood
    /// workloads have a fixed canonical corruption).
    pub fault_kind: FaultKind,
    /// Number of distinct corrupted registers.
    pub fault_count: usize,
    /// Fault-node-selection and corruption seed.
    pub fault_seed: u64,
    /// The step (time unit) before which the burst fires.
    pub inject_at: usize,
    /// Maximum steps — the schedule prefix the trial is allowed to use
    /// (the shrinker minimizes it).
    pub budget: usize,
}

/// The id-string version prefix (bump on any encoding change).
const ID_PREFIX: &str = "smst1";

impl TrialSpec {
    /// The one-line replayable id of this trial.
    pub fn id(&self) -> String {
        format!(
            "{ID_PREFIX};wl={};fam={};gs={};d={};fk={};fc={};fs={};at={};bu={}",
            self.workload.encode(),
            encode_family(&self.family),
            self.graph_seed,
            self.daemon.encode(),
            encode_fault_kind(self.fault_kind),
            self.fault_count,
            self.fault_seed,
            self.inject_at,
            self.budget,
        )
    }

    /// Parses a [`TrialSpec::id`] string back into the spec.
    pub fn from_id(id: &str) -> Result<TrialSpec, String> {
        let mut fields = id.split(';');
        let prefix = fields.next().unwrap_or_default();
        if prefix != ID_PREFIX {
            return Err(format!("unknown trial-id prefix `{prefix}`"));
        }
        const KNOWN_KEYS: [&str; 9] = ["wl", "fam", "gs", "d", "fk", "fc", "fs", "at", "bu"];
        let mut lookup = std::collections::BTreeMap::new();
        for field in fields {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("field `{field}` has no `=`"))?;
            if !KNOWN_KEYS.contains(&k) {
                return Err(format!("unknown trial-id key `{k}`"));
            }
            if lookup.insert(k, v).is_some() {
                return Err(format!("duplicate trial-id key `{k}`"));
            }
        }
        let get = |k: &str| -> Result<&str, String> {
            lookup
                .get(k)
                .copied()
                .ok_or_else(|| format!("trial id is missing `{k}`"))
        };
        let num = |k: &str| -> Result<u64, String> {
            get(k)?
                .parse::<u64>()
                .map_err(|e| format!("field `{k}`: {e}"))
        };
        Ok(TrialSpec {
            workload: Workload::decode(get("wl")?)?,
            family: decode_family(get("fam")?)?,
            graph_seed: num("gs")?,
            daemon: DaemonSpec::decode(get("d")?)?,
            fault_kind: decode_fault_kind(get("fk")?)?,
            fault_count: num("fc")? as usize,
            fault_seed: num("fs")?,
            inject_at: num("at")? as usize,
            budget: num("bu")? as usize,
        })
    }

    /// The same trial under the most benign central schedule — the
    /// baseline every adversarial score is compared against.
    pub fn round_robin_baseline(&self) -> TrialSpec {
        TrialSpec {
            daemon: DaemonSpec::RoundRobin { batch: 1 },
            ..self.clone()
        }
    }
}

/// How a trial scored: lower is better for the *system*, higher is a
/// better *find* for the adversary. [`Score::Missed`] (no alarm / no
/// recovery inside the budget) orders above every measured value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Score {
    /// Steps from injection to the scored event.
    Measured(usize),
    /// The event never happened inside the budget.
    Missed,
}

impl Score {
    /// A scalar for regret arithmetic and artifacts: measured value, or
    /// `2 × budget` for a miss (strictly above any measurable value).
    pub fn value(self, budget: usize) -> usize {
        match self {
            Score::Measured(t) => t,
            Score::Missed => 2 * budget.max(1),
        }
    }

    /// `true` if the scored event never happened.
    pub fn is_missed(self) -> bool {
        matches!(self, Score::Missed)
    }
}

/// What one trial execution produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Node count of the built graph.
    pub node_count: usize,
    /// Steps actually executed.
    pub steps_run: usize,
    /// Registers the burst corrupted.
    pub injected_faults: usize,
    /// Steps from injection to the first alarm, if any.
    pub detection: Option<usize>,
    /// Steps from injection until every node accepted, if recorded.
    pub recovered: Option<usize>,
    /// The workload's score for this trial.
    pub score: Score,
}

/// Runs one trial. Deterministic: the same spec always produces the same
/// outcome (pinned by the replay tests).
pub fn run_trial(spec: &TrialSpec) -> TrialOutcome {
    run_trial_inner(spec, None)
}

/// [`run_trial`] with a [`RoundObserver`] attached to the instantiated
/// runner — per-step accounting for campaign artifacts and traces without
/// changing the trial's results. The outcome and the observed
/// deterministic fields (`round`, `alarms`, `activations`, `halo_bytes`)
/// are the same pure function of the spec as [`run_trial`]'s; only the
/// `*_ns` phase timings are wall-clock.
pub fn run_trial_observed(spec: &TrialSpec, observer: Box<dyn RoundObserver>) -> TrialOutcome {
    run_trial_inner(spec, Some(observer))
}

fn run_trial_inner(spec: &TrialSpec, observer: Option<Box<dyn RoundObserver>>) -> TrialOutcome {
    let graph = spec.family.build(spec.graph_seed);
    let n = graph.node_count();
    let daemon = spec.daemon.build(&graph);
    // a burst at or beyond the budget can never fire (ScenarioSpec panics);
    // clamp so every spec the search or the shrinker produces is runnable
    let budget = spec.budget.max(spec.inject_at + 1);
    let fault_count = spec.fault_count.clamp(1, n.max(1));
    // trials are single-threaded by design (the campaign fans the *trial
    // list* out across the pool); the whole execution envelope is one
    // validated EngineConfig
    let engine = EngineConfig::new().threads(1).batch_daemon(daemon);
    let scenario = ScenarioSpec::new(spec.family.clone())
        .engine(engine)
        .seed(spec.graph_seed)
        .fault_burst(spec.inject_at, fault_count, spec.fault_seed);
    match spec.workload {
        Workload::Monitor => {
            let ceiling = n.max(1) as u64 - 1;
            let program = MonitorFlood::new(ceiling, ceiling);
            let scenario = scenario.until(StopCondition::FirstAlarm);
            let corrupt_state = |_v, s: &mut u64| *s = MonitorFlood::BOGUS;
            let outcome = match observer {
                Some(obs) => scenario
                    .run_observed(&program, corrupt_state, budget, obs)
                    .unwrap_or_else(|e| panic!("invalid scenario engine config: {e}")),
                None => scenario.run(&program, corrupt_state, budget),
            };
            TrialOutcome {
                node_count: outcome.report.node_count,
                steps_run: outcome.report.steps_run,
                injected_faults: outcome.report.injected_faults,
                detection: outcome.report.first_alarm,
                recovered: outcome.report.recovered,
                score: match outcome.report.first_alarm {
                    Some(t) => Score::Measured(t),
                    None => Score::Missed,
                },
            }
        }
        Workload::Heal => {
            let program = MinIdFlood::new(0);
            let scenario = scenario.until(StopCondition::AllAccept);
            let corrupt_state = |_v, s: &mut u64| *s = u64::MAX;
            let outcome = match observer {
                Some(obs) => scenario
                    .run_observed(&program, corrupt_state, budget, obs)
                    .unwrap_or_else(|e| panic!("invalid scenario engine config: {e}")),
                None => scenario.run(&program, corrupt_state, budget),
            };
            TrialOutcome {
                node_count: outcome.report.node_count,
                steps_run: outcome.report.steps_run,
                injected_faults: outcome.report.injected_faults,
                detection: outcome.report.first_alarm,
                recovered: outcome.report.recovered,
                score: match outcome.report.recovered {
                    Some(t) => Score::Measured(t),
                    None => Score::Missed,
                },
            }
        }
        Workload::Verifier => {
            let kind = spec.fault_kind;
            let seed = spec.fault_seed;
            let mut i = 0u64;
            let corrupt_state = move |_v, state: &mut _| {
                corrupt(state, kind, seed.wrapping_add(i));
                i += 1;
            };
            // the verifier is built from the trial's own graph — the same
            // `(family, seed)` product the scenario rebuilds internally, so
            // this equals the unobserved `run_with` construction
            let program = mst_verifier_for(&graph);
            let scenario = scenario.until(StopCondition::FirstAlarm);
            let outcome = match observer {
                Some(obs) => scenario
                    .run_observed(&program, corrupt_state, budget, obs)
                    .unwrap_or_else(|e| panic!("invalid scenario engine config: {e}")),
                None => scenario.run(&program, corrupt_state, budget),
            };
            TrialOutcome {
                node_count: outcome.report.node_count,
                steps_run: outcome.report.steps_run,
                injected_faults: outcome.report.injected_faults,
                detection: outcome.report.first_alarm,
                recovered: outcome.report.recovered,
                score: match outcome.report.first_alarm {
                    Some(t) => Score::Measured(t),
                    None => Score::Missed,
                },
            }
        }
    }
}

/// The canonical campaign interestingness predicate: the trial's scored
/// event happens inside the budget **and** strictly later than the same
/// trial under `Daemon::RoundRobin` — one shared definition so the smoke
/// binary, the examples, the shrinker and the pinning tests cannot drift
/// apart.
pub fn beats_round_robin(spec: &TrialSpec) -> bool {
    let adversarial = run_trial(spec);
    if adversarial.score.is_missed() {
        return false;
    }
    let baseline = run_trial(&spec.round_robin_baseline());
    adversarial.score > baseline.score
}

/// A memoizing [`beats_round_robin`] for shrink loops: most shrinking
/// moves (daemon taming, fault-count cuts) leave the round-robin baseline
/// spec unchanged, so its outcome is cached by baseline id instead of
/// re-run per candidate. Sound because trials are pure functions of their
/// spec, and moves that *do* affect the baseline (graph, budget,
/// injection) also change its id.
pub fn beats_round_robin_memo() -> impl FnMut(&TrialSpec) -> bool {
    let mut baselines: std::collections::BTreeMap<String, Score> =
        std::collections::BTreeMap::new();
    move |spec| {
        let adversarial = run_trial(spec);
        if adversarial.score.is_missed() {
            return false;
        }
        let baseline = spec.round_robin_baseline();
        let score = *baselines
            .entry(baseline.id())
            .or_insert_with(|| run_trial(&baseline).score);
        adversarial.score > score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> TrialSpec {
        TrialSpec {
            workload: Workload::Monitor,
            family: GraphFamily::Path { n: 20 },
            graph_seed: 3,
            daemon: DaemonSpec::BoundaryStall {
                shards: 2,
                repeats: 1,
            },
            fault_kind: FaultKind::SpDistance,
            fault_count: 1,
            fault_seed: 5,
            inject_at: 2,
            budget: 100,
        }
    }

    #[test]
    fn trial_ids_round_trip() {
        let daemons = [
            DaemonSpec::RoundRobin { batch: 3 },
            DaemonSpec::Random {
                seed: 9,
                extra_factor: 2,
                batch: 4,
            },
            DaemonSpec::Pivot {
                pivot: 7,
                repeats: 2,
                batch: 1,
            },
            DaemonSpec::BoundaryStall {
                shards: 4,
                repeats: 2,
            },
            DaemonSpec::ShardStarve {
                shards: 3,
                repeats: 1,
            },
            DaemonSpec::CutFocus {
                source_seed: 11,
                repeats: 2,
            },
        ];
        let families = [
            GraphFamily::Path { n: 9 },
            GraphFamily::Grid { rows: 3, cols: 4 },
            GraphFamily::Caterpillar { spine: 3, legs: 2 },
            GraphFamily::RandomConnected { n: 15, m: 30 },
            GraphFamily::Expander { n: 20, degree: 4 },
            GraphFamily::Complete { n: 6 },
            GraphFamily::KmwClusterTree {
                levels: 2,
                delta: 3,
            },
            GraphFamily::KmwHybrid {
                levels: 2,
                delta: 3,
            },
        ];
        for daemon in &daemons {
            for family in &families {
                for workload in [Workload::Monitor, Workload::Heal, Workload::Verifier] {
                    for kind in FaultKind::all() {
                        let spec = TrialSpec {
                            workload,
                            family: family.clone(),
                            graph_seed: 8,
                            daemon: daemon.clone(),
                            fault_kind: kind,
                            fault_count: 2,
                            fault_seed: 13,
                            inject_at: 4,
                            budget: 64,
                        };
                        let parsed = TrialSpec::from_id(&spec.id()).expect("round-trip");
                        assert_eq!(parsed, spec, "id: {}", spec.id());
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_ids_are_rejected() {
        assert!(TrialSpec::from_id("").is_err());
        assert!(TrialSpec::from_id("smst0;wl=mon").is_err());
        assert!(
            TrialSpec::from_id("smst1;wl=mon").is_err(),
            "missing fields"
        );
        let id = demo_spec().id();
        assert!(TrialSpec::from_id(&id.replace("d=stall", "d=w00t")).is_err());
        // a mis-transcribed id must error, never replay a different trial
        assert!(
            TrialSpec::from_id(&id.replace("d=stall:2:1", "d=stall:2:1:9")).is_err(),
            "trailing daemon fields"
        );
        assert!(
            TrialSpec::from_id(&format!("{id};fam=path:4")).is_err(),
            "duplicate keys"
        );
        assert!(
            TrialSpec::from_id(&format!("{id};zz=1")).is_err(),
            "unknown keys"
        );
    }

    #[test]
    fn score_orders_missed_above_everything() {
        assert!(Score::Missed > Score::Measured(usize::MAX - 1));
        assert!(Score::Measured(3) > Score::Measured(2));
        assert_eq!(Score::Missed.value(50), 100);
        assert!(Score::Missed.is_missed());
        assert!(!Score::Measured(1).is_missed());
    }

    #[test]
    fn trials_replay_identically() {
        let spec = demo_spec();
        let a = run_trial(&spec);
        let b = run_trial(&TrialSpec::from_id(&spec.id()).unwrap());
        assert_eq!(a, b);
        assert_eq!(a.injected_faults, 1);
        assert!(a.detection.is_some(), "the monitor must eventually hear");
    }

    #[test]
    fn adversarial_daemon_delays_the_monitor_on_a_path() {
        // fault seeds picking a node far from the monitor: round-robin
        // (ascending index order) carries the bogus value the whole way in
        // one unit, the boundary-stalling batch daemon one hop per unit
        let spec = demo_spec();
        let adversarial = run_trial(&spec);
        let baseline = run_trial(&spec.round_robin_baseline());
        assert!(
            adversarial.score > baseline.score,
            "stall {:?} must be strictly later than round-robin {:?}",
            adversarial.score,
            baseline.score
        );
    }

    #[test]
    fn heal_workload_reports_stabilization() {
        let spec = TrialSpec {
            workload: Workload::Heal,
            budget: 200,
            ..demo_spec()
        };
        let outcome = run_trial(&spec);
        assert!(outcome.recovered.is_some(), "the flood must heal");
        assert_eq!(outcome.score, Score::Measured(outcome.recovered.unwrap()));
    }
}
